//! End-to-end integration: data set → configuration → parallel
//! pre-processing → speech store → text-to-query extraction → voice
//! session, plus the deployment-log classification pipeline — the whole
//! Fig. 2 system in one test file.

use vqs_baseline::sampling::{vocalize, SamplingConfig};
use vqs_core::prelude::*;
use vqs_data::{DimSpec, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;

fn dataset() -> vqs_data::GeneratedDataset {
    SynthSpec {
        name: "e2e-flights".to_string(),
        dims: vec![
            DimSpec::named("season", &["Spring", "Summer", "Fall", "Winter"]),
            DimSpec::named("region", &["East", "South", "West", "North"]),
            DimSpec::synthetic("airline", "airline", 5, 0.5),
        ],
        targets: vec![
            TargetSpec::new("cancelled", 60.0, 25.0, 10.0, (0.0, 1000.0))
                .with_dim_weights(&[1.0, 0.4, 0.7]),
        ],
        rows: 1_500,
    }
    .generate(0xE2E, 1.0)
}

fn config() -> Configuration {
    Configuration::new(
        "e2e-flights",
        &["season", "region", "airline"],
        &["cancelled"],
    )
}

#[test]
fn preprocess_and_answer_with_every_summarizer() {
    let data = dataset();
    let config = config();
    let summarizers: Vec<Box<dyn Summarizer + Sync>> = vec![
        Box::new(GreedySummarizer::base()),
        Box::new(GreedySummarizer::with_naive_pruning()),
        Box::new(GreedySummarizer::with_optimized_pruning()),
    ];
    let mut utilities: Vec<f64> = Vec::new();
    for summarizer in &summarizers {
        let (store, report) = preprocess(
            &data,
            &config,
            summarizer.as_ref(),
            &PreprocessOptions {
                workers: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.queries, report.speeches);
        assert!(store.len() > 20);
        // The overall query must always be answerable.
        let overall = store.get(&Query::of("cancelled", &[])).unwrap();
        assert!(overall.utility >= 0.0);
        assert!(!overall.text.is_empty());
        utilities.push(overall.utility);
    }
    // All greedy variants agree on the selected utility.
    assert!((utilities[0] - utilities[1]).abs() < 1e-9);
    assert!((utilities[0] - utilities[2]).abs() < 1e-9);
}

#[test]
fn stored_speeches_respect_configuration_limits() {
    let data = dataset();
    let mut config = config();
    config.speech_length = 2;
    config.max_fact_dimensions = 1;
    let (store, _) = preprocess(
        &data,
        &config,
        &GreedySummarizer::with_optimized_pruning(),
        &PreprocessOptions::default(),
    )
    .unwrap();
    for query in store.queries() {
        let speech = store.get(&query).unwrap();
        assert!(speech.facts.len() <= 2, "{query}");
        for fact in &speech.facts {
            assert!(fact.scope.len() <= 1, "{query}: {:?}", fact.scope);
            // Fact scopes never repeat a query predicate's dimension.
            for (dim, _) in &fact.scope {
                assert!(
                    !query.predicates().iter().any(|(qd, _)| qd == dim),
                    "{query} fact restricts fixed dimension {dim}"
                );
            }
        }
    }
}

#[test]
fn voice_session_round_trip() {
    let data = dataset();
    let config = config();
    let mut options = PreprocessOptions::default();
    options.templates.insert(
        "cancelled".to_string(),
        SpeechTemplate::per_mille("cancellation probability", "flights"),
    );
    let (store, _) = preprocess(
        &data,
        &config,
        &GreedySummarizer::with_optimized_pruning(),
        &options,
    )
    .unwrap();
    let relation = target_relation(&data, &config, "cancelled").unwrap();
    let extractor = Extractor::from_relation(&relation, config.max_query_length)
        .with_target_synonyms("cancelled", &["cancellations"]);
    let mut session = VoiceSession::new(&store, extractor, "Ask about cancellations.");

    // Example 5's query shape works end to end.
    let response = session.respond("cancellations in Winter?");
    assert!(matches!(response.request, Request::Query(_)));
    assert!(response.text.contains("For season Winter"));
    assert!(response.text.contains("out of 1000 flights"));

    // Three predicates exceed the pre-processed query length: the store
    // falls back to the most specific generalization (§III).
    let response = session.respond("cancellations in Winter in the East on airline0");
    assert!(response.speaking_secs > 0.0);
    assert!(!response.text.is_empty());

    // Repeat replays verbatim.
    let repeated = session.respond("repeat");
    assert_eq!(repeated.text, response.text);
}

#[test]
fn fallback_lookup_prefers_most_specific_generalization() {
    let data = dataset();
    let config = config();
    let (store, _) = preprocess(
        &data,
        &config,
        &GreedySummarizer::base(),
        &PreprocessOptions::default(),
    )
    .unwrap();
    // A three-predicate query was never pre-processed (max length 2).
    let query = Query::of(
        "cancelled",
        &[
            ("season", "Winter"),
            ("region", "East"),
            ("airline", "airline0"),
        ],
    );
    match store.lookup(&query) {
        Lookup::Generalized {
            speech,
            kept_predicates,
        } => {
            assert_eq!(kept_predicates, 2);
            // The served speech's predicates are a subset of the query's.
            for predicate in speech.query.predicates() {
                assert!(query.predicates().contains(predicate));
            }
        }
        other => panic!("expected generalized lookup, got {other:?}"),
    }
}

#[test]
fn baseline_answers_same_queries_with_ranges() {
    let data = dataset();
    let config = config();
    let relation = target_relation(&data, &config, "cancelled").unwrap();
    let items = enumerate_queries(&relation, &config, "cancelled");
    let winter = items
        .iter()
        .find(|i| i.query.predicates() == [("season".to_string(), "Winter".to_string())])
        .unwrap();
    let subset = relation.subset(&winter.rows).unwrap();
    let result = vocalize(
        &subset,
        &[1, 2],
        2,
        &SamplingConfig {
            seed: 5,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!result.facts.is_empty());
    assert!(result.text.contains("between"));
    assert!(result.latency <= result.total);
}

#[test]
fn deployment_log_pipeline_matches_table3() {
    let data = dataset();
    let config = config();
    let relation = target_relation(&data, &config, "cancelled").unwrap();
    let extractor = Extractor::from_relation(&relation, config.max_query_length)
        .with_target_synonyms("cancelled", &["cancellations"])
        .with_unavailable_markers(&["flight"]);
    for (i, mix) in TABLE3.iter().enumerate() {
        let log = generate_log(&relation, "cancellations", mix, 900 + i as u64);
        let counts = tabulate(&extractor, &log);
        assert_eq!(
            counts,
            [mix.help, mix.repeat, mix.s_query, mix.u_query, mix.other],
            "{}",
            mix.name
        );
    }
}

#[test]
fn parallel_preprocessing_is_deterministic() {
    let data = dataset();
    let config = config();
    let run = |workers: usize| {
        let (store, _) = preprocess(
            &data,
            &config,
            &GreedySummarizer::with_optimized_pruning(),
            &PreprocessOptions {
                workers,
                ..Default::default()
            },
        )
        .unwrap();
        let mut texts: Vec<(String, String)> = store
            .queries()
            .into_iter()
            .map(|q| (q.to_string(), store.get(&q).unwrap().text.clone()))
            .collect();
        texts.sort();
        texts
    };
    assert_eq!(run(1), run(8));
}
