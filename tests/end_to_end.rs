//! End-to-end integration: data set → configuration → service facade →
//! speech store → text-to-query extraction → typed answers, plus the
//! deployment-log classification pipeline — the whole Fig. 2 system in
//! one test file, driven through [`vqs_engine::service::VoiceService`].

use vqs_baseline::sampling::{vocalize, SamplingConfig};
use vqs_core::prelude::*;
use vqs_data::{DimSpec, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;

fn dataset() -> vqs_data::GeneratedDataset {
    SynthSpec {
        name: "e2e-flights".to_string(),
        dims: vec![
            DimSpec::named("season", &["Spring", "Summer", "Fall", "Winter"]),
            DimSpec::named("region", &["East", "South", "West", "North"]),
            DimSpec::synthetic("airline", "airline", 5, 0.5),
        ],
        targets: vec![
            TargetSpec::new("cancelled", 60.0, 25.0, 10.0, (0.0, 1000.0))
                .with_dim_weights(&[1.0, 0.4, 0.7]),
        ],
        rows: 1_500,
    }
    .generate(0xE2E, 1.0)
}

fn config() -> Configuration {
    Configuration::new(
        "e2e-flights",
        &["season", "region", "airline"],
        &["cancelled"],
    )
}

#[test]
fn register_and_answer_with_every_summarizer() {
    let data = dataset();
    let summarizers: Vec<Box<dyn Summarizer + Send + Sync>> = vec![
        Box::new(GreedySummarizer::base()),
        Box::new(GreedySummarizer::with_naive_pruning()),
        Box::new(GreedySummarizer::with_optimized_pruning()),
    ];
    let mut utilities: Vec<f64> = Vec::new();
    for summarizer in summarizers {
        let service = ServiceBuilder::new()
            .workers(4)
            .summarizer_box(summarizer)
            .build();
        let report = service
            .register_dataset(TenantSpec::new("e2e", data.clone(), config()))
            .unwrap();
        assert_eq!(report.queries, report.speeches);
        let store = service.tenant_store("e2e").unwrap();
        assert!(store.len() > 20);
        // The overall query must always be answerable.
        let overall = store.get(&Query::of("cancelled", &[])).unwrap();
        assert!(overall.utility >= 0.0);
        assert!(!overall.text.is_empty());
        utilities.push(overall.utility);
    }
    // All greedy variants agree on the selected utility.
    assert!((utilities[0] - utilities[1]).abs() < 1e-9);
    assert!((utilities[0] - utilities[2]).abs() < 1e-9);
}

#[test]
fn stored_speeches_respect_configuration_limits() {
    let data = dataset();
    let mut config = config();
    config.speech_length = 2;
    config.max_fact_dimensions = 1;
    let service = ServiceBuilder::new().build();
    service
        .register_dataset(TenantSpec::new("e2e", data, config))
        .unwrap();
    let store = service.tenant_store("e2e").unwrap();
    for query in store.queries() {
        let speech = store.get(&query).unwrap();
        assert!(speech.facts.len() <= 2, "{query}");
        for fact in &speech.facts {
            assert!(fact.scope.len() <= 1, "{query}: {:?}", fact.scope);
            // Fact scopes never repeat a query predicate's dimension.
            for (dim, _) in &fact.scope {
                assert!(
                    !query.predicates().iter().any(|(qd, _)| qd == dim),
                    "{query} fact restricts fixed dimension {dim}"
                );
            }
        }
    }
}

#[test]
fn voice_round_trip_through_the_facade() {
    let data = dataset();
    let service = ServiceBuilder::new().build();
    service
        .register_dataset(
            TenantSpec::new("e2e", data, config())
                .template(
                    "cancelled",
                    SpeechTemplate::per_mille("cancellation probability", "flights"),
                )
                .target_synonyms("cancelled", &["cancellations"]),
        )
        .unwrap();

    // Example 5's query shape works end to end, statelessly.
    let response = service.respond(&ServiceRequest::new("e2e", "cancellations in Winter?"));
    assert!(matches!(response.request, Some(Request::Query(_))));
    assert!(matches!(
        response.answer,
        Answer::Speech {
            kept_predicates: None,
            ..
        }
    ));
    assert!(response.text().contains("For season Winter"));
    assert!(response.text().contains("out of 1000 flights"));

    // Three predicates exceed the pre-processed query length: the store
    // falls back to the most specific generalization (§III).
    let response = service.respond(&ServiceRequest::new(
        "e2e",
        "cancellations in Winter in the East on airline0",
    ));
    assert!(response.speaking_secs > 0.0);
    assert!(!response.text().is_empty());

    // Repeat replays verbatim — in a stateful session.
    let mut session = service.session("e2e").unwrap();
    let first = session.answer("cancellations in Winter in the East on airline0");
    let repeated = session.answer("repeat");
    assert_eq!(repeated.text(), first.text());

    // An unknown tenant is a typed answer, not a panic.
    let unknown = service.respond(&ServiceRequest::new("nope", "cancellations in Winter?"));
    assert!(matches!(unknown.answer, Answer::UnknownTenant { .. }));
}

#[test]
fn fallback_lookup_prefers_most_specific_generalization() {
    let data = dataset();
    let service = ServiceBuilder::new().build();
    service
        .register_dataset(TenantSpec::new("e2e", data, config()))
        .unwrap();
    let store = service.tenant_store("e2e").unwrap();
    // A three-predicate query was never pre-processed (max length 2).
    let query = Query::of(
        "cancelled",
        &[
            ("season", "Winter"),
            ("region", "East"),
            ("airline", "airline0"),
        ],
    );
    match store.lookup(&query) {
        Lookup::Generalized {
            speech,
            kept_predicates,
        } => {
            assert_eq!(kept_predicates, 2);
            // The served speech's predicates are a subset of the query's.
            for predicate in speech.query.predicates() {
                assert!(query.predicates().contains(predicate));
            }
        }
        other => panic!("expected generalized lookup, got {other:?}"),
    }
}

#[test]
fn baseline_answers_same_queries_with_ranges() {
    let data = dataset();
    let config = config();
    let relation = target_relation(&data, &config, "cancelled").unwrap();
    let items = enumerate_queries(&relation, &config, "cancelled");
    let winter = items
        .iter()
        .find(|i| i.query.predicates() == [("season".to_string(), "Winter".to_string())])
        .unwrap();
    let subset = relation.subset(&winter.rows).unwrap();
    let result = vocalize(
        &subset,
        &[1, 2],
        2,
        &SamplingConfig {
            seed: 5,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!result.facts.is_empty());
    assert!(result.text.contains("between"));
    assert!(result.latency <= result.total);
}

#[test]
fn deployment_log_pipeline_matches_table3() {
    let data = dataset();
    let config = config();
    let relation = target_relation(&data, &config, "cancelled").unwrap();
    let service = ServiceBuilder::new().build();
    service
        .register_dataset(
            TenantSpec::new("e2e", data, config)
                .target_synonyms("cancelled", &["cancellations"])
                .unavailable_markers(&["flight"]),
        )
        .unwrap();
    for (i, mix) in TABLE3.iter().enumerate() {
        let log = generate_log(&relation, "cancellations", mix, 900 + i as u64);
        let counts = service.replay("e2e", &log).unwrap();
        assert_eq!(
            counts,
            [mix.help, mix.repeat, mix.s_query, mix.u_query, mix.other],
            "{}",
            mix.name
        );
    }
}

#[test]
fn facade_preprocessing_is_deterministic_in_pool_size() {
    let data = dataset();
    let run = |workers: usize| {
        let service = ServiceBuilder::new().workers(workers).build();
        service
            .register_dataset(TenantSpec::new("e2e", data.clone(), config()))
            .unwrap();
        let store = service.tenant_store("e2e").unwrap();
        let mut texts: Vec<(String, String)> = store
            .queries()
            .into_iter()
            .map(|q| (q.to_string(), store.get(&q).unwrap().text.clone()))
            .collect();
        texts.sort();
        texts
    };
    assert_eq!(run(1), run(8));
}
