//! Fidelity tests: every worked number in the paper, checked against the
//! reconstructed Fig. 1 grid (see DESIGN.md for the grid derivation and
//! the one documented inconsistency in Example 4).

use vqs_core::prelude::*;
use vqs_data::running_example as ex;

#[test]
fn example1_grid_shape() {
    let r = ex::relation();
    assert_eq!(r.len(), 16);
    assert_eq!(r.dim_count(), 2);
    assert_eq!(r.dims()[0].cardinality(), 4);
    assert_eq!(r.dims()[1].cardinality(), 4);
    assert_eq!(r.target_name(), "delay");
}

#[test]
fn example2_fact_values() {
    // "The average delay in Summer in the South is 20 minutes."
    let r = ex::relation();
    let summer_south = Fact::for_scope(
        &r,
        ex::scope(&r, &[("season", "Summer"), ("region", "South")]),
    )
    .unwrap();
    assert_eq!(summer_south.value, 20.0);
    assert_eq!(summer_south.support, 1);
    // "The average delay in Winter is 15 minutes."
    let winter = Fact::for_scope(&r, ex::scope(&r, &[("season", "Winter")])).unwrap();
    assert_eq!(winter.value, 15.0);
    assert_eq!(winter.support, 4);
}

#[test]
fn example3_prior_expectations() {
    // "Assume users expect no delays by default (the prior)."
    let r = ex::relation();
    assert_eq!(r.prior_values(), vec![0.0; 16]);
    // Without facts, expectation equals the prior for every row.
    for row in 0..r.len() {
        let e = ExpectationModel::ClosestRelevant.expected_value(&r, row, &[], 0.0, r.target(row));
        assert_eq!(e, 0.0);
    }
}

#[test]
fn example4_error_and_utilities() {
    let r = ex::relation();
    // "an accumulated error of 4·20 + 4·10 = 120".
    assert_eq!(base_error(&r), 120.0);
    // "After listening to Speech 1, error reduces to 80 (utility 40)".
    let s1 = ex::speech1(&r);
    assert_eq!(s1.error(&r), 80.0);
    assert_eq!(s1.utility(&r), 40.0);
    // Documented inconsistency: the paper claims error 35 for Speech 2;
    // the grid consistent with Examples 2/6/7/8 yields 55 (utility 65).
    // The qualitative claim — Speech 2 is more useful — holds.
    let s2 = ex::speech2(&r);
    assert_eq!(s2.error(&r), 55.0);
    assert_eq!(s2.utility(&r), 65.0);
    assert!(s2.utility(&r) > s1.utility(&r));
}

#[test]
fn example6_pruning_conditions() {
    let r = ex::relation();
    // "this fact alone has utility 20" (Summer∧South).
    let summer_south = Fact::for_scope(
        &r,
        ex::scope(&r, &[("season", "Summer"), ("region", "South")]),
    )
    .unwrap();
    assert_eq!(utility(&r, std::slice::from_ref(&summer_south)), 20.0);
    // "the fact stating that the average delay in Winter is 15 minutes …
    // has single-fact utility 40" → appending it after Summer∧South
    // violates the decreasing-utility order (40 > 20): permutation pruning
    // discards that expansion.
    let winter = Fact::for_scope(&r, ex::scope(&r, &[("season", "Winter")])).unwrap();
    assert_eq!(utility(&r, std::slice::from_ref(&winter)), 40.0);
    // "Knowing a speech with utility 85 … b = 85, S.U = 20, F.U = 20,
    // r = 1, and (b − S.U)/r > F.U" — the bound prunes the expansion by
    // the Winter∧East fact (single-fact utility 20).
    let winter_east = Fact::for_scope(
        &r,
        ex::scope(&r, &[("season", "Winter"), ("region", "East")]),
    )
    .unwrap();
    let single_u = utility(&r, std::slice::from_ref(&winter_east));
    assert_eq!(single_u, 20.0);
    let b = 85.0;
    let s_u = 20.0;
    let remaining = 1.0;
    assert!(
        (b - s_u) / remaining > single_u,
        "the Example 6 pruning fires"
    );
}

#[test]
fn example7_greedy_trace() {
    let r = ex::relation();
    let catalog = ex::example7_catalog(&r);
    let problem = Problem::new(&r, &catalog, 2).unwrap();
    let summary = GreedySummarizer::base().summarize(&problem).unwrap();
    // First pick utility 40, second adds 25 → 65 total; both picks are
    // the value-15 facts (Winter / North).
    assert_eq!(summary.utility, 65.0);
    assert!(summary.speech.facts().iter().all(|f| f.value == 15.0));
    // "Other facts, e.g. referencing flights in the South in Summer, with
    // utility 20, are dominated."
    let summer_south = Fact::for_scope(
        &r,
        ex::scope(&r, &[("season", "Summer"), ("region", "South")]),
    )
    .unwrap();
    assert!(!summary
        .speech
        .facts()
        .iter()
        .any(|f| f.scope == summer_south.scope));
}

#[test]
fn example8_bounds_after_winter() {
    let r = ex::relation();
    let catalog = ex::example7_catalog(&r);
    let winter = Fact::for_scope(&r, ex::scope(&r, &[("season", "Winter")])).unwrap();
    let mut residual = ResidualState::new(&r);
    residual.apply_fact(&r, &winter);
    let mut counters = Instrumentation::default();

    let bound_of = |pairs: &[(&str, &str)], counters: &mut Instrumentation| -> f64 {
        let scope = ex::scope(&r, pairs);
        for (g, group) in catalog.groups().iter().enumerate() {
            if group.mask == scope.mask() {
                let bounds = catalog.group_fact_bounds(&residual, g, counters);
                for (offset, bound) in bounds.iter().enumerate() {
                    if catalog.fact(group.fact_start + offset).scope == scope {
                        return *bound;
                    }
                }
            }
        }
        panic!("fact not found for {pairs:?}");
    };

    // "facts referencing Fall have an upper bound of 10".
    assert_eq!(bound_of(&[("season", "Fall")], &mut counters), 10.0);
    // "facts referencing the East cannot increase utility by more than
    // five (deviation between actual and expected delay in the East in
    // Winter)".
    assert_eq!(bound_of(&[("region", "East")], &mut counters), 5.0);
    // "the fact stating average delays in the North … utility gain (25)".
    let north = Fact::for_scope(&r, ex::scope(&r, &[("region", "North")])).unwrap();
    let north_gain = residual.gain_of(&r, &north);
    assert_eq!(north_gain, 25.0);
    // The North gain dominates the Fall and East bounds, so those facts
    // can be excluded, as the example concludes.
    assert!(north_gain > bound_of(&[("season", "Fall")], &mut counters));
    assert!(north_gain > bound_of(&[("region", "East")], &mut counters));
}

#[test]
fn theorem1_diminishing_returns_on_example() {
    // Adding Summer∧South to {Winter} gains at least as much as adding it
    // to {Winter, North}.
    let r = ex::relation();
    let winter = Fact::for_scope(&r, ex::scope(&r, &[("season", "Winter")])).unwrap();
    let north = Fact::for_scope(&r, ex::scope(&r, &[("region", "North")])).unwrap();
    let extra = Fact::for_scope(
        &r,
        ex::scope(&r, &[("season", "Summer"), ("region", "South")]),
    )
    .unwrap();
    let small = vec![winter.clone()];
    let large = vec![winter, north];
    let gain = |base: &[Fact]| {
        let mut with: Vec<Fact> = base.to_vec();
        with.push(extra.clone());
        utility(&r, &with) - utility(&r, base)
    };
    assert!(gain(&small) >= gain(&large));
}

#[test]
fn exact_is_optimal_on_the_example() {
    let r = ex::relation();
    let catalog = ex::example7_catalog(&r);
    for m in 1..=3 {
        let problem = Problem::new(&r, &catalog, m).unwrap();
        let exact = ExactSummarizer::paper().summarize(&problem).unwrap();
        let brute = BruteForceSummarizer.summarize(&problem).unwrap();
        assert_eq!(exact.utility, brute.utility, "m = {m}");
    }
}

#[test]
fn section3_speech_counts_scale_with_configuration() {
    // §III / Theorem 10: the number of queries grows with targets and
    // predicate combinations. Check the generator's arithmetic on the
    // running example: 1 empty + 4 + 4 singles + 16 pairs per target.
    use vqs_engine::prelude::*;
    let r = ex::relation();
    let config = Configuration::new("fig1", &["season", "region"], &["delay"]);
    let items = enumerate_queries(&r, &config, "delay");
    assert_eq!(items.len(), 1 + 4 + 4 + 16);
}
