//! The Theorem 4 reduction, executed: set cover instances decided through
//! speech summarization, cross-checked against a direct set-cover solver
//! on randomized instances.

use proptest::prelude::*;

use vqs_core::complexity::{decide_cover_via_summarization, reduce, SetCoverInstance};
use vqs_core::prelude::*;

/// Direct brute-force set cover decision (the oracle).
fn cover_exists(instance: &SetCoverInstance, m: usize) -> bool {
    let k = instance.subsets.len();
    let m = m.min(k);
    fn search(
        instance: &SetCoverInstance,
        m: usize,
        start: usize,
        chosen: &mut Vec<usize>,
    ) -> bool {
        if instance.is_cover(chosen) {
            return true;
        }
        if chosen.len() == m {
            return false;
        }
        for i in start..instance.subsets.len() {
            chosen.push(i);
            if search(instance, m, i + 1, chosen) {
                return true;
            }
            chosen.pop();
        }
        false
    }
    search(instance, m, 0, &mut Vec::new())
}

fn arb_instance() -> impl Strategy<Value = SetCoverInstance> {
    (3usize..7, 2usize..6).prop_flat_map(|(universe, subsets)| {
        prop::collection::vec(
            prop::collection::vec(0usize..universe, 1..universe),
            subsets..=subsets,
        )
        .prop_map(move |mut family| {
            for subset in &mut family {
                subset.sort_unstable();
                subset.dedup();
            }
            SetCoverInstance::new(universe, family).expect("elements in range")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reduction_decides_set_cover((instance, m) in (arb_instance(), 1usize..4)) {
        let via_summarization = decide_cover_via_summarization(&instance, m).unwrap();
        let direct = cover_exists(&instance, m);
        prop_assert_eq!(via_summarization, direct);
    }

    #[test]
    fn reduction_facts_cover_exactly_their_subsets(instance in arb_instance()) {
        let reduction = reduce(&instance).unwrap();
        for (s, fact) in reduction.facts.iter().enumerate() {
            for row in 0..reduction.relation.len() {
                prop_assert_eq!(
                    fact.scope.matches_row(&reduction.relation, row),
                    instance.subsets[s].contains(&row)
                );
            }
            // Typical value is 1 (all targets are 1).
            prop_assert_eq!(fact.value, 1.0);
        }
        // Base error equals the universe size: every row deviates by one.
        prop_assert_eq!(base_error(&reduction.relation), instance.universe_size as f64);
    }
}

#[test]
fn greedy_on_reduction_is_greedy_set_cover() {
    // On the reduction, greedy fact selection is exactly the classic
    // greedy set-cover heuristic: each step picks the subset covering the
    // most uncovered elements.
    let instance = SetCoverInstance::new(
        6,
        vec![
            vec![0, 1, 2, 3],
            vec![0, 1],
            vec![2, 3],
            vec![4],
            vec![4, 5],
        ],
    )
    .unwrap();
    let reduction = reduce(&instance).unwrap();
    let mut residual = ResidualState::new(&reduction.relation);
    let mut covered: Vec<usize> = Vec::new();
    for _ in 0..3 {
        let (best, gain) = reduction
            .facts
            .iter()
            .enumerate()
            .map(|(i, f)| (i, residual.gain_of(&reduction.relation, f)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        // Gain equals the number of newly covered elements.
        let newly: usize = instance.subsets[best]
            .iter()
            .filter(|e| !covered.contains(e))
            .count();
        assert_eq!(gain, newly as f64);
        residual.apply_fact(&reduction.relation, &reduction.facts[best]);
        covered.extend(instance.subsets[best].iter().copied());
    }
    // Greedy picks {0,1,2,3}, then {4,5} — a full cover in two steps plus
    // a zero-gain third step.
    covered.sort_unstable();
    covered.dedup();
    assert_eq!(covered, vec![0, 1, 2, 3, 4, 5]);
}

#[test]
fn reduction_scales_polynomially() {
    // Theorem 4's reduction is polynomial: relation size is
    // universe × subsets, one fact per subset.
    let instance = SetCoverInstance::new(
        20,
        (0..10).map(|s| (s..20).step_by(s + 1).collect()).collect(),
    )
    .unwrap();
    let reduction = reduce(&instance).unwrap();
    assert_eq!(reduction.relation.len(), 20);
    assert_eq!(reduction.relation.dim_count(), 10);
    assert_eq!(reduction.facts.len(), 10);
}
