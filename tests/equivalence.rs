//! Property-based cross-validation: the direct in-memory algorithms, the
//! relational (SQL-style) executions and the model's formal invariants
//! must all agree on randomized instances.

use proptest::prelude::*;

use vqs_core::prelude::*;
use vqs_core::relational::{RelationalExact, RelationalGreedy};

/// Strategy: a small random relation with 1–3 dimensions.
fn arb_relation() -> impl Strategy<Value = EncodedRelation> {
    (
        2usize..4,
        prop::collection::vec(0u8..3, 12..40),
        prop::collection::vec(0.0f64..50.0, 12..40),
        0.0f64..25.0,
    )
        .prop_map(|(dims, codes, targets, prior)| {
            let n = codes.len().min(targets.len());
            let rows: Vec<(Vec<String>, f64)> = (0..n)
                .map(|i| {
                    let values: Vec<String> = (0..dims)
                        .map(|d| format!("v{}", (codes[i] as usize + d * 7 + i * (d + 1)) % 3))
                        .collect();
                    (values, (targets[i] * 2.0).round() / 2.0)
                })
                .collect();
            let dim_names: Vec<String> = (0..dims).map(|d| format!("d{d}")).collect();
            let name_refs: Vec<&str> = dim_names.iter().map(String::as_str).collect();
            let row_refs: Vec<(Vec<&str>, f64)> = rows
                .iter()
                .map(|(values, t)| (values.iter().map(String::as_str).collect(), *t))
                .collect();
            EncodedRelation::from_rows(&name_refs, "y", row_refs, Prior::Constant(prior))
                .expect("well-formed random relation")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn utility_is_monotone(relation in arb_relation(), picks in prop::collection::vec(0usize..64, 1..6)) {
        let dims: Vec<usize> = (0..relation.dim_count()).collect();
        let catalog = FactCatalog::build(&relation, &dims, 2).unwrap();
        let facts: Vec<Fact> = picks
            .iter()
            .map(|&p| catalog.fact(p % catalog.len()).clone())
            .collect();
        // Monotonicity: utility never decreases as facts accumulate.
        let mut previous = 0.0;
        for i in 0..=facts.len() {
            let u = utility(&relation, &facts[..i]);
            prop_assert!(u + 1e-9 >= previous, "utility dropped from {previous} to {u}");
            previous = u;
        }
    }

    #[test]
    fn utility_is_submodular(relation in arb_relation(), picks in prop::collection::vec(0usize..64, 3..6)) {
        // Theorem 1: the marginal gain of a fact shrinks as the speech
        // grows (F1 ⊆ F2 ⇒ Δ(F1, f) ≥ Δ(F2, f)).
        let dims: Vec<usize> = (0..relation.dim_count()).collect();
        let catalog = FactCatalog::build(&relation, &dims, 2).unwrap();
        let facts: Vec<Fact> = picks
            .iter()
            .map(|&p| catalog.fact(p % catalog.len()).clone())
            .collect();
        let (new_fact, rest) = facts.split_last().unwrap();
        for split in 0..rest.len() {
            let small = &rest[..split];
            let large = rest;
            let gain = |base: &[Fact]| {
                let mut with = base.to_vec();
                with.push(new_fact.clone());
                utility(&relation, &with) - utility(&relation, base)
            };
            prop_assert!(gain(small) + 1e-9 >= gain(large));
        }
    }

    #[test]
    fn residual_state_tracks_speech_error(relation in arb_relation(), picks in prop::collection::vec(0usize..64, 1..5)) {
        let dims: Vec<usize> = (0..relation.dim_count()).collect();
        let catalog = FactCatalog::build(&relation, &dims, 2).unwrap();
        let facts: Vec<Fact> = picks
            .iter()
            .map(|&p| catalog.fact(p % catalog.len()).clone())
            .collect();
        let mut state = ResidualState::new(&relation);
        for fact in &facts {
            state.apply_fact(&relation, fact);
        }
        let direct = speech_error(&relation, &facts);
        prop_assert!((state.total() - direct).abs() < 1e-9);
    }

    #[test]
    fn greedy_variants_agree(relation in arb_relation()) {
        let dims: Vec<usize> = (0..relation.dim_count()).collect();
        let catalog = FactCatalog::build(&relation, &dims, 2).unwrap();
        let problem = Problem::new(&relation, &catalog, 3).unwrap();
        let base = GreedySummarizer::base().summarize(&problem).unwrap();
        let naive = GreedySummarizer::with_naive_pruning().summarize(&problem).unwrap();
        let optimized = GreedySummarizer::with_optimized_pruning().summarize(&problem).unwrap();
        prop_assert!((base.utility - naive.utility).abs() < 1e-9);
        prop_assert!((base.utility - optimized.utility).abs() < 1e-9);
    }

    #[test]
    fn exact_dominates_greedy_within_bound(relation in arb_relation()) {
        let dims: Vec<usize> = (0..relation.dim_count()).collect();
        let catalog = FactCatalog::build(&relation, &dims, 1).unwrap();
        let problem = Problem::new(&relation, &catalog, 2).unwrap();
        let greedy = GreedySummarizer::base().summarize(&problem).unwrap();
        let exact = ExactSummarizer::paper().summarize(&problem).unwrap();
        prop_assert!(exact.utility + 1e-9 >= greedy.utility);
        // Theorem 3: greedy ≥ (1 − 1/e)·OPT.
        let factor = 1.0 - 1.0 / std::f64::consts::E;
        prop_assert!(greedy.utility + 1e-9 >= factor * exact.utility);
    }

    #[test]
    fn relational_greedy_matches_direct(relation in arb_relation()) {
        let dims: Vec<usize> = (0..relation.dim_count()).collect();
        let catalog = FactCatalog::build(&relation, &dims, 2).unwrap();
        let problem = Problem::new(&relation, &catalog, 2).unwrap();
        let direct = GreedySummarizer::base().summarize(&problem).unwrap();
        let relational = RelationalGreedy.summarize(&problem).unwrap();
        prop_assert!(
            (direct.utility - relational.utility).abs() < 1e-9,
            "direct {} vs relational {}",
            direct.utility,
            relational.utility
        );
    }
}

// The relational exact path is slower; exercise it on fewer cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn relational_exact_matches_direct(relation in arb_relation()) {
        let dims: Vec<usize> = (0..relation.dim_count()).collect();
        let catalog = FactCatalog::build(&relation, &dims, 1).unwrap();
        let problem = Problem::new(&relation, &catalog, 2).unwrap();
        let direct = ExactSummarizer::paper().summarize(&problem).unwrap();
        let relational = RelationalExact::with_greedy_bound(&problem)
            .unwrap()
            .summarize(&problem)
            .unwrap();
        prop_assert!(
            (direct.utility - relational.utility).abs() < 1e-9,
            "direct {} vs relational {}",
            direct.utility,
            relational.utility
        );
    }
}

#[test]
fn catalog_partitions_are_exhaustive_and_exclusive() {
    // Deterministic variant of the partition invariant on a seeded batch.
    for seed in 0..5u64 {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<(Vec<String>, f64)> = (0..60)
            .map(|_| {
                (
                    vec![
                        format!("a{}", rng.gen_range(0..4)),
                        format!("b{}", rng.gen_range(0..3)),
                    ],
                    rng.gen_range(0.0..10.0),
                )
            })
            .collect();
        let refs: Vec<(Vec<&str>, f64)> = rows
            .iter()
            .map(|(values, t)| (values.iter().map(String::as_str).collect(), *t))
            .collect();
        let relation =
            EncodedRelation::from_rows(&["a", "b"], "y", refs, Prior::GlobalMean).unwrap();
        let catalog = FactCatalog::build(&relation, &[0, 1], 2).unwrap();
        for group in catalog.groups() {
            let mut support_sum = 0;
            for id in group.fact_ids() {
                support_sum += catalog.fact(id).support;
            }
            // Each group's facts partition all rows.
            assert_eq!(support_sum, relation.len());
            for row in 0..relation.len() {
                let fact = catalog.fact(group.fact_of_row(row));
                assert!(fact.scope.matches_row(&relation, row));
            }
        }
    }
}
