//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! exposes the subset of the `parking_lot` API the workspace uses,
//! backed by `std::sync`. Unlike std, `parking_lot` locks do not poison:
//! a panicked writer simply releases the lock. We emulate that by
//! unwrapping poison errors into the inner guard.

use std::sync::TryLockError;

/// A reader-writer lock with the `parking_lot` calling convention:
/// `read()`/`write()` return guards directly instead of a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A mutex with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn try_variants() {
        let lock = RwLock::new(0);
        let g = lock.read();
        assert!(lock.try_read().is_some());
        assert!(lock.try_write().is_none());
        drop(g);
        assert!(lock.try_write().is_some());
    }
}
