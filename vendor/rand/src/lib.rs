//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this vendored shim
//! implements the slice of the `rand` 0.8 surface the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256**, seeded
//! through SplitMix64 — deterministic for a given seed, which is all the
//! experiments and tests rely on. Stream values differ from upstream
//! `rand`; nothing in the workspace depends on upstream streams.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples a value uniformly from `range`. Panics on empty ranges.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable without parameters (`rng.gen::<T>()`).
pub trait Standard {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free-enough uniform integer in `[0, span)` via Lemire's
/// widening-multiply method with rejection on the biased zone.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                let value = self.start + (self.end - self.start) * unit;
                if value >= self.end {
                    // start + span * unit can round up to `end` even though
                    // unit < 1; pull back inside the half-open contract.
                    self.end.next_down().max(self.start)
                } else {
                    value
                }
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                // Closed unit interval [0, 1] so `end` itself is reachable,
                // honoring the inclusive-range contract; the clamp guards
                // against `start + (end - start)` overshooting via rounding.
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                (start + (end - start) * unit).clamp(start, end)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice extension: random shuffling and element choice.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_u64(rng, self.len() as u64) as usize;
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..6);
            assert!((3..6).contains(&v));
            let f = rng.gen_range(0.9..1.2);
            assert!((0.9..1.2).contains(&f));
            let u = rng.gen_range(0usize..=4);
            assert!(u <= 4);
            let neg = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&neg));
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
