//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! implements the `proptest` API subset the workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`Strategy`] with `prop_map`/`prop_flat_map`, ranges and tuples as
//! strategies, `Just`, `any`, `prop_oneof!`, character-class string
//! strategies (`"[a-z]{0,6}"`), and `prop::collection::{vec, btree_map}`.
//!
//! Differences from upstream: failing cases are **not shrunk** — the
//! failure report carries the deterministic seed and case index instead —
//! and each test runs a fixed number of cases (default
//! [`ProptestConfig::DEFAULT_CASES`], override with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`).

use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies while generating a case.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner with a deterministic seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Error raised inside a property body: a genuine failure
/// (`prop_assert!`) or a rejected case (`prop_assume!`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold for the generated input.
    Fail(String),
    /// The generated input does not satisfy a precondition; the case is
    /// skipped without counting as a failure.
    Reject(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(message) => write!(f, "{message}"),
            TestCaseError::Reject(message) => write!(f, "rejected: {message}"),
        }
    }
}

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// Default number of cases per property.
    pub const DEFAULT_CASES: u32 = 64;

    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: Self::DEFAULT_CASES,
        }
    }
}

/// A generator of random values of type `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking;
/// a strategy simply draws a value from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy for storage in heterogeneous collections.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        (self.f)(self.inner.generate(runner)).generate(runner)
    }
}

/// A type-erased strategy (`Strategy::boxed`), cheap to clone.
pub struct BoxedStrategy<V>(Rc<dyn ErasedStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

trait ErasedStrategy<V> {
    fn generate_erased(&self, runner: &mut TestRunner) -> V;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn generate_erased(&self, runner: &mut TestRunner) -> S::Value {
        self.generate(runner)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, runner: &mut TestRunner) -> V {
        self.0.generate_erased(runner)
    }
}

/// Strategy always yielding a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally-weighted boxed strategies
/// (backs the [`prop_oneof!`] macro).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, runner: &mut TestRunner) -> V {
        let i = runner.rng().gen_range(0..self.options.len());
        self.options[i].generate(runner)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(runner),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// `&str` acts as a character-class pattern strategy: a sequence of
/// `[a-z]`-style classes or literal characters, each optionally followed
/// by `{n}` or `{m,n}`. This covers patterns like `"[a-z]{0,6}"`;
/// unsupported regex syntax panics at generation time.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, runner: &mut TestRunner) -> String {
        generate_from_pattern(self, runner)
    }
}

fn generate_from_pattern(pattern: &str, runner: &mut TestRunner) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a character class or a literal character.
        let alphabet: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                    set.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            assert!(
                !"\\^$.|?*+()".contains(c),
                "unsupported regex syntax {c:?} in pattern {pattern:?}"
            );
            i += 1;
            vec![c]
        };
        assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");

        // Parse an optional {n} / {m,n} repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad repetition bound"),
                    n.trim().parse::<usize>().expect("bad repetition bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad repetition bound");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };

        let count = runner.rng().gen_range(lo..=hi);
        for _ in 0..count {
            let k = runner.rng().gen_range(0..alphabet.len());
            out.push(alphabet[k]);
        }
    }
    out
}

/// Strategy for "any value of `T`" (backs [`any`]).
pub struct AnyStrategy<T>(PhantomData<T>);

/// Returns the standard strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Types with a standard unconstrained strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.rng().gen()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> $t {
                runner.rng().gen()
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! arbitrary_float {
    ($($t:ty => $bits:ty),*) => {$(
        impl Arbitrary for $t {
            /// Full-domain floats from uniform bit patterns — negatives,
            /// huge/tiny magnitudes, subnormals, and infinities all occur
            /// (as in upstream proptest). NaN payloads collapse to 0.0 so
            /// properties using `==`/ordering stay meaningful.
            fn arbitrary(runner: &mut TestRunner) -> $t {
                let value = <$t>::from_bits(runner.rng().gen::<$bits>());
                if value.is_nan() {
                    0.0
                } else {
                    value
                }
            }
        }
    )*};
}
arbitrary_float!(f32 => u32, f64 => u64);

/// Collection strategies (`prop::collection::vec` and friends).
pub mod collection {
    use super::*;

    /// Sizes acceptable for collection strategies: `n`, `m..n`, `m..=n`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, runner: &mut TestRunner) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _runner: &mut TestRunner) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec()`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let n = self.size.pick(runner);
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` with *up to* `size`
    /// entries (duplicate keys collapse, as in upstream proptest).
    pub fn btree_map<K, V, Z>(keys: K, values: V, size: Z) -> BTreeMapStrategy<K, V, Z>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        Z: SizeRange,
    {
        BTreeMapStrategy { keys, values, size }
    }

    /// Strategy produced by [`btree_map`].
    pub struct BTreeMapStrategy<K, V, Z> {
        keys: K,
        values: V,
        size: Z,
    }

    impl<K, V, Z> Strategy for BTreeMapStrategy<K, V, Z>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        Z: SizeRange,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let n = self.size.pick(runner);
            (0..n)
                .map(|_| (self.keys.generate(runner), self.values.generate(runner)))
                .collect()
        }
    }
}

/// Runs `cases` random executions of `body`, panicking with the seed and
/// case index on the first failure. Called by the [`proptest!`] macro.
pub fn run_property<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRunner) -> TestCaseResult,
{
    for case in 0..config.cases {
        // Deterministic per-test seed: stable across runs and platforms.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        seed = seed.wrapping_add(case as u64);
        let mut runner = TestRunner::from_seed(seed);
        match body(&mut runner) {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(message)) => panic!(
                "property `{name}` failed at case {case}/{} (seed {seed:#x}): {message}",
                config.cases
            ),
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not the process) so the harness can report seed and case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Skips the current case when a generated input fails a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        $crate::prop_assume!($cond, concat!("assumption failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests. Each function body runs for a configurable
/// number of random cases (see [`ProptestConfig`]); generated arguments
/// bind the patterns on the left of `in` to draws from the strategy on
/// the right.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            #[test]
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(&config, concat!(module_path!(), "::", stringify!($name)), |runner| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), runner);)+
                    (move || -> $crate::TestCaseResult { $body Ok(()) })()
                });
            }
        )*
    };
    (
        $(
            #[test]
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                #[test]
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
        TestRunner,
    };

    /// Alias so `prop::collection::vec(...)` paths resolve, as in
    /// upstream proptest's prelude.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generation_respects_class_and_bounds() {
        let mut runner = TestRunner::from_seed(9);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{1,2}", &mut runner);
            assert!((1..=2).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = Strategy::generate(&"[a-z]{0,6}", &mut runner);
            assert!(t.len() <= 6);
        }
    }

    proptest! {
        #[test]
        fn ranges_and_collections(
            xs in prop::collection::vec(0i64..10, 0..8),
            m in prop::collection::btree_map(0usize..4, 0u32..3, 0..5),
            flag in any::<bool>(),
        ) {
            prop_assert!(xs.len() < 8);
            prop_assert!(xs.iter().all(|&x| (0..10).contains(&x)));
            prop_assert!(m.len() < 5);
            let picked = if flag { xs.len() } else { m.len() };
            prop_assert!(picked < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn oneof_map_and_flat_map(v in prop_oneof![Just(1i32), 10i32..20], (n, ys) in
            (1usize..4).prop_flat_map(|n| (Just(n), prop::collection::vec(0u8..5, n..=n)))) {
            prop_assert!(v == 1 || (10..20).contains(&v));
            prop_assert_eq!(ys.len(), n);
        }
    }
}
