//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! implements the `criterion` API subset the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`BatchSize`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Instead of criterion's statistical machinery it reports the
//! median wall-clock time per iteration over a fixed number of samples —
//! enough for the repo's perf harnesses to compile, run, and give
//! directional numbers.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost; the shim treats every
/// variant as "one setup per measured batch".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Measurement settings shared by a group of benchmarks.
#[derive(Debug, Clone)]
struct Settings {
    sample_count: usize,
    target_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_count: 20,
            target_time: Duration::from_millis(400),
        }
    }
}

/// Benchmark registry and runner.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &self.settings, &mut routine);
        self
    }

    /// Opens a named group; benchmarks in it report as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            settings: Settings::default(),
        }
    }
}

/// A group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.settings.sample_count = samples.max(1);
        self
    }

    /// Overrides the per-sample time budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.settings.target_time = time;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, &self.settings, &mut routine);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, settings: &Settings, routine: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        settings: settings.clone(),
    };
    routine(&mut bencher);
    bencher.report(name);
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    settings: Settings,
}

impl Bencher {
    /// Times `routine`, auto-scaling iterations per sample so a sample
    /// lasts long enough to be measurable.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the batch geometrically to ~1/10 of a sample,
        // then scale it linearly so each sample spends the full
        // per-sample share of `target_time`.
        let mut batch = 1u64;
        let per_sample =
            self.settings.target_time.as_nanos() as u64 / self.settings.sample_count.max(1) as u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = (start.elapsed().as_nanos() as u64).max(1);
            if elapsed * 10 >= per_sample || batch >= 1 << 20 {
                if elapsed < per_sample {
                    batch = (batch * per_sample / elapsed).clamp(batch, 1 << 24);
                }
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.settings.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    /// Times `routine` over inputs built by `setup`; setup time is not
    /// measured. Batches several inputs per timed sample so the timer's
    /// own overhead does not dominate nanosecond-scale routines.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let batch: u32 = match size {
            BatchSize::SmallInput => 16,
            BatchSize::LargeInput => 4,
            BatchSize::PerIteration => 1,
        };
        for _ in 0..self.settings.sample_count {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let (lo, hi) = (self.samples[0], *self.samples.last().unwrap());
        println!(
            "{name:<40} median {:>12} (min {}, max {}, {} samples)",
            format_ns(median),
            format_ns(lo),
            format_ns(hi),
            self.samples.len()
        );
    }
}

fn format_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Bundles benchmark functions into a callable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups; ignores harness CLI flags
/// (`--bench`, filters) that cargo passes through.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench invokes the binary with flags such as --bench;
            // the shim benchmarks everything unconditionally.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(3));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}
