#!/usr/bin/env python3
"""Scale-regression gate over the committed BENCH_scale.json.

Compares a fresh CI smoke run of `bench_scale --smoke` against the
committed file's `smoke_baseline` section:

* wall-time metrics (preprocess_ms, ingest_flush_ms, load p99) must not
  regress beyond RATIO (1.5x), with an absolute noise floor so
  microsecond-scale jitter on shared runners never trips the gate;
* the wide-probe counts (wide_probe_16 / wide_probe_20) are pure
  functions of the seeded store contents and must match *exactly* — a
  drift means the lookup algorithm or the secondary index changed, which
  is a finding to record in BENCH_scale.json, not noise.

The committed baseline is regenerated per perf-relevant PR with
`cargo run --release -p vqs-bench --bin bench_scale -- --out BENCH_scale.json`.

Usage: check_scale.py BENCH_scale.json BENCH_scale.ci.json
"""

import json
import sys

RATIO = 1.5
# (metric path, absolute floor below which both values are "fast enough
# to not matter": ms for wall times, micros for latencies)
WALL_METRICS = [
    (("smoke_baseline", "preprocess_ms"), 20.0),
    (("smoke_baseline", "ingest_flush_ms"), 20.0),
    (("smoke_baseline", "load", "p99_intended_micros"), 20000.0),
]
EXACT_METRICS = [
    ("smoke_baseline", "wide_probe_16"),
    ("smoke_baseline", "wide_probe_20"),
]


def dig(data, path):
    for key in path:
        data = data[key]
    return data


def main(committed_path, fresh_path):
    with open(committed_path) as handle:
        committed = json.load(handle)
    with open(fresh_path) as handle:
        fresh = json.load(handle)
    if committed["schema"] != "vqs-bench-scale/v1":
        raise SystemExit(f"unexpected schema in {committed_path}")
    if fresh["schema"] != "vqs-bench-scale/v1":
        raise SystemExit(f"unexpected schema in {fresh_path}")

    failures = []
    for path, floor in WALL_METRICS:
        name = ".".join(path)
        base = float(dig(committed, path))
        now = float(dig(fresh, path))
        if base <= floor and now <= floor:
            verdict = "ok (under noise floor)"
        elif now > RATIO * max(base, floor):
            verdict = f"REGRESSED (> {RATIO}x)"
            failures.append(name)
        else:
            verdict = "ok"
        print(f"{name}: committed {base:.3f}, fresh {now:.3f} -- {verdict}")

    for path in EXACT_METRICS:
        name = ".".join(path)
        base = dig(committed, path)
        now = dig(fresh, path)
        if base != now:
            print(f"{name}: committed {base}, fresh {now} -- MISMATCH")
            failures.append(name)
        else:
            print(f"{name}: {base} -- ok (exact)")

    if failures:
        raise SystemExit(f"scale gate failed on: {failures}")
    print("scale gate OK")


if __name__ == "__main__":
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    main(sys.argv[1], sys.argv[2])
