#!/usr/bin/env python3
"""Worker-parity gate over a BENCH_solver.json (schema v2) file.

With the adaptive fan-out gate and the pool-backed executor, granting
eight workers must never make the pinned exact-search scenarios slower
than one worker beyond noise. The regression this guards against:
per-search scoped-thread spawns costing ~8x on microsecond-scale search
trees (the v1 baseline showed exact-8w at 4.18 ms vs exact-1w at
0.49 ms on A-H). Entries are already best-of-N batches; the 1.1x
tolerance covers residual scheduler jitter.

Usage: check_worker_parity.py BENCH_solver.json
"""

import json
import sys

TOLERANCE = 1.1


def main(path):
    with open(path) as handle:
        data = json.load(handle)
    exact = {
        (entry["scenario"], entry["workers"]): entry["wall_ms"]
        for entry in data["entries"]
        if entry["algorithm"] == "E"
    }
    scenarios = sorted({scenario for scenario, _ in exact})
    if not scenarios:
        raise SystemExit("no exact-solver entries found in " + path)
    failures = []
    for scenario in scenarios:
        one = exact[(scenario, 1)]
        eight = exact[(scenario, 8)]
        ratio = eight / one if one > 0 else 0.0
        print(
            f"{scenario}: exact-1w {one:.3f} ms, exact-8w {eight:.3f} ms, "
            f"ratio {ratio:.3f}"
        )
        if eight > TOLERANCE * one:
            failures.append(scenario)
    if failures:
        raise SystemExit(
            f"exact-8w slower than exact-1w beyond {TOLERANCE}x on: {failures}"
        )
    print("worker parity OK")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        raise SystemExit(__doc__)
    main(sys.argv[1])
