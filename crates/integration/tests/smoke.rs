//! Workspace smoke test: the Fig. 1 running example from the `vqs-core`
//! crate docs (Winter/Summer × East/South flight delays), exercised
//! through the integration layer so that a regression in the doctest's
//! API surface fails here too.

use vqs_core::prelude::*;

#[test]
fn fig1_running_example_yields_a_nonempty_optimal_fact_set() {
    // Mirrors the example block in crates/core/src/lib.rs.
    let relation = EncodedRelation::from_rows(
        &["season", "region"],
        "delay",
        vec![
            (vec!["Winter", "East"], 20.0),
            (vec!["Winter", "South"], 10.0),
            (vec!["Summer", "South"], 20.0),
            (vec!["Summer", "East"], 0.0),
        ],
        Prior::Constant(0.0),
    )
    .unwrap();

    let catalog = FactCatalog::build(&relation, &[0, 1], 2).unwrap();
    let problem = Problem::new(&relation, &catalog, 2).unwrap();

    let greedy = GreedySummarizer::with_optimized_pruning()
        .summarize(&problem)
        .unwrap();
    assert!(
        !greedy.speech.is_empty(),
        "greedy summary must select at least one fact"
    );
    assert!(greedy.utility > 0.0, "facts must improve on the prior");

    // The exact solver agrees this instance has a useful summary, and
    // greedy respects its (1 - 1/e) guarantee on it.
    let exact = ExactSummarizer::paper().summarize(&problem).unwrap();
    assert!(!exact.speech.is_empty());
    assert!(exact.utility + 1e-9 >= greedy.utility);
    assert!(greedy.utility >= (1.0 - (-1.0f64).exp()) * exact.utility - 1e-9);

    // Every selected fact stays within the configured scope budget.
    for fact in greedy.speech.facts() {
        assert!(fact.scope.len() <= 2);
    }
}
