//! Concurrency hardening for the sharded speech store and the
//! work-stealing pre-processing pipeline: writer/reader stress with
//! invariant checks, and determinism in the worker count.

use std::sync::atomic::{AtomicBool, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vqs_core::prelude::GreedySummarizer;
use vqs_data::{DimSpec, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;

const TARGETS: [&str; 2] = ["delay", "cancelled"];
const DIMS: [&str; 3] = ["season", "region", "airline"];
const VALUES_PER_DIM: usize = 8;

/// The deterministic text every writer stores for a query; readers use it
/// to detect torn or half-written speeches.
fn expected_text(query: &Query) -> String {
    format!("speech::{query}")
}

fn speech_for(query: Query) -> StoredSpeech {
    let rows = 1 + query.len() * 10;
    StoredSpeech {
        text: expected_text(&query),
        facts: vec![],
        utility: query.len() as f64,
        base_error: 2.0,
        rows,
        query,
    }
}

/// A deterministic universe of distinct queries: every 0-, 1- and
/// 2-predicate combination over the small dimension/value grid.
fn query_universe() -> Vec<Query> {
    let value = |v: usize| format!("v{v}");
    let mut queries = Vec::new();
    for target in TARGETS {
        queries.push(Query::of(target, &[]));
        for (d, dim) in DIMS.iter().enumerate() {
            for v in 0..VALUES_PER_DIM {
                queries.push(Query::new(target, [(dim.to_string(), value(v))]));
                for dim2 in &DIMS[d + 1..] {
                    for v2 in 0..VALUES_PER_DIM {
                        queries.push(Query::new(
                            target,
                            [(dim.to_string(), value(v)), (dim2.to_string(), value(v2))],
                        ));
                    }
                }
            }
        }
    }
    queries
}

/// 8 writers + 8 readers hammer the store concurrently. Every concurrent
/// lookup must observe either a miss or a fully-formed speech, no insert
/// may be lost, and the final state must equal a sequential replay.
#[test]
fn stress_8_writers_8_readers() {
    let universe = query_universe();
    assert!(universe.len() >= 400, "universe too small to stress shards");
    let store = SpeechStore::new();
    let writers_done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let chunk = universe.len().div_ceil(8);
        for (w, slice) in universe.chunks(chunk).enumerate() {
            let store = &store;
            scope.spawn(move || {
                // Insert twice (second pass replaces with identical
                // content) to exercise the replacement path under load.
                for pass in 0..2 {
                    for query in slice {
                        store.insert(speech_for(query.clone()));
                    }
                    if pass == 0 && w == 0 {
                        std::thread::yield_now();
                    }
                }
            });
        }
        for r in 0..8 {
            let store = &store;
            let universe = &universe;
            let writers_done = &writers_done;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC0FFEE + r);
                let mut observed_hit = false;
                loop {
                    let done = writers_done.load(Ordering::Relaxed);
                    for _ in 0..500 {
                        let probe = match rng.gen_range(0..4u32) {
                            // An exact stored query.
                            0 | 1 => universe[rng.gen_range(0..universe.len())].clone(),
                            // A 3-predicate query forcing the fallback.
                            2 => {
                                let target = TARGETS[rng.gen_range(0..TARGETS.len())];
                                Query::new(
                                    target,
                                    DIMS.iter().map(|dim| {
                                        (
                                            dim.to_string(),
                                            format!("v{}", rng.gen_range(0..VALUES_PER_DIM)),
                                        )
                                    }),
                                )
                            }
                            // An unknown target: always a miss.
                            _ => Query::of("satisfaction", &[("season", "v0")]),
                        };
                        match store.lookup(&probe) {
                            Lookup::Miss => {}
                            Lookup::Exact(speech) => {
                                observed_hit = true;
                                assert_eq!(speech.query, probe);
                                assert_eq!(speech.text, expected_text(&speech.query));
                            }
                            Lookup::Generalized {
                                speech,
                                kept_predicates,
                            } => {
                                observed_hit = true;
                                assert!(
                                    speech.query.subset_of(&probe),
                                    "{} ⊄ {}",
                                    speech.query,
                                    probe
                                );
                                assert_ne!(speech.query, probe);
                                assert_eq!(kept_predicates, speech.query.len());
                                assert_eq!(speech.text, expected_text(&speech.query));
                            }
                        }
                    }
                    if done {
                        break;
                    }
                }
                // After the writers finished, at least the final rounds
                // must have seen data (the store is fully populated).
                assert!(observed_hit);
            });
        }
        // Watcher: release the readers once every insert is visible, so
        // each reader runs at least one full round against the complete
        // store before exiting.
        scope.spawn(|| {
            while store.len() < universe.len() {
                std::thread::yield_now();
            }
            writers_done.store(true, Ordering::Relaxed);
        });
    });

    // No lost inserts.
    assert_eq!(store.len(), universe.len());
    // Final state equals a sequential replay.
    let replay = SpeechStore::new();
    for query in &universe {
        replay.insert(speech_for(query.clone()));
    }
    assert_eq!(store.snapshot(), replay.snapshot());
    // Every stored query now answers exactly.
    for query in &universe {
        match store.lookup(query) {
            Lookup::Exact(speech) => assert_eq!(speech.text, expected_text(query)),
            other => panic!("{query} should hit exactly, got {other:?}"),
        }
    }
}

/// Concurrent `invalidate_target` against readers: lookups of the other
/// target are never disturbed, and the invalidated target transitions to
/// misses without ever serving a malformed speech.
#[test]
fn invalidation_under_concurrent_reads() {
    let universe = query_universe();
    let store = SpeechStore::new();
    for query in &universe {
        store.insert(speech_for(query.clone()));
    }
    std::thread::scope(|scope| {
        let store = &store;
        let universe = &universe;
        scope.spawn(move || {
            store.invalidate_target("delay");
        });
        for r in 0..4 {
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(99 + r);
                for _ in 0..2_000 {
                    let probe = &universe[rng.gen_range(0..universe.len())];
                    match store.lookup(probe) {
                        Lookup::Miss => assert_eq!(probe.target(), "delay"),
                        Lookup::Exact(speech) => {
                            assert_eq!(speech.text, expected_text(&speech.query))
                        }
                        Lookup::Generalized { speech, .. } => {
                            // Mid-invalidation a more general surviving
                            // speech may answer; it must still be whole.
                            assert_eq!(speech.text, expected_text(&speech.query));
                            assert!(speech.query.subset_of(probe));
                        }
                    }
                }
            });
        }
    });
    assert_eq!(store.speeches_for_target("delay").len(), 0);
    let cancelled: Vec<_> = store.speeches_for_target("cancelled");
    assert_eq!(cancelled.len(), universe.len() / 2);
}

fn determinism_dataset() -> vqs_data::GeneratedDataset {
    SynthSpec {
        name: "determinism".to_string(),
        dims: vec![
            DimSpec::named("season", &["Winter", "Spring", "Summer", "Fall"]),
            DimSpec::named("region", &["East", "West", "North", "South"]),
            DimSpec::synthetic("airline", "airline", 3, 0.4),
        ],
        targets: vec![
            TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0)),
            TargetSpec::new("cancelled", 30.0, 10.0, 4.0, (0.0, 1000.0)),
        ],
        rows: 600,
    }
    .generate(0xD57, 1.0)
}

/// `preprocess` with 1, 2, and 8 workers yields byte-identical stores and
/// identical instrumentation totals — the work-stealing queue must not
/// introduce chunking- or scheduling-dependent results. Registration
/// runs on the service's shared solver pool, so this also pins the
/// pool-executor path.
#[test]
fn preprocess_is_deterministic_in_worker_count() {
    let data = determinism_dataset();
    let config = Configuration::new(
        "determinism",
        &["season", "region", "airline"],
        &["delay", "cancelled"],
    );
    let runs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&workers| {
            let service = ServiceBuilder::new()
                .workers(workers)
                .summarizer(GreedySummarizer::with_optimized_pruning())
                .build();
            let report = service
                .register_dataset(TenantSpec::new("determinism", data.clone(), config.clone()))
                .unwrap();
            (service.tenant_store("determinism").unwrap(), report)
        })
        .collect();
    let (reference_store, reference_report) = &runs[0];
    let reference = reference_store.snapshot();
    assert!(reference_report.queries > 50);
    for (store, report) in &runs[1..] {
        assert_eq!(report.queries, reference_report.queries);
        assert_eq!(report.speeches, reference_report.speeches);
        // Instrumentation totals are summed in job order from per-worker
        // partials: exactly equal, not just approximately.
        assert_eq!(report.instrumentation, reference_report.instrumentation);
        let snapshot = store.snapshot();
        assert_eq!(snapshot, reference);
        // Byte-identical including float formatting, not just PartialEq.
        assert_eq!(format!("{snapshot:?}"), format!("{reference:?}"));
    }
}
