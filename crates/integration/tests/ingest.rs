//! Streaming-ingestion differential suite (ISSUE 9 acceptance).
//!
//! The convergence contract: any interleaving of [`RowDelta`] batches
//! through `VoiceService::ingest`, once the log drains, leaves the
//! tenant's store byte-identical to a cold `register_dataset` of the
//! final table — for any solver worker count. The proptest generates
//! abstract operations, interprets them against a running row count so
//! every index is valid, and feeds the *same* concrete deltas to the
//! streaming engine and to a plain `Vec` fold that builds the reference
//! table.
//!
//! Alongside the differential: a concurrent-readers stress test (no
//! torn or missing entries while flushes swap summaries underneath),
//! and a pointer-stability check that the incremental circuit leaves
//! untouched entries `Arc`-identical instead of rebuilding the store.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use vqs_data::{DimSpec, GeneratedDataset, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;
use vqs_relalg::prelude::{Table, Value};

const SEASONS: [&str; 2] = ["Winter", "Summer"];
const REGIONS: [&str; 2] = ["East", "West"];

fn dataset(seed: u64, rows: usize) -> GeneratedDataset {
    SynthSpec {
        name: "stream".to_string(),
        dims: vec![
            DimSpec::named("season", &SEASONS),
            DimSpec::named("region", &REGIONS),
        ],
        targets: vec![TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0))],
        rows,
    }
    .generate(seed, 1.0)
}

fn config() -> Configuration {
    Configuration::new("stream", &["season", "region"], &["delay"])
}

fn row(season: usize, region: usize, delay: u32) -> Vec<Value> {
    vec![
        Value::str(SEASONS[season]),
        Value::str(REGIONS[region]),
        Value::Float(f64::from(delay) / 10.0),
    ]
}

/// An abstract table operation; indexes are resolved against the row
/// count at application time so generated programs are always valid.
#[derive(Debug, Clone)]
enum Op {
    Insert {
        season: usize,
        region: usize,
        delay: u32,
    },
    Update {
        pick: usize,
        season: usize,
        region: usize,
        delay: u32,
    },
    Delete {
        pick: usize,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..2, 0usize..2, 0u32..600).prop_map(|(season, region, delay)| Op::Insert {
            season,
            region,
            delay
        }),
        (any::<usize>(), 0usize..2, 0usize..2, 0u32..600).prop_map(
            |(pick, season, region, delay)| Op::Update {
                pick,
                season,
                region,
                delay
            }
        ),
        any::<usize>().prop_map(|pick| Op::Delete { pick }),
    ]
}

/// Interpret abstract batches into concrete deltas, tracking the row
/// count exactly like the engine applies them (deletes shift like
/// `Vec::remove`, so the count changes *within* a batch too).
fn concretize(batches: &[Vec<Op>], mut rows: usize) -> Vec<Vec<RowDelta>> {
    batches
        .iter()
        .map(|batch| {
            batch
                .iter()
                .filter_map(|op| match op {
                    Op::Insert {
                        season,
                        region,
                        delay,
                    } => {
                        rows += 1;
                        Some(RowDelta::Insert(row(*season, *region, *delay)))
                    }
                    Op::Update {
                        pick,
                        season,
                        region,
                        delay,
                    } => (rows > 0).then(|| RowDelta::Update {
                        row: pick % rows,
                        values: row(*season, *region, *delay),
                    }),
                    Op::Delete { pick } => (rows > 0).then(|| {
                        let index = pick % rows;
                        rows -= 1;
                        RowDelta::Delete { row: index }
                    }),
                })
                .collect()
        })
        .collect()
}

/// The reference semantics: fold the same deltas over a plain row
/// vector and rebuild a table.
fn reference_fold(base: &GeneratedDataset, batches: &[Vec<RowDelta>]) -> GeneratedDataset {
    let mut rows: Vec<Vec<Value>> = base.table.iter_rows().collect();
    for delta in batches.iter().flatten() {
        match delta {
            RowDelta::Insert(values) => rows.push(values.clone()),
            RowDelta::Update { row, values } => rows[*row] = values.clone(),
            RowDelta::Delete { row } => {
                rows.remove(*row);
            }
        }
    }
    GeneratedDataset {
        name: base.name.clone(),
        table: Table::from_rows(base.table.schema().clone(), rows).unwrap(),
        dims: base.dims.clone(),
        targets: base.targets.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Streaming ≡ batch: ingest batches (with mid-run auto-flushes from
    // a tiny dirty cap) + drain == cold preprocess of the final table,
    // byte-identical, for 1 and 8 solver workers.
    #[test]
    fn interleaved_ingest_converges_to_cold_preprocess(
        batches in prop::collection::vec(prop::collection::vec(arb_op(), 1..6), 1..5),
        seed in 1u64..64,
        workers in prop_oneof![Just(1usize), Just(8)],
    ) {
        let base = dataset(seed, 48);
        let deltas = concretize(&batches, base.table.len());

        let live = ServiceBuilder::new().workers(workers).build();
        live.register_dataset(
            TenantSpec::new("stream", base.clone(), config())
                .ingest(IngestBuilder::new().max_dirty(4)),
        )
        .unwrap();
        for batch in &deltas {
            if !batch.is_empty() {
                live.ingest("stream", batch).unwrap();
            }
        }
        live.drain_ingest("stream").unwrap();

        let cold = ServiceBuilder::new().workers(workers).build();
        cold.register_dataset(TenantSpec::new(
            "stream",
            reference_fold(&base, &deltas),
            config(),
        ))
        .unwrap();

        prop_assert_eq!(
            live.tenant_store("stream").unwrap().snapshot(),
            cold.tenant_store("stream").unwrap().snapshot(),
            "streaming drain diverged from cold preprocess (seed {}, {} workers)",
            seed,
            workers
        );
        let stats = live.stats();
        prop_assert_eq!(stats.tenants[0].ingest_lag, 0);
        prop_assert_eq!(
            stats.tenants[0].deltas_applied,
            deltas.iter().map(|b| b.len() as u64).sum::<u64>()
        );
    }
}

/// Readers racing a flushing writer must never observe a torn store:
/// the overall and per-season entries stay present (lookups serve the
/// last-good speech until the atomic swap), and `respond` always comes
/// back with a speech.
#[test]
fn concurrent_reads_see_no_torn_or_missing_entries() {
    let base = dataset(9, 64);
    let service = Arc::new(ServiceBuilder::new().workers(2).build());
    service
        .register_dataset(
            TenantSpec::new("stream", base.clone(), config())
                .ingest(IngestBuilder::new().max_dirty(1)),
        )
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let overall = Query::of("delay", &[]);
                let winter = Query::of("delay", &[("season", "Winter")]);
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let store = service.tenant_store("stream").unwrap();
                    assert!(store.get(&overall).is_some(), "overall entry vanished");
                    assert!(store.get(&winter).is_some(), "season entry vanished");
                    let response =
                        service.respond(&ServiceRequest::new("stream", "delay in Winter?"));
                    assert!(response.answer.is_speech(), "respond lost its speech");
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    // The writer keeps row 0 in Winter and cycles its region; with
    // `max_dirty(1)` every batch flushes, so readers race real swaps.
    const FLIPS: usize = 40;
    for i in 0..FLIPS {
        let region = if i % 2 == 0 { 1 } else { 0 };
        service
            .ingest(
                "stream",
                &[RowDelta::Update {
                    row: 0,
                    values: row(0, region, 125),
                }],
            )
            .unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        assert!(reader.join().unwrap() > 0, "reader made no progress");
    }

    // And the usual convergence check on top.
    service.drain_ingest("stream").unwrap();
    let mut rows: Vec<Vec<Value>> = base.table.iter_rows().collect();
    rows[0] = row(0, if (FLIPS - 1).is_multiple_of(2) { 1 } else { 0 }, 125);
    let final_dataset = GeneratedDataset {
        name: base.name.clone(),
        table: Table::from_rows(base.table.schema().clone(), rows).unwrap(),
        dims: base.dims.clone(),
        targets: base.targets.clone(),
    };
    let cold = ServiceBuilder::new().workers(2).build();
    cold.register_dataset(TenantSpec::new("stream", final_dataset, config()))
        .unwrap();
    assert_eq!(
        service.tenant_store("stream").unwrap().snapshot(),
        cold.tenant_store("stream").unwrap().snapshot()
    );
}

/// The invalidation circuit is precise: a delta that cannot affect a
/// summary leaves its stored `Arc` untouched (pointer-identical), while
/// the summaries it can affect are rebuilt.
#[test]
fn untouched_summaries_stay_pointer_stable() {
    let base = dataset(21, 64);
    let service = ServiceBuilder::new().workers(2).build();
    service
        .register_dataset(
            TenantSpec::new("stream", base.clone(), config()).ingest(IngestBuilder::new()),
        )
        .unwrap();
    let store = service.tenant_store("stream").unwrap();

    // Flip row 0's region while keeping its season and delay value: the
    // global target mean is bit-identical, so the §III constant prior
    // does not drift, and the other season's summary is untouched.
    let first: Vec<Value> = base.table.iter_rows().next().unwrap();
    let season = first[0].as_str().unwrap().to_string();
    let other_season = if season == "Winter" {
        "Summer"
    } else {
        "Winter"
    };
    let old_region = first[1].as_str().unwrap().to_string();
    let new_region = if old_region == "East" { "West" } else { "East" };

    let untouched = Query::of("delay", &[("season", other_season)]);
    let overall = Query::of("delay", &[]);
    let before_untouched = store.get(&untouched).expect("summary was stored");
    let before_overall = store.get(&overall).expect("summary was stored");

    service
        .refresh_tenant_deltas(
            "stream",
            &[RowDelta::Update {
                row: 0,
                values: vec![first[0].clone(), Value::str(new_region), first[2].clone()],
            }],
        )
        .unwrap();

    let after_untouched = store.get(&untouched).expect("summary survived");
    let after_overall = store.get(&overall).expect("summary survived");
    assert!(
        Arc::ptr_eq(&before_untouched, &after_untouched),
        "a summary outside the dirty set was rebuilt"
    );
    assert!(
        !Arc::ptr_eq(&before_overall, &after_overall),
        "a dirtied summary was not recomputed"
    );
}
