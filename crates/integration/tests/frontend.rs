//! Serving front-end behavior under load: deterministic shedding at the
//! admission cap, per-tenant fairness under a hot-tenant flood, the
//! interactive priority lane, the block policy, and graceful shutdown.
//!
//! The deterministic tests block the front-end's serving workers on
//! *gates* (a background task, or a summarizer that parks solver jobs)
//! so queue states are exact, not timing-dependent.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use vqs_core::prelude::{GreedySummarizer, Problem, Summarizer, Summary};
use vqs_data::{DimSpec, GeneratedDataset, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;

const LONG_WAIT: Duration = Duration::from_secs(60);

fn dataset(name: &str, seed: u64) -> GeneratedDataset {
    SynthSpec {
        name: name.to_string(),
        dims: vec![
            DimSpec::named("season", &["Winter", "Summer"]),
            DimSpec::named("region", &["East", "West"]),
        ],
        targets: vec![TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0))],
        rows: 160,
    }
    .generate(seed, 1.0)
}

fn config(name: &str) -> Configuration {
    Configuration::new(name, &["season", "region"], &["delay"])
}

/// A close/open gate; the serving worker parks inside whatever closure
/// waits on it, giving tests exact control over queue states.
struct TestGate {
    closed: Mutex<bool>,
    released: Condvar,
    entered: AtomicUsize,
}

impl TestGate {
    fn new() -> Arc<TestGate> {
        Arc::new(TestGate {
            closed: Mutex::new(true),
            released: Condvar::new(),
            entered: AtomicUsize::new(0),
        })
    }

    /// Block until the gate opens (counting the entry).
    fn pass(&self) {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut closed = self.closed.lock().unwrap();
        while *closed {
            closed = self.released.wait(closed).unwrap();
        }
    }

    /// Open the gate, releasing every parked passer.
    fn open(&self) {
        *self.closed.lock().unwrap() = false;
        self.released.notify_all();
    }

    /// Spin until `n` passers are parked inside.
    fn await_entered(&self, n: usize) {
        while self.entered.load(Ordering::SeqCst) < n {
            std::thread::yield_now();
        }
    }
}

/// Park the front-end's (only) worker on a gate via the control lane.
fn block_worker(frontend: &FrontEnd, gate: &Arc<TestGate>) -> TaskTicket {
    let passer = Arc::clone(gate);
    let ticket = frontend
        .submit_task(move |_| passer.pass())
        .expect("gate task admitted");
    gate.await_entered(1);
    ticket
}

#[test]
fn overload_sheds_deterministically_at_the_cap() {
    let service = Arc::new(ServiceBuilder::new().workers(1).build());
    service
        .register_dataset(TenantSpec::new("svc", dataset("svc", 7), config("svc")))
        .unwrap();
    let frontend = FrontEnd::builder(Arc::clone(&service))
        .workers(1)
        .queue_capacity(3)
        .build();
    let gate = TestGate::new();
    let gate_ticket = block_worker(&frontend, &gate);

    // Exactly `queue_capacity` requests are admitted...
    let admitted: Vec<ResponseTicket> = (0..3)
        .map(|_| frontend.submit(ServiceRequest::new("svc", "delay in Winter?")))
        .collect();
    for ticket in &admitted {
        assert!(!ticket.is_ready(), "admitted request served while gated");
    }
    // ...and request capacity+1 is shed immediately, with the explicit
    // typed overload answer.
    let shed = frontend.submit(ServiceRequest::new("svc", "delay in Winter?"));
    assert!(shed.is_ready(), "shed ticket must complete immediately");
    let response = shed.wait();
    assert!(matches!(
        response.answer,
        Answer::Overloaded { ref tenant } if tenant == "svc"
    ));
    assert!(response.text().contains("too many requests"));

    let stats = frontend.stats();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.peak_queued, 3);
    assert_eq!(stats.shed_by_tenant, vec![("svc".to_string(), 1)]);

    // Opening the gate drains the admitted requests — none were lost.
    gate.open();
    gate_ticket.wait();
    for ticket in admitted {
        assert!(ticket.wait_timeout(LONG_WAIT).unwrap().answer.is_speech());
    }
    assert_eq!(frontend.stats().completed, 3);
}

#[test]
fn hot_tenant_flood_cannot_starve_other_tenants() {
    let service = Arc::new(ServiceBuilder::new().workers(1).build());
    for name in ["hot", "cold"] {
        service
            .register_dataset(TenantSpec::new(name, dataset(name, 11), config(name)))
            .unwrap();
    }
    let frontend = FrontEnd::builder(Arc::clone(&service))
        .workers(1)
        .queue_capacity(16)
        .tenant_share(2)
        .build();
    let gate = TestGate::new();
    let gate_ticket = block_worker(&frontend, &gate);

    // The hot tenant floods: only its fair share is admitted, the rest
    // is shed even though the global queue has plenty of headroom.
    let hot: Vec<ResponseTicket> = (0..6)
        .map(|_| frontend.submit(ServiceRequest::new("hot", "delay in Winter?")))
        .collect();
    let hot_shed = hot.iter().filter(|t| t.is_ready()).count();
    assert_eq!(hot_shed, 4, "flood past the tenant share sheds");

    // The cold tenant still gets in behind the flood.
    let cold: Vec<ResponseTicket> = (0..2)
        .map(|_| frontend.submit(ServiceRequest::new("cold", "delay in Summer?")))
        .collect();
    assert!(
        cold.iter().all(|t| !t.is_ready()),
        "cold tenant must be admitted despite the hot flood"
    );

    gate.open();
    gate_ticket.wait();
    for ticket in &cold {
        assert!(ticket.wait_timeout(LONG_WAIT).unwrap().answer.is_speech());
    }
    let mut answers = 0;
    for ticket in &hot {
        let response = ticket.wait_timeout(LONG_WAIT).unwrap();
        if response.answer.is_speech() {
            answers += 1;
        } else {
            assert!(matches!(response.answer, Answer::Overloaded { .. }));
        }
    }
    assert_eq!(answers, 2, "the admitted share of the flood is served");
    let stats = frontend.stats();
    assert_eq!(stats.shed, 4);
    assert_eq!(stats.shed_by_tenant, vec![("hot".to_string(), 4)]);
}

/// A summarizer whose solves park on a gate while it is closed — makes
/// "a large registration is running right now" an exact, held state
/// instead of a race.
struct GatedSummarizer {
    inner: GreedySummarizer,
    gate: Arc<TestGate>,
}

impl Summarizer for GatedSummarizer {
    fn name(&self) -> &'static str {
        "gated"
    }

    fn summarize(&self, problem: &Problem<'_>) -> vqs_core::prelude::Result<Summary> {
        if *self.gate.closed.lock().unwrap() {
            self.gate.pass();
        }
        self.inner.summarize(problem)
    }
}

#[test]
fn a_held_registration_cannot_delay_concurrent_responds() {
    let gate = TestGate::new();
    let service = Arc::new(
        ServiceBuilder::new()
            .workers(1)
            .summarizer(GatedSummarizer {
                inner: GreedySummarizer::with_optimized_pruning(),
                gate: Arc::clone(&gate),
            })
            .build(),
    );
    // Setup registration passes through the open gate.
    gate.open();
    service
        .register_dataset(TenantSpec::new("live", dataset("live", 3), config("live")))
        .unwrap();

    // Re-close the gate: the background registration submitted next
    // parks one serving worker inside the solver.
    *gate.closed.lock().unwrap() = true;
    let before = gate.entered.load(Ordering::SeqCst);
    let frontend = FrontEnd::builder(Arc::clone(&service)).workers(2).build();
    let register =
        frontend.submit_register(TenantSpec::new("bulk", dataset("bulk", 5), config("bulk")));
    gate.await_entered(before + 1);

    // While the registration is provably still held, interactive
    // traffic flows through the second worker.
    for _ in 0..5 {
        let ticket = frontend.submit(ServiceRequest::new("live", "delay in Winter?"));
        let response = ticket.wait_timeout(LONG_WAIT).expect("respond served");
        assert!(response.answer.is_speech());
    }
    assert!(
        !register.is_ready(),
        "the registration is still gated, yet responds completed"
    );

    gate.open();
    let report = register.wait_timeout(LONG_WAIT).unwrap().unwrap();
    assert!(report.speeches > 0);
    assert!(frontend
        .submit(ServiceRequest::new("bulk", "delay in Winter?"))
        .wait()
        .answer
        .is_speech());
}

#[test]
fn interactive_lane_drains_before_queued_background_work() {
    let service = Arc::new(ServiceBuilder::new().workers(1).build());
    service
        .register_dataset(TenantSpec::new("svc", dataset("svc", 7), config("svc")))
        .unwrap();
    let frontend = FrontEnd::builder(Arc::clone(&service))
        .workers(1)
        .queue_capacity(16)
        .build();
    let gate = TestGate::new();
    let gate_ticket = block_worker(&frontend, &gate);

    // Queue background work FIRST, then a probe task, then interactive
    // requests. The single worker drains FIFO within the control lane
    // (refresh, then probe), so when the probe runs, the refresh is
    // done; the probe records whether the *later-submitted* interactive
    // requests were already served before the control lane resumed —
    // exactly the priority-lane guarantee. Under FIFO-without-priority
    // the probe would run before any interactive request.
    let refresh = frontend.submit_refresh("svc", dataset("svc", 7), vec![0, 1, 2]);
    let responds: Arc<Mutex<Vec<ResponseTicket>>> = Arc::new(Mutex::new(Vec::new()));
    let responds_served_first = Arc::new(AtomicBool::new(false));
    let probe = {
        let responds = Arc::clone(&responds);
        let flag = Arc::clone(&responds_served_first);
        frontend
            .submit_task(move |_| {
                let responds = responds.lock().unwrap();
                let all_served = !responds.is_empty() && responds.iter().all(Ticket::is_ready);
                flag.store(all_served, Ordering::SeqCst);
            })
            .unwrap()
    };
    {
        let mut queue = responds.lock().unwrap();
        for _ in 0..4 {
            queue.push(frontend.submit(ServiceRequest::new("svc", "delay in Winter?")));
        }
    }
    assert_eq!(frontend.queue_depths(), (4, 2));

    gate.open();
    gate_ticket.wait();
    probe.wait_timeout(LONG_WAIT).unwrap();
    assert!(
        responds_served_first.load(Ordering::SeqCst),
        "interactive requests must be served before queued background work"
    );
    assert!(refresh.wait().is_ok());
}

#[test]
fn block_policy_parks_submitters_instead_of_shedding() {
    let service = Arc::new(ServiceBuilder::new().workers(1).build());
    service
        .register_dataset(TenantSpec::new("svc", dataset("svc", 7), config("svc")))
        .unwrap();
    let frontend = Arc::new(
        FrontEnd::builder(Arc::clone(&service))
            .workers(1)
            .queue_capacity(1)
            // Keep the per-tenant share above the global cap: this test
            // must hit the *global* bound, which blocks (the fairness
            // bound always sheds).
            .tenant_share(8)
            .policy(OverloadPolicy::Block)
            .build(),
    );
    let gate = TestGate::new();
    let gate_ticket = block_worker(&frontend, &gate);

    let first = frontend.submit(ServiceRequest::new("svc", "delay in Winter?"));
    // The queue is now full; a second submitter blocks instead of
    // shedding. Wait for the front-end to report it parked.
    let submitter = {
        let frontend = Arc::clone(&frontend);
        std::thread::spawn(move || {
            frontend
                .submit(ServiceRequest::new("svc", "delay in Summer?"))
                .wait()
        })
    };
    while frontend.stats().blocked == 0 {
        std::thread::yield_now();
    }
    assert!(!first.is_ready());

    gate.open();
    gate_ticket.wait();
    let second = submitter.join().unwrap();
    assert!(second.answer.is_speech());
    assert!(first.wait_timeout(LONG_WAIT).unwrap().answer.is_speech());
    let stats = frontend.stats();
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.completed, 2);
    assert!(stats.blocked >= 1);
}

#[test]
fn shutdown_drains_all_admitted_work_and_joins_clean() {
    let service = Arc::new(ServiceBuilder::new().workers(1).build());
    service
        .register_dataset(TenantSpec::new("svc", dataset("svc", 7), config("svc")))
        .unwrap();
    let frontend = FrontEnd::builder(Arc::clone(&service))
        .workers(2)
        .queue_capacity(256)
        .build();

    let responds: Vec<ResponseTicket> = (0..40)
        .map(|_| frontend.submit(ServiceRequest::new("svc", "delay in Winter?")))
        .collect();
    let refresh = frontend.submit_refresh("svc", dataset("svc", 7), vec![0]);
    let register =
        frontend.submit_register(TenantSpec::new("late", dataset("late", 9), config("late")));
    // Shutdown returns only after every admitted request completed and
    // the workers joined.
    frontend.shutdown();

    for ticket in responds {
        assert!(ticket.is_ready(), "interactive ticket lost in shutdown");
        assert!(ticket.wait().answer.is_speech());
    }
    assert!(refresh.is_ready(), "refresh ticket lost in shutdown");
    assert!(refresh.wait().is_ok());
    assert!(register.is_ready(), "register ticket lost in shutdown");
    assert!(register.wait().is_ok());
    // The service itself outlives the front-end.
    assert!(service
        .respond(&ServiceRequest::new("late", "delay in Winter?"))
        .answer
        .is_speech());
}

#[test]
fn frontend_and_sessions_share_tenant_accounting() {
    let service = Arc::new(ServiceBuilder::new().workers(1).build());
    service
        .register_dataset(TenantSpec::new("svc", dataset("svc", 7), config("svc")))
        .unwrap();
    let frontend = FrontEnd::builder(Arc::clone(&service)).workers(1).build();

    // Conversation traffic (sessions, counted per tenant) and queued
    // stateless traffic land in the same tenant roll-up.
    let mut session = service.session("svc").unwrap();
    let spoken = session.answer("delay in Winter?");
    assert_eq!(spoken.session, Some(session.id()));
    let queued = frontend
        .submit(ServiceRequest::new("svc", "delay in Summer?"))
        .wait();
    assert_eq!(queued.session, None);

    let stats = service.stats();
    let tenant = &stats.tenants[0];
    assert_eq!(tenant.sessions_opened, 1);
    assert_eq!(tenant.requests, 2);
    assert_eq!(tenant.speech_answers, 2);
}
