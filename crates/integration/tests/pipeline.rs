//! End-to-end coverage of the staged NL pipeline (tokenize → analyze →
//! plan → execute): a golden utterance corpus spanning every §VIII-D
//! Table III category plus the compound/comparative/aggregate forms the
//! live tier answers, a proptest differential pinning live plan
//! execution to direct `vqs-relalg` evaluation, and the byte-identity
//! guarantee for store-served answers.

use std::sync::Arc;

use proptest::prelude::*;
use vqs_data::{DimSpec, GeneratedDataset, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;
use vqs_relalg::ops::aggregate::{AggFunc, AggItem};
use vqs_relalg::prelude::{Expr, Plan};

const SEASONS: [&str; 4] = ["Winter", "Spring", "Summer", "Fall"];
const REGIONS: [&str; 3] = ["East", "West", "North"];

fn dataset(seed: u64) -> GeneratedDataset {
    SynthSpec {
        name: "air".to_string(),
        dims: vec![
            DimSpec::named("season", &SEASONS),
            DimSpec::named("region", &REGIONS),
        ],
        targets: vec![
            TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0)),
            TargetSpec::new("cancelled", 30.0, 10.0, 4.0, (0.0, 1000.0)),
        ],
        rows: 180,
    }
    .generate(seed, 1.0)
}

fn config() -> Configuration {
    Configuration::new("air", &["season", "region"], &["delay", "cancelled"])
}

fn service() -> VoiceService {
    let service = ServiceBuilder::new().workers(2).build();
    service
        .register_dataset(
            TenantSpec::new("air", dataset(0xA1), config())
                .target_synonyms("delay", &["delays"])
                .unavailable_markers(&["flight"]),
        )
        .unwrap();
    service
}

/// The golden corpus: every Table III category, exercised through the
/// full `ServiceRequest → pipeline → Answer` path, with the expected
/// label AND the expected answer tier.
#[test]
fn golden_corpus_labels_and_answer_tiers() {
    let service = service();
    // (utterance, Table III label, expected answer shape)
    enum Want {
        Help,
        Speech,
        Computed,
        Unsupported,
    }
    let corpus: Vec<(&str, &str, Want)> = vec![
        // Help.
        ("help", "Help", Want::Help),
        ("what can you do", "Help", Want::Help),
        ("how do i use this", "Help", Want::Help),
        // Repeat (stateless respond has no history → guidance).
        ("repeat that", "Repeat", Want::Help),
        ("say that again", "Repeat", Want::Help),
        // S-Query: the store answers, including two-predicate hits
        // (max_query_length is 2) and the no-predicate overall.
        ("delay in Winter?", "S-Query", Want::Speech),
        ("cancelled in the East", "S-Query", Want::Speech),
        ("delay in Summer in the West", "S-Query", Want::Speech),
        ("what is the delay", "S-Query", Want::Speech),
        // U-Query, extremum form: live tier two computes it.
        ("which season has the most delay", "U-Query", Want::Computed),
        (
            "which region has the least cancelled",
            "U-Query",
            Want::Computed,
        ),
        (
            "which season is worst for delays in the east",
            "U-Query",
            Want::Computed,
        ),
        // U-Query, comparative form.
        (
            "compare delay for Winter versus Summer",
            "U-Query",
            Want::Computed,
        ),
        (
            "what is the difference between delays in the East and the West",
            "U-Query",
            Want::Computed,
        ),
        // U-Query, aggregate forms (counts and totals).
        ("how many delays in Winter", "U-Query", Want::Computed),
        ("the total cancelled in the East", "U-Query", Want::Computed),
        // U-Query, out-of-deployment marker: stays a typed apology.
        (
            "delay of flight UA one twenty three",
            "U-Query",
            Want::Unsupported,
        ),
        // Other.
        ("tell me a joke", "Other", Want::Help),
        ("thank you", "Other", Want::Help),
        ("play some music", "Other", Want::Help),
    ];
    for (utterance, label, want) in corpus {
        let response = service.respond(&ServiceRequest::new("air", utterance));
        assert_eq!(response.label(), label, "{utterance}");
        assert!(!response.text().is_empty(), "{utterance}");
        match want {
            Want::Help => assert!(
                matches!(response.answer, Answer::Help { .. }),
                "{utterance}: {:?}",
                response.answer
            ),
            Want::Speech => assert!(
                response.answer.is_speech(),
                "{utterance}: {:?}",
                response.answer
            ),
            Want::Computed => assert!(
                matches!(response.answer, Answer::Computed { .. }),
                "{utterance}: {:?}",
                response.answer
            ),
            Want::Unsupported => assert!(
                matches!(response.answer, Answer::Unsupported { .. }),
                "{utterance}: {:?}",
                response.answer
            ),
        }
    }
}

/// The typed plans behind the computed answers carry the recognized
/// structure, not just rendered text.
#[test]
fn computed_answers_expose_their_plans() {
    let service = service();
    let extremum = service.respond(&ServiceRequest::new(
        "air",
        "which season is worst for delays in the east",
    ));
    let Answer::Computed { plan, value, .. } = &extremum.answer else {
        panic!("expected a computed answer, got {:?}", extremum.answer);
    };
    assert_eq!(
        *plan,
        QueryPlan::GroupExtremum {
            target: "delay".into(),
            predicates: vec![("region".into(), "East".into())],
            dimension: "season".into(),
            highest: true,
        }
    );
    assert!(matches!(value, ComputedValue::GroupExtremum { .. }));

    let comparison = service.respond(&ServiceRequest::new(
        "air",
        "compare delay for Winter versus Summer",
    ));
    let Answer::Computed { plan, .. } = &comparison.answer else {
        panic!("expected a computed answer, got {:?}", comparison.answer);
    };
    assert_eq!(
        *plan,
        QueryPlan::Comparison {
            target: "delay".into(),
            predicates: vec![],
            dimension: "season".into(),
            left: "Winter".into(),
            right: "Summer".into(),
        }
    );

    let count = service.respond(&ServiceRequest::new("air", "how many delays in Winter"));
    let Answer::Computed { plan, value, .. } = &count.answer else {
        panic!("expected a computed answer, got {:?}", count.answer);
    };
    assert_eq!(
        *plan,
        QueryPlan::Aggregate {
            target: "delay".into(),
            predicates: vec![("season".into(), "Winter".into())],
            agg: AggKind::Count,
        }
    );
    // The count is exactly the subset size in the live data.
    let data = dataset(0xA1);
    let season = data.table.schema().index_of("season").unwrap();
    let winter_rows = (0..data.table.len())
        .filter(|&row| {
            data.table.value(row, season) == vqs_relalg::prelude::Value::Str("Winter".into())
        })
        .count();
    assert_eq!(*value, ComputedValue::Count { rows: winter_rows });
}

/// Store hits are byte-identical to the pre-pipeline path: for every
/// stored speech the utterance built from its query returns the *same
/// `Arc`* the store lookup returns, with no rephrasing on top.
#[test]
fn store_hits_are_byte_identical_to_direct_lookup() {
    let service = service();
    let store = service.tenant_store("air").unwrap();
    let mut exact_hits = 0usize;
    for stored in store.snapshot() {
        let mut utterance = stored.query.target().to_string();
        for (_, value) in stored.query.predicates() {
            utterance.push_str(&format!(" in {value}"));
        }
        let response = service.respond(&ServiceRequest::new("air", &utterance));
        let Answer::Speech {
            speech,
            kept_predicates,
        } = &response.answer
        else {
            panic!(
                "{utterance}: expected a store hit, got {:?}",
                response.answer
            );
        };
        assert_eq!(kept_predicates, &None, "{utterance}");
        assert!(
            Arc::ptr_eq(speech, &stored),
            "{utterance}: served a different speech than stored"
        );
        // And the direct (pre-pipeline) lookup agrees pointer-for-pointer.
        let Lookup::Exact(direct) = store.lookup(&stored.query) else {
            panic!("{utterance}: direct lookup missed");
        };
        assert!(Arc::ptr_eq(&direct, &stored));
        assert_eq!(response.text(), direct.text);
        exact_hits += 1;
    }
    // Two targets × (1 overall + 4 seasons + 3 regions + 12 pairs).
    assert_eq!(exact_hits, 40);
}

/// Build the reference answer with `vqs-relalg` directly: σ(predicates)
/// → Γ(avg(target), count(*)).
fn direct_average(
    data: &GeneratedDataset,
    target: &str,
    predicates: &[(&str, &str)],
) -> (Option<f64>, usize) {
    let schema = data.table.schema();
    let mut plan = Plan::shared(Arc::new(data.table.clone()));
    for (dim, value) in predicates {
        let col = Expr::col(schema.index_of(dim).unwrap());
        plan = plan.filter(col.eq(Expr::lit(*value)));
    }
    let target_col = Expr::col(schema.index_of(target).unwrap());
    let result = plan
        .aggregate(
            vec![],
            vec![],
            vec![
                AggItem::new(AggFunc::Avg, target_col.clone(), "value"),
                AggItem::new(AggFunc::CountAll, target_col, "support"),
            ],
        )
        .execute()
        .unwrap();
    let support = match result.value(0, 1) {
        vqs_relalg::prelude::Value::Int(n) => n as usize,
        other => panic!("unexpected support value {other:?}"),
    };
    (result.value(0, 0).as_f64(), support)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Differential: the live tier's conjunctive average (tier two for
    // queries beyond the pre-processed length) equals direct
    // `vqs-relalg` evaluation of σ → Γ over the same data, for every
    // (seed, season, region) subset — including empty subsets, which
    // must apologize rather than voice a NULL.
    #[test]
    fn live_conjunctive_average_matches_direct_relalg(
        seed in 0u64..32,
        season_index in 0usize..SEASONS.len(),
        region_index in 0usize..REGIONS.len(),
    ) {
        let data = dataset(seed);
        let mut narrow = config();
        // One-predicate stores force two-predicate questions onto the
        // live path.
        narrow.max_query_length = 1;
        let service = ServiceBuilder::new().workers(1).build();
        service
            .register_dataset(
                TenantSpec::new("air", data.clone(), narrow).target_synonyms("delay", &["delays"]),
            )
            .unwrap();
        let season = SEASONS[season_index];
        let region = REGIONS[region_index];
        let response = service.respond(&ServiceRequest::new(
            "air",
            format!("delays in {season} in the {region}"),
        ));
        prop_assert_eq!(response.label(), "U-Query");
        let (expected, support) =
            direct_average(&data, "delay", &[("region", region), ("season", season)]);
        match &response.answer {
            Answer::Computed { plan, value, .. } => {
                prop_assert_eq!(
                    plan,
                    &QueryPlan::Aggregate {
                        target: "delay".into(),
                        predicates: vec![
                            ("region".into(), region.into()),
                            ("season".into(), season.into()),
                        ],
                        agg: AggKind::Avg,
                    }
                );
                prop_assert_eq!(
                    value,
                    &ComputedValue::Scalar {
                        agg: AggKind::Avg,
                        value: expected.expect("non-empty subset has an average"),
                        support,
                    }
                );
            }
            Answer::Unsupported { .. } => {
                // Only acceptable when the subset is genuinely empty.
                prop_assert_eq!(support, 0, "{} {}", season, region);
            }
            other => prop_assert!(false, "unexpected answer {:?}", other),
        }
    }
}

/// Follow-on hints ride along on both store hits and computed answers,
/// and always point at a stored summary one predicate deeper.
#[test]
fn follow_on_hints_point_at_adjacent_summaries() {
    let service = service();
    let store = service.tenant_store("air").unwrap();
    let hit = service.respond(&ServiceRequest::new("air", "delay in Winter?"));
    assert!(hit.answer.is_speech());
    let hint = hit.follow_on.expect("Winter has stored extensions");
    assert_eq!(hint.query.len(), 2);
    assert!(matches!(store.lookup(&hint.query), Lookup::Exact(_)));
    assert!(hint.utterance.ends_with('?'));

    // Asking the suggested follow-on is itself an exact store hit.
    let followed = service.respond(&ServiceRequest::new("air", &hint.utterance));
    match &followed.answer {
        Answer::Speech {
            speech,
            kept_predicates,
        } => {
            assert_eq!(kept_predicates, &None);
            assert_eq!(speech.query, hint.query);
        }
        other => panic!("follow-on should hit the store, got {other:?}"),
    }
}
