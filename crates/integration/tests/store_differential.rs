//! Differential testing: the sharded, index-accelerated store must agree
//! with a naive linear-scan reference on every lookup — exact hits,
//! generalization fallbacks including tie-breaking, and misses — plus an
//! instrumented check that the fallback probes only indexed candidates.

use proptest::prelude::*;
use vqs_data::{DimSpec, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;

/// What a lookup decided, reduced to comparable data.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Decision {
    Exact(Query),
    Generalized { query: Query, kept: usize },
    Miss,
}

fn decide(lookup: Lookup) -> Decision {
    match lookup {
        Lookup::Exact(speech) => Decision::Exact(speech.query.clone()),
        Lookup::Generalized {
            speech,
            kept_predicates,
        } => Decision::Generalized {
            query: speech.query.clone(),
            kept: kept_predicates,
        },
        Lookup::Miss => Decision::Miss,
    }
}

/// Reference implementation: one linear scan over all stored speeches.
///
/// The §III rule picks the stored `S ⊆ Q` maximizing `|S|`; ties are
/// broken exactly like [`Query::generalizations`] (and therefore like the
/// sharded store): among equal sizes, the subset covering the
/// higher-order predicates of the normalized predicate list wins, i.e.
/// the larger bitmask over `Q.predicates()`.
#[derive(Default)]
struct NaiveStore {
    speeches: Vec<StoredSpeech>,
}

impl NaiveStore {
    fn insert(&mut self, speech: StoredSpeech) {
        if let Some(existing) = self.speeches.iter_mut().find(|s| s.query == speech.query) {
            *existing = speech;
        } else {
            self.speeches.push(speech);
        }
    }

    /// Bitmask of `query`'s predicates that `subset` retains, if
    /// `subset ⊆ query` on the same target.
    fn subset_mask(subset: &Query, query: &Query) -> Option<u64> {
        if subset.target() != query.target() {
            return None;
        }
        let mut mask = 0u64;
        for predicate in subset.predicates() {
            let position = query.predicates().iter().position(|p| p == predicate)?;
            mask |= 1 << position;
        }
        Some(mask)
    }

    fn lookup(&self, query: &Query) -> Decision {
        let mut best: Option<(usize, u64, &StoredSpeech)> = None;
        for speech in &self.speeches {
            let Some(mask) = Self::subset_mask(&speech.query, query) else {
                continue;
            };
            let rank = (speech.query.len(), mask);
            if best.as_ref().is_none_or(|(len, m, _)| rank > (*len, *m)) {
                best = Some((rank.0, rank.1, speech));
            }
        }
        match best {
            None => Decision::Miss,
            Some((len, _, speech)) if speech.query == *query => {
                debug_assert_eq!(len, query.len());
                Decision::Exact(speech.query.clone())
            }
            Some((len, _, speech)) => Decision::Generalized {
                query: speech.query.clone(),
                kept: len,
            },
        }
    }
}

fn make_speech(query: Query) -> StoredSpeech {
    StoredSpeech {
        text: format!("speech::{query}"),
        facts: vec![],
        utility: 1.0,
        base_error: 2.0,
        rows: 1 + query.len(),
        query,
    }
}

/// Random queries over a small universe so stored sets and probes overlap
/// often enough to exercise exact hits, every fallback depth, and misses.
fn arb_query() -> impl Strategy<Value = Query> {
    (
        0usize..3,
        prop::collection::vec((0usize..4, 0usize..3), 0..=3),
    )
        .prop_map(|(target, preds)| {
            let targets = ["delay", "cancelled", "satisfaction"];
            let dims = ["a", "b", "c", "d"];
            let values = ["x", "y", "z"];
            Query::new(
                targets[target],
                preds
                    .into_iter()
                    .map(|(d, v)| (dims[d].to_string(), values[v].to_string())),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // Sharded lookup ≡ naive linear scan, for every shard count.
    #[test]
    fn sharded_store_matches_linear_scan_reference(
        stored in prop::collection::vec(arb_query(), 0..40),
        probes in prop::collection::vec(arb_query(), 1..25),
        shards in prop_oneof![Just(1usize), Just(2), Just(16)],
    ) {
        let sharded = SpeechStore::with_shards(shards);
        let mut naive = NaiveStore::default();
        for query in stored {
            sharded.insert(make_speech(query.clone()));
            naive.insert(make_speech(query));
        }
        prop_assert_eq!(sharded.len(), naive.speeches.len());
        for probe in &probes {
            let got = decide(sharded.lookup(probe));
            let want = naive.lookup(probe);
            prop_assert_eq!(got, want, "probe {}", probe);
        }
    }

    // `get` is exact-only and agrees with the reference's exact entries.
    #[test]
    fn get_matches_reference_membership(
        stored in prop::collection::vec(arb_query(), 0..30),
        probes in prop::collection::vec(arb_query(), 1..20),
    ) {
        let sharded = SpeechStore::new();
        let mut naive = NaiveStore::default();
        for query in stored {
            sharded.insert(make_speech(query.clone()));
            naive.insert(make_speech(query));
        }
        for probe in &probes {
            let got = sharded.get(probe).map(|s| s.text.clone());
            let want = naive
                .speeches
                .iter()
                .find(|s| &s.query == probe)
                .map(|s| s.text.clone());
            prop_assert_eq!(got, want);
        }
    }

    // The fallback never probes more than 1 + (indexed candidate
    // subsets) and never degenerates into a scan of the whole store.
    #[test]
    fn fallback_probe_budget_holds(
        stored in prop::collection::vec(arb_query(), 5..60),
        probe in arb_query(),
    ) {
        let sharded = SpeechStore::new();
        for query in stored {
            sharded.insert(make_speech(query));
        }
        sharded.reset_stats();
        let _ = sharded.lookup(&probe);
        let probes = sharded.stats().probes;
        // Upper bounds: every predicate subset (exact + 2^n - 1 candidates)
        // and, structurally, 1 + number of stored speeches for the target
        // sharing a dimension set with some subset of the probe.
        prop_assert!(probes <= 1u64 << probe.len().max(1));
        prop_assert!(probes as usize <= 1 + sharded.len());
    }
}

/// On a real pre-processed store the instrumented probe count shows the
/// fallback touching only indexed candidates — not the 2^n subset walk
/// and not a store scan (ISSUE 2 acceptance criterion).
#[test]
fn real_store_fallback_probe_count_is_indexed() {
    let data = SynthSpec {
        name: "probes".to_string(),
        dims: vec![
            DimSpec::named("season", &["Winter", "Summer"]),
            DimSpec::named("region", &["East", "West"]),
            DimSpec::named("daypart", &["am", "pm"]),
        ],
        targets: vec![TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0))],
        rows: 400,
    }
    .generate(7, 1.0);
    let mut config = Configuration::new("probes", &["season", "region", "daypart"], &["delay"]);
    // Only 0- and 1-predicate queries are pre-generated: singleton
    // dimension sets plus the overall speech.
    config.max_query_length = 1;
    let service = ServiceBuilder::new().build();
    service
        .register_dataset(TenantSpec::new("probes", data, config))
        .unwrap();
    let store = service.tenant_store("probes").unwrap();
    assert_eq!(store.len(), 7); // overall + 3 dims × 2 values

    store.reset_stats();
    let probe = Query::of(
        "delay",
        &[("season", "Winter"), ("region", "East"), ("daypart", "am")],
    );
    match store.lookup(&probe) {
        Lookup::Generalized {
            kept_predicates, ..
        } => assert_eq!(kept_predicates, 1),
        other => panic!("expected generalized, got {other:?}"),
    }
    let instr = store.instrumentation();
    assert_eq!(instr.store_lookups, 1);
    // Candidates: the three singleton dimension sets are indexed, pairs
    // are not. The walk probes exact (1) + first singleton hit (1) = 2;
    // the unindexed 2-predicate subsets cost nothing.
    assert_eq!(instr.store_probes, 2);
    // Far below the full 2^3 = 8 subset walk and the store-scan bound.
    assert!(instr.store_probes < 8);
    assert!((instr.store_probes as usize) < store.len());
}
