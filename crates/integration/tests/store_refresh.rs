//! Delta re-summarization through the service facade
//! ([`VoiceService::refresh_tenant`]): mutate a dataset slice, refresh,
//! and verify that only affected queries' speeches change, untouched
//! entries stay pointer-stable, and the refreshed store is always
//! element-wise identical to a full re-preprocess of the mutated data.

use std::sync::Arc;

use vqs_data::{DimSpec, GeneratedDataset, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;
use vqs_relalg::prelude::{Table, Value};

fn dataset() -> GeneratedDataset {
    SynthSpec {
        name: "refresh".to_string(),
        dims: vec![
            DimSpec::named("season", &["Winter", "Summer"]),
            DimSpec::named("region", &["East", "West", "North"]),
        ],
        targets: vec![
            TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0)),
            TargetSpec::new("cancelled", 30.0, 10.0, 4.0, (0.0, 1000.0)),
        ],
        rows: 240,
    }
    .generate(0xF5, 1.0)
}

fn config() -> Configuration {
    Configuration::new("refresh", &["season", "region"], &["delay", "cancelled"])
}

/// Rebuild the dataset's table with `mutate` applied to every row.
fn rebuild_with(
    dataset: &GeneratedDataset,
    mut mutate: impl FnMut(usize, &mut Vec<Value>),
) -> GeneratedDataset {
    let schema = dataset.table.schema().clone();
    let rows: Vec<Vec<Value>> = dataset
        .table
        .iter_rows()
        .enumerate()
        .map(|(row_index, mut row)| {
            mutate(row_index, &mut row);
            row
        })
        .collect();
    GeneratedDataset {
        name: dataset.name.clone(),
        table: Table::from_rows(schema, rows).unwrap(),
        dims: dataset.dims.clone(),
        targets: dataset.targets.clone(),
    }
}

fn str_value(value: &Value) -> &str {
    match value {
        Value::Str(s) => s.as_ref(),
        other => panic!("expected string value, got {other:?}"),
    }
}

/// Row indexes matching a (season, region) combination.
fn rows_in_combo(dataset: &GeneratedDataset, season: &str, region: &str) -> Vec<usize> {
    let schema = dataset.table.schema();
    let season_col = schema.index_of("season").unwrap();
    let region_col = schema.index_of("region").unwrap();
    dataset
        .table
        .iter_rows()
        .enumerate()
        .filter(|(_, row)| {
            str_value(&row[season_col]) == season && str_value(&row[region_col]) == region
        })
        .map(|(row_index, _)| row_index)
        .collect()
}

/// A single-tenant service over `data` (the facade default summarizer is
/// the optimized greedy, matching the legacy suite).
fn service_over(data: &GeneratedDataset) -> VoiceService {
    let service = ServiceBuilder::new().build();
    service
        .register_dataset(TenantSpec::new("refresh", data.clone(), config()))
        .unwrap();
    service
}

/// The store a fresh registration of `data` produces (the refresh ground
/// truth).
fn preprocess_full(data: &GeneratedDataset) -> Arc<SpeechStore> {
    service_over(data).tenant_store("refresh").unwrap()
}

/// Moving every (Winter, East) row to region West: the vanished value
/// combination is removed, gaining/losing subsets are recomputed, and
/// everything else — including the whole (Summer, *) slice — keeps its
/// exact `Arc`s.
#[test]
fn dimension_mutation_refreshes_only_affected_queries() {
    let before_data = dataset();
    let changed_rows = rows_in_combo(&before_data, "Winter", "East");
    assert!(!changed_rows.is_empty());
    let region_col = before_data.table.schema().index_of("region").unwrap();
    let after_data = rebuild_with(&before_data, |row_index, row| {
        if changed_rows.contains(&row_index) {
            row[region_col] = Value::Str("West".into());
        }
    });

    let service = service_over(&before_data);
    let store = service.tenant_store("refresh").unwrap();
    let before: Vec<Arc<StoredSpeech>> = store.snapshot();
    let report = service
        .refresh_tenant("refresh", &after_data, &changed_rows)
        .unwrap();

    // The (Winter, East) combination vanished for both targets.
    assert_eq!(report.removed, 2);
    for target in ["delay", "cancelled"] {
        assert!(store
            .get(&Query::of(
                target,
                &[("season", "Winter"), ("region", "East")]
            ))
            .is_none());
    }
    assert!(report.recomputed > 0);
    assert!(report.kept > 0, "expected untouched queries to survive");
    assert_eq!(
        report.recomputed + report.kept,
        report.queries,
        "every enumerated query is either kept or recomputed"
    );

    // Ground truth: the refreshed store equals a full re-preprocess.
    let reference = preprocess_full(&after_data);
    assert_eq!(store.snapshot(), reference.snapshot());

    // Untouched queries keep their exact Arc (pointer stability), e.g.
    // the whole Summer slice and the unchanged (Winter, North) subset.
    let untouched = [
        Query::of("delay", &[("season", "Summer")]),
        Query::of("delay", &[("season", "Summer"), ("region", "East")]),
        Query::of("delay", &[("season", "Winter"), ("region", "North")]),
        Query::of("cancelled", &[("region", "North")]),
    ];
    for query in &untouched {
        let old = before.iter().find(|s| &s.query == query).unwrap();
        let new = store.get(query).unwrap();
        assert!(Arc::ptr_eq(old, &new), "{query} should be pointer-stable");
    }

    // Affected queries actually changed: region East lost rows, West
    // gained them.
    for (region, delta_sign) in [("East", -1i64), ("West", 1i64)] {
        let query = Query::of("delay", &[("region", region)]);
        let old = before.iter().find(|s| s.query == query).unwrap();
        let new = store.get(&query).unwrap();
        let delta = new.rows as i64 - old.rows as i64;
        assert_eq!(
            delta.signum(),
            delta_sign,
            "{query}: rows {} -> {}",
            old.rows,
            new.rows
        );
    }
}

/// Mean-preserving target mutation (+δ on a Winter/East row, −δ on a
/// Summer/West row): the global prior is unchanged, so only the subsets
/// containing the two rows are recomputed — exactly 7 of the 12 queries
/// per target — and the rest keep their `Arc`s.
#[test]
fn target_value_mutation_recomputes_containing_subsets_only() {
    let before_data = dataset();
    let winter_east = rows_in_combo(&before_data, "Winter", "East")[0];
    let summer_west = rows_in_combo(&before_data, "Summer", "West")[0];
    let changed_rows = vec![winter_east, summer_west];
    let delay_col = before_data.table.schema().index_of("delay").unwrap();
    let delta = 5.0;
    let after_data = rebuild_with(&before_data, |row_index, row| {
        let Value::Float(value) = row[delay_col] else {
            panic!("delay must be a float column");
        };
        if row_index == winter_east {
            row[delay_col] = Value::Float(value + delta);
        } else if row_index == summer_west {
            row[delay_col] = Value::Float(value - delta);
        }
    });

    let service = service_over(&before_data);
    let store = service.tenant_store("refresh").unwrap();
    let before = store.snapshot();
    let report = service
        .refresh_tenant("refresh", &after_data, &changed_rows)
        .unwrap();

    // Per target: overall, Winter, Summer, East, West, (Winter,East),
    // (Summer,West) contain a changed row; North and the other pairs do
    // not. 7 recomputed + 5 kept, for each of the two targets.
    assert_eq!(report.queries, 24);
    assert_eq!(report.recomputed, 14);
    assert_eq!(report.kept, 10);
    assert_eq!(report.removed, 0);

    assert_eq!(store.snapshot(), preprocess_full(&after_data).snapshot());

    // A directly-hit subset demonstrably changed for the mutated target.
    let hit = Query::of("delay", &[("season", "Winter"), ("region", "East")]);
    let old = before.iter().find(|s| s.query == hit).unwrap();
    let new = store.get(&hit).unwrap();
    assert!(
        (old.utility - new.utility).abs() > 1e-12 || old.facts != new.facts,
        "mutated subset should produce a different summary"
    );

    // Untouched subsets stay pointer-stable.
    for target in ["delay", "cancelled"] {
        for preds in [
            vec![("region", "North")],
            vec![("season", "Winter"), ("region", "West")],
            vec![("season", "Summer"), ("region", "East")],
        ] {
            let query = Query::of(target, &preds);
            let old = before.iter().find(|s| s.query == query).unwrap();
            let new = store.get(&query).unwrap();
            assert!(Arc::ptr_eq(old, &new), "{query} should be pointer-stable");
        }
    }
}

/// Randomized differential guarantee: whatever slice is mutated, refresh
/// must land on exactly the same store as preprocessing from scratch.
#[test]
fn refresh_equals_full_preprocess_for_random_mutations() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let before_data = dataset();
    let schema = before_data.table.schema();
    let season_col = schema.index_of("season").unwrap();
    let region_col = schema.index_of("region").unwrap();
    let delay_col = schema.index_of("delay").unwrap();

    for seed in [1u64, 2, 3] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut changed_rows: Vec<usize> = (0..before_data.table.len())
            .filter(|_| rng.gen_bool(0.05))
            .collect();
        if changed_rows.is_empty() {
            changed_rows.push(rng.gen_range(0..before_data.table.len()));
        }
        let seasons = ["Winter", "Summer"];
        let regions = ["East", "West", "North"];
        let after_data = rebuild_with(&before_data, |row_index, row| {
            if !changed_rows.contains(&row_index) {
                return;
            }
            match rng.gen_range(0..3u32) {
                0 => {
                    let season: &str = seasons[rng.gen_range(0..2usize)];
                    row[season_col] = Value::Str(season.into());
                }
                1 => {
                    let region: &str = regions[rng.gen_range(0..3usize)];
                    row[region_col] = Value::Str(region.into());
                }
                _ => {
                    let Value::Float(value) = row[delay_col] else {
                        panic!("delay must be a float column");
                    };
                    row[delay_col] = Value::Float(value + rng.gen_range(-10.0f64..10.0));
                }
            }
        });

        let service = service_over(&before_data);
        let store = service.tenant_store("refresh").unwrap();
        service
            .refresh_tenant("refresh", &after_data, &changed_rows)
            .unwrap();
        let reference = preprocess_full(&after_data);
        assert_eq!(
            store.snapshot(),
            reference.snapshot(),
            "seed {seed}: refresh diverged from full preprocess"
        );
    }
}
