//! Integration hardening for the multi-tenant [`VoiceService`] facade:
//! pool-size determinism of facade-built stores, multi-tenant
//! isolation, and concurrent traffic against refreshes.

use std::sync::Arc;

use vqs_core::prelude::GreedySummarizer;
use vqs_data::{DimSpec, GeneratedDataset, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;
use vqs_relalg::prelude::{Table, Value};

fn dataset(seed: u64) -> GeneratedDataset {
    SynthSpec {
        name: "svc".to_string(),
        dims: vec![
            DimSpec::named("season", &["Winter", "Spring", "Summer", "Fall"]),
            DimSpec::named("region", &["East", "West", "North"]),
        ],
        targets: vec![
            TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0)),
            TargetSpec::new("cancelled", 30.0, 10.0, 4.0, (0.0, 1000.0)),
        ],
        rows: 420,
    }
    .generate(seed, 1.0)
}

fn config() -> Configuration {
    Configuration::new("svc", &["season", "region"], &["delay", "cancelled"])
}

/// The acceptance criterion: for the same dataset and configuration, the
/// facade-built store is byte-identical (snapshot equality, including
/// float formatting) regardless of pool size — a 1-worker, 2-worker, and
/// 8-worker registration all produce exactly the same store and reports.
#[test]
fn facade_store_is_pool_size_deterministic() {
    let data = dataset(0xFACADE);
    let mut reference: Option<(Vec<Arc<StoredSpeech>>, PreprocessReport)> = None;
    for workers in [1usize, 2, 8] {
        let service = ServiceBuilder::new()
            .workers(workers)
            .summarizer(GreedySummarizer::with_optimized_pruning())
            .build();
        assert_eq!(service.pool_workers(), workers);
        let report = service
            .register_dataset(TenantSpec::new("svc", data.clone(), config()))
            .unwrap();
        let snapshot = service.tenant_store("svc").unwrap().snapshot();
        match &reference {
            None => reference = Some((snapshot, report)),
            Some((expected, expected_report)) => {
                assert_eq!(report.queries, expected_report.queries);
                assert_eq!(report.speeches, expected_report.speeches);
                // Instrumentation totals are merged in job order on
                // every path: exactly equal, not just approximately.
                assert_eq!(report.instrumentation, expected_report.instrumentation);
                assert_eq!(&snapshot, expected, "{workers} pool workers");
                assert_eq!(
                    format!("{snapshot:?}"),
                    format!("{expected:?}"),
                    "byte-identical including float formatting ({workers} workers)"
                );
            }
        }
    }
}

/// Two tenants with the same schema but different data answer the same
/// utterance differently, and their stats stay isolated.
#[test]
fn tenants_are_isolated() {
    let service = ServiceBuilder::new().workers(2).build();
    for (name, seed) in [("alpha", 11u64), ("beta", 99u64)] {
        service
            .register_dataset(TenantSpec::new(name, dataset(seed), config()))
            .unwrap();
    }
    assert_eq!(
        service.tenants(),
        vec!["alpha".to_string(), "beta".to_string()]
    );

    let utterance = "delay in Winter?";
    let a = service.respond(&ServiceRequest::new("alpha", utterance));
    let b = service.respond(&ServiceRequest::new("beta", utterance));
    let (Answer::Speech { speech: sa, .. }, Answer::Speech { speech: sb, .. }) =
        (&a.answer, &b.answer)
    else {
        panic!("both tenants must answer with speeches: {a:?} / {b:?}");
    };
    assert_eq!(sa.query, sb.query, "same classified query");
    assert_ne!(sa.text, sb.text, "different data, different answer");

    // Store counters are per tenant: only alpha served the second probe.
    service.respond(&ServiceRequest::new("alpha", "delay in Summer?"));
    let stats = service.stats();
    assert_eq!(stats.tenants[0].tenant, "alpha");
    assert_eq!(stats.tenants[0].store.lookups, 2);
    assert_eq!(stats.tenants[1].store.lookups, 1);
    assert_eq!(stats.total_requests(), 3);

    // Evicting one tenant leaves the other fully answerable.
    assert!(service.evict_tenant("alpha"));
    let gone = service.respond(&ServiceRequest::new("alpha", utterance));
    assert!(matches!(gone.answer, Answer::UnknownTenant { .. }));
    let still = service.respond(&ServiceRequest::new("beta", utterance));
    assert!(still.answer.is_speech());
}

/// Rebuild the dataset's table with `mutate` applied to every row.
fn rebuild_with(
    dataset: &GeneratedDataset,
    mut mutate: impl FnMut(usize, &mut Vec<Value>),
) -> GeneratedDataset {
    let schema = dataset.table.schema().clone();
    let rows: Vec<Vec<Value>> = dataset
        .table
        .iter_rows()
        .enumerate()
        .map(|(row_index, mut row)| {
            mutate(row_index, &mut row);
            row
        })
        .collect();
    GeneratedDataset {
        name: dataset.name.clone(),
        table: Table::from_rows(schema, rows).unwrap(),
        dims: dataset.dims.clone(),
        targets: dataset.targets.clone(),
    }
}

/// Concurrent `respond` traffic on one tenant while another tenant
/// refreshes: every answer stays well-formed, the refresh lands, and the
/// served tenant's store is untouched.
#[test]
fn concurrent_respond_and_refresh_on_separate_tenants() {
    let service = ServiceBuilder::new().workers(4).build();
    let serving_data = dataset(5);
    let refreshing_data = dataset(6);
    service
        .register_dataset(TenantSpec::new("serving", serving_data, config()))
        .unwrap();
    service
        .register_dataset(TenantSpec::new(
            "refreshing",
            refreshing_data.clone(),
            config(),
        ))
        .unwrap();
    let serving_before = service.tenant_store("serving").unwrap().snapshot();

    // Mutate a slice of the refreshing tenant's delay column.
    let delay_col = refreshing_data.table.schema().index_of("delay").unwrap();
    let changed_rows: Vec<usize> = (0..refreshing_data.table.len()).step_by(3).collect();
    let mutated = rebuild_with(&refreshing_data, |row_index, row| {
        if row_index % 3 == 0 {
            let Value::Float(value) = row[delay_col] else {
                panic!("delay must be a float column");
            };
            row[delay_col] = Value::Float((value + 7.5).min(60.0));
        }
    });

    let utterances = [
        "delay in Winter?",
        "cancelled in the East",
        "delay in Summer in the West",
        "help",
        "which season has the most delay",
    ];
    std::thread::scope(|scope| {
        let service = &service;
        let refresh_handle = scope.spawn({
            let mutated = &mutated;
            let changed_rows = &changed_rows;
            move || {
                service
                    .refresh_tenant("refreshing", mutated, changed_rows)
                    .unwrap()
            }
        });
        for reader in 0..4 {
            let utterances = &utterances;
            scope.spawn(move || {
                for round in 0..200 {
                    for tenant in ["serving", "refreshing"] {
                        let text = utterances[(reader + round) % utterances.len()];
                        let response = service.respond(&ServiceRequest::new(tenant, text));
                        // Mid-refresh every answer must still be whole:
                        // classified, non-empty, and never UnknownTenant.
                        assert!(response.request.is_some());
                        assert!(!response.text().is_empty());
                        assert!(
                            !matches!(response.answer, Answer::UnknownTenant { .. }),
                            "{tenant} vanished mid-refresh"
                        );
                    }
                }
            });
        }
        let report = refresh_handle.join().unwrap();
        assert!(report.recomputed > 0);
    });

    // The refresh landed exactly as a from-scratch registration would.
    let fresh = ServiceBuilder::new().workers(2).build();
    fresh
        .register_dataset(TenantSpec::new("reference", mutated, config()))
        .unwrap();
    assert_eq!(
        service.tenant_store("refreshing").unwrap().snapshot(),
        fresh.tenant_store("reference").unwrap().snapshot()
    );
    // The serving tenant is pointer-identical to before: refreshing a
    // different tenant never touches it.
    let serving_after = service.tenant_store("serving").unwrap().snapshot();
    assert_eq!(serving_before.len(), serving_after.len());
    for (a, b) in serving_before.iter().zip(&serving_after) {
        assert!(Arc::ptr_eq(a, b), "{} was disturbed", a.query);
    }
    // Stats are sorted by tenant name: "refreshing" < "serving".
    let stats = service.stats();
    assert_eq!(stats.tenants[0].tenant, "refreshing");
    assert_eq!(stats.tenants[0].refreshes, 1);
    assert_eq!(stats.tenants[1].refreshes, 0);
}

/// One shared pool drives many tenants' registrations concurrently
/// without mixing up their stores.
#[test]
fn concurrent_registrations_share_the_pool() {
    let service = ServiceBuilder::new().workers(4).build();
    std::thread::scope(|scope| {
        for seed in 0..4u64 {
            let service = &service;
            scope.spawn(move || {
                service
                    .register_dataset(TenantSpec::new(
                        format!("tenant-{seed}"),
                        dataset(seed),
                        config(),
                    ))
                    .unwrap();
            });
        }
    });
    assert_eq!(service.tenants().len(), 4);
    for seed in 0..4u64 {
        let name = format!("tenant-{seed}");
        let reference = ServiceBuilder::new().workers(1).build();
        reference
            .register_dataset(TenantSpec::new("ref", dataset(seed), config()))
            .unwrap();
        assert_eq!(
            service.tenant_store(&name).unwrap().snapshot(),
            reference.tenant_store("ref").unwrap().snapshot(),
            "{name}"
        );
    }
}

/// A facade refresh equals a from-scratch registration over the new
/// data, and entries whose subset did not change stay pointer-stable
/// (the same `Arc` keeps serving).
#[test]
fn facade_refresh_equals_fresh_registration() {
    let before = dataset(0xBEEF);
    let delay_col = before.table.schema().index_of("delay").unwrap();
    let changed_rows = vec![0usize, 7, 13];
    let after = rebuild_with(&before, |row_index, row| {
        if changed_rows.contains(&row_index) {
            let Value::Float(value) = row[delay_col] else {
                panic!("delay must be a float column");
            };
            row[delay_col] = Value::Float((value + 9.0).min(60.0));
        }
    });

    let service = ServiceBuilder::new().workers(2).build();
    service
        .register_dataset(TenantSpec::new("svc", before, config()))
        .unwrap();
    let store = service.tenant_store("svc").unwrap();
    let before_snapshot = store.snapshot();
    let report = service
        .refresh_tenant("svc", &after, &changed_rows)
        .unwrap();
    assert!(report.recomputed > 0);
    assert!(report.kept > 0);
    assert_eq!(report.queries, report.recomputed + report.kept);

    // Element-wise identical to a fresh registration over the new data.
    let fresh = ServiceBuilder::new().workers(1).build();
    fresh
        .register_dataset(TenantSpec::new("ref", after, config()))
        .unwrap();
    let refreshed = store.snapshot();
    assert_eq!(refreshed, fresh.tenant_store("ref").unwrap().snapshot());

    // Untouched entries were not rebuilt: the refreshed snapshot reuses
    // exactly `kept` of the original `Arc`s.
    let stable = refreshed
        .iter()
        .filter(|speech| before_snapshot.iter().any(|old| Arc::ptr_eq(old, speech)))
        .count();
    assert_eq!(stable, report.kept);
}
