//! Cross-crate differential tests of the pool-backed search fan-out.
//!
//! The core crate proves scoped-executor parity; these tests close the
//! loop on the engine side: an [`ExactSummarizer`] (and the greedy
//! sweep) whose fan-out rides the engine's long-lived [`SolverPool`]
//! must produce byte-identical summaries to the sequential solver —
//! same utility bits, same facts, same timeout flag — for every worker
//! count, on both sides of the adaptive fan-out gate, and from inside a
//! pool scatter job (where nested fan-out degrades to inline execution).

use std::sync::Arc;

use vqs_core::prelude::*;
use vqs_engine::prelude::*;

/// A deterministic random-ish relation sized to sit *above* the default
/// fan-out gate when `above_gate`, below it otherwise.
fn relation(seed: u64, rows: usize) -> EncodedRelation {
    let data: Vec<(Vec<String>, f64)> = (0..rows)
        .map(|i| {
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i as u64 * 2654435761);
            let a = format!("a{}", x % 5);
            let b = format!("b{}", (x >> 8) % 4);
            let c = format!("c{}", (x >> 16) % 3);
            (vec![a, b, c], ((x >> 24) % 113) as f64)
        })
        .collect();
    let refs: Vec<(Vec<&str>, f64)> = data
        .iter()
        .map(|(v, t)| (v.iter().map(String::as_str).collect(), *t))
        .collect();
    EncodedRelation::from_rows(&["a", "b", "c"], "y", refs, Prior::GlobalMean).unwrap()
}

/// Pool-backed exact search ≡ sequential exact search, for worker
/// counts {0, 1, 2, 8} with the fan-out forced on and forced off (the
/// two sides of the adaptive gate).
#[test]
fn pool_backed_exact_is_byte_identical_to_sequential() {
    let pool: Arc<SolverPool> = Arc::new(SolverPool::new(2));
    for seed in [3u64, 17, 40] {
        let r = relation(seed, 220);
        let catalog = FactCatalog::build(&r, &[0, 1, 2], 2).unwrap();
        let problem = Problem::new(&r, &catalog, 3).unwrap();
        let sequential = ExactSummarizer::paper().summarize(&problem).unwrap();
        for workers in [0usize, 1, 2, 8] {
            for fan_out_threshold in [0usize, usize::MAX] {
                let pooled = ExactSummarizer {
                    workers,
                    fan_out_threshold,
                    ..ExactSummarizer::paper()
                }
                .on_executor(Arc::clone(&pool) as Arc<dyn SearchExecutor>)
                .summarize(&problem)
                .unwrap();
                assert_eq!(
                    pooled.utility.to_bits(),
                    sequential.utility.to_bits(),
                    "seed {seed} workers {workers} threshold {fan_out_threshold}"
                );
                assert_eq!(
                    pooled.speech.facts(),
                    sequential.speech.facts(),
                    "seed {seed} workers {workers} threshold {fan_out_threshold}"
                );
                assert_eq!(pooled.timed_out, sequential.timed_out);
            }
        }
    }
}

/// The default gate keeps small instances sequential even when the pool
/// grants workers: instrumentation (not just the speech) matches the
/// one-worker run exactly, proving the sequential code path ran.
#[test]
fn adaptive_gate_boundary_on_the_pool() {
    let pool: Arc<SolverPool> = Arc::new(SolverPool::new(4));
    let r = relation(9, 150);
    let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
    let problem = Problem::new(&r, &catalog, 3).unwrap();
    assert!(
        catalog.len() * 3 < DEFAULT_FAN_OUT_THRESHOLD,
        "instance must sit below the default gate"
    );
    let sequential = ExactSummarizer::with_workers(1)
        .summarize(&problem)
        .unwrap();
    let gated = ExactSummarizer::with_workers(8)
        .on_executor(Arc::clone(&pool) as Arc<dyn SearchExecutor>)
        .summarize(&problem)
        .unwrap();
    assert_eq!(gated.utility.to_bits(), sequential.utility.to_bits());
    assert_eq!(gated.speech.facts(), sequential.speech.facts());
    assert_eq!(gated.instrumentation, sequential.instrumentation);
}

/// The greedy unpruned sweep fanned over the pool selects the identical
/// facts as the sequential sweep.
#[test]
fn pool_backed_greedy_sweep_matches_sequential() {
    let pool: Arc<SolverPool> = Arc::new(SolverPool::new(2));
    for seed in [5u64, 23] {
        let r = relation(seed, 260);
        let catalog = FactCatalog::build(&r, &[0, 1, 2], 2).unwrap();
        let problem = Problem::new(&r, &catalog, 3).unwrap();
        let sequential = GreedySummarizer::base().summarize(&problem).unwrap();
        for workers in [0usize, 2, 8] {
            let pooled = GreedySummarizer {
                workers,
                ..GreedySummarizer::base()
            }
            .on_executor(Arc::clone(&pool) as Arc<dyn SearchExecutor>)
            .summarize(&problem)
            .unwrap();
            assert_eq!(
                pooled.utility.to_bits(),
                sequential.utility.to_bits(),
                "seed {seed} workers {workers}"
            );
            assert_eq!(pooled.speech.facts(), sequential.speech.facts());
        }
    }
}

/// A parallel exact search issued from *inside* a pool scatter job — the
/// exact shape of pool-backed pre-processing — must complete (inline,
/// no deadlock) and still match the sequential result.
#[test]
fn nested_pool_search_completes_and_matches() {
    let pool: Arc<SolverPool> = Arc::new(SolverPool::new(1));
    let r = relation(31, 200);
    let catalog = FactCatalog::build(&r, &[0, 1, 2], 2).unwrap();
    let problem = Problem::new(&r, &catalog, 3).unwrap();
    let sequential = ExactSummarizer::paper().summarize(&problem).unwrap();
    let solver = ExactSummarizer {
        workers: 8,
        fan_out_threshold: 0,
        ..ExactSummarizer::paper()
    }
    .on_executor(Arc::clone(&pool) as Arc<dyn SearchExecutor>);
    let nested = pool.scatter(1, |_| solver.summarize(&problem).unwrap());
    assert_eq!(nested[0].utility.to_bits(), sequential.utility.to_bits());
    assert_eq!(nested[0].speech.facts(), sequential.speech.facts());
}
