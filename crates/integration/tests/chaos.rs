//! Chaos suite: a sustained, seeded fault plan against a live serving
//! front-end, plus the deterministic degradation-ladder acceptance
//! checks.
//!
//! The randomized test drives waves of mixed traffic (deadline-free,
//! budgeted, instantly-expiring, chunked, plus background refreshes and
//! registrations) while a [`FaultPlan`] injects latency, panics, and
//! forced solver timeouts at every site, then asserts the serving
//! invariants:
//!
//! * every ticket completes — nothing hangs, nothing is lost;
//! * the workers survive injected panics and keep serving;
//! * the shed/expired/degraded/retried counters reconcile
//!   (`submitted == completed + shed + expired`, and the front-end's
//!   totals agree with the per-tenant roll-ups);
//! * refreshes stay fail-atomic, so after the chaos the tenant's store
//!   is byte-identical to a fault-free run's, and a fault-free rerun of
//!   the same requests returns byte-identical answers.
//!
//! The fault schedule is a pure function of the seed (pinned in CI via
//! `VQS_CHAOS_SEED`), so a failure reproduces by rerunning with the
//! same seed.

use std::sync::Arc;
use std::time::Duration;

use vqs_data::{DimSpec, GeneratedDataset, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;
use vqs_relalg::prelude::{Table, Value};

const LONG_WAIT: Duration = Duration::from_secs(120);

/// Pinned default; override with `VQS_CHAOS_SEED=<n>` to reproduce a CI
/// failure locally or to explore other schedules.
const DEFAULT_CHAOS_SEED: u64 = 20210411;

fn chaos_seed() -> u64 {
    std::env::var("VQS_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_CHAOS_SEED)
}

fn dataset(name: &str, seed: u64) -> GeneratedDataset {
    SynthSpec {
        name: name.to_string(),
        dims: vec![
            DimSpec::named("season", &["Winter", "Summer"]),
            DimSpec::named("region", &["East", "West"]),
        ],
        targets: vec![TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0))],
        rows: 160,
    }
    .generate(seed, 1.0)
}

fn config(name: &str) -> Configuration {
    Configuration::new(name, &["season", "region"], &["delay"])
}

/// The seed of the streaming tenant's base table (distinct from the
/// chaos tenant so store drift on one cannot mask drift on the other).
const STREAM_SEED: u64 = 29;

/// The `wave`-th ingest batch: one insert and one update, both always
/// valid (rows are never deleted, and `wave` < the 160 base rows), so
/// validity never depends on which earlier batches survived the faults.
fn stream_batch(wave: usize) -> Vec<RowDelta> {
    let seasons = ["Winter", "Summer"];
    let regions = ["East", "West"];
    vec![
        RowDelta::Insert(vec![
            Value::str(seasons[wave % 2]),
            Value::str(regions[(wave / 2) % 2]),
            Value::Float(10.0 + wave as f64),
        ]),
        RowDelta::Update {
            row: wave,
            values: vec![
                Value::str(seasons[(wave + 1) % 2]),
                Value::str(regions[wave % 2]),
                Value::Float(20.0 + wave as f64),
            ],
        },
    ]
}

/// Deadline-free requests whose answers must be byte-identical across a
/// fault-free service and a post-chaos, disarmed one. The last one hits
/// the evicted (Winter, East) speech and must serve the same
/// generalization both times.
const PLAIN: &[&str] = &[
    "delay in Winter?",
    "delay in Summer?",
    "delay in the East?",
    "delay in the West?",
    "delay in Winter in the East?",
];

/// The query whose stored speech both runs evict after registration: a
/// deadline-carrying request for it exercises the live-solve rung of
/// the degradation ladder (and its fault site) on every wave.
fn evicted_query() -> Query {
    Query::of("delay", &[("season", "Winter"), ("region", "East")])
}

/// Register the tenant and evict the (Winter, East) speech, simulating
/// a store entry lost to memory pressure while the live rows remain.
fn build_tenant(service: &VoiceService) {
    service
        .register_dataset(TenantSpec::new(
            "chaos",
            dataset("chaos", 17),
            config("chaos"),
        ))
        .unwrap();
    let store = service.tenant_store("chaos").unwrap();
    store.remove(&evicted_query()).expect("speech was stored");
}

#[test]
fn chaos_plan_preserves_serving_invariants() {
    let seed = chaos_seed();

    // ---- Fault-free reference: expected answers and store bytes. ----
    let reference = ServiceBuilder::new().workers(2).build();
    build_tenant(&reference);
    reference
        .refresh_tenant("chaos", &dataset("chaos", 17), &[])
        .unwrap();
    let expected_texts: Vec<String> = PLAIN
        .iter()
        .map(|utterance| {
            let response = reference.respond(&ServiceRequest::new("chaos", *utterance));
            assert!(response.answer.is_speech());
            assert_eq!(response.degradation, Degradation::None);
            response.text().to_string()
        })
        .collect();
    let expected_store = reference.tenant_store("chaos").unwrap().snapshot();

    // ---- The chaos run. ----
    let plan = Arc::new(
        FaultPlan::new(seed)
            .rule(
                FaultSite::Respond,
                Fault::Latency(Duration::from_millis(2)),
                0.20,
            )
            .rule(FaultSite::Respond, Fault::Panic, 0.05)
            .rule(FaultSite::RespondSolve, Fault::SolverTimeout, 0.50)
            .rule(FaultSite::RespondSolve, Fault::Panic, 0.05)
            .rule(FaultSite::Refresh, Fault::SolverTimeout, 0.30)
            .rule(
                FaultSite::Refresh,
                Fault::Latency(Duration::from_millis(2)),
                0.20,
            )
            .rule(FaultSite::Register, Fault::SolverTimeout, 0.50)
            .rule(FaultSite::Ingest, Fault::SolverTimeout, 0.30)
            .rule(
                FaultSite::Ingest,
                Fault::Latency(Duration::from_millis(2)),
                0.20,
            )
            .rule(FaultSite::Ingest, Fault::Panic, 0.05),
    );
    let service = Arc::new(
        ServiceBuilder::new()
            .workers(2)
            .fault_plan(Arc::clone(&plan))
            .build(),
    );
    build_tenant(&service);
    // A second, ingest-enabled tenant: streaming deltas ride the same
    // background lane as the refreshes while the plan injects faults at
    // the ingest entry. `max_dirty(1)` makes every accepted batch flush,
    // so the incremental circuit itself runs under chaos.
    service
        .register_dataset(
            TenantSpec::new("stream", dataset("stream", STREAM_SEED), config("stream"))
                .ingest(IngestBuilder::new().max_dirty(1)),
        )
        .unwrap();
    let frontend = FrontEnd::builder(Arc::clone(&service))
        .workers(2)
        .queue_capacity(256)
        .build();
    plan.arm();

    const WAVES: usize = 8;
    let mut internal_answers = 0u64;
    let mut degraded_answers = 0u64;
    let mut zero_budget_total = 0u64;
    let mut refresh_tickets = Vec::new();
    let mut register_tickets = Vec::new();
    let mut applied_batches: Vec<usize> = Vec::new();
    for wave in 0..WAVES {
        let mut tickets: Vec<ResponseTicket> = Vec::new();
        // Deadline-free traffic: must never expire or degrade; a
        // contained panic (typed Internal) is the only admissible
        // fault effect.
        for utterance in PLAIN {
            tickets.push(frontend.submit(ServiceRequest::new("chaos", *utterance)));
        }
        // Budgeted traffic at the evicted combination: the generous
        // budget never expires in-queue but routes through the
        // live-solve rung, where injected solver timeouts degrade the
        // answer to a greedy-built speech.
        for _ in 0..3 {
            tickets.push(
                frontend.submit(
                    ServiceRequest::new("chaos", "delay in Winter in the East?")
                        .with_budget(Duration::from_secs(60)),
                ),
            );
        }
        // Instantly-expiring traffic: the deadline passes while queued,
        // so the worker must complete these as Expired without
        // computing anything.
        for _ in 0..2 {
            zero_budget_total += 1;
            tickets.push(frontend.submit(
                ServiceRequest::new("chaos", "delay in Summer?").with_budget(Duration::ZERO),
            ));
        }
        // A mixed chunk (one ticket, per-request responses).
        let chunk = frontend.submit_chunk(vec![
            ServiceRequest::new("chaos", "delay in Winter?"),
            ServiceRequest::new("chaos", "delay in the West?"),
            ServiceRequest::new("chaos", "delay in Winter in the East?")
                .with_budget(Duration::from_secs(60)),
            ServiceRequest::new("chaos", "delay in Summer?"),
        ]);
        // Background control-lane traffic under faults: a no-op delta
        // refresh (fail-atomic either way) and, on alternating waves, a
        // fresh registration.
        refresh_tickets.push(frontend.submit_refresh("chaos", dataset("chaos", 17), vec![]));
        if wave % 2 == 0 {
            register_tickets.push(frontend.submit_register(TenantSpec::new(
                format!("extra{wave}"),
                dataset("extra", 23 + wave as u64),
                config("extra"),
            )));
        }
        // One streaming batch per wave, waited *before* the next wave's
        // batch so the applied order is deterministic. The ingest fault
        // site fires before any delta is accepted, so an Err ticket
        // means the batch was never applied — and a retried one was
        // applied exactly once.
        match frontend
            .submit_ingest("stream", stream_batch(wave))
            .wait_timeout(LONG_WAIT)
            .expect("ingest ticket never completed under chaos")
        {
            Ok(report) => {
                assert_eq!(report.accepted, 2);
                assert!(report.flush.is_some(), "max_dirty(1) flushes every batch");
                applied_batches.push(wave);
            }
            Err(EngineError::Internal { what }) => {
                assert!(what.contains("injected"), "unexpected ingest error: {what}")
            }
            Err(other) => panic!("unexpected ingest error {other:?}"),
        }

        // Every ticket completes — a hang here is an invariant failure,
        // surfaced as a timeout instead of a stuck suite.
        for ticket in tickets {
            let response = ticket
                .wait_timeout(LONG_WAIT)
                .expect("interactive ticket never completed under chaos");
            if response.degradation != Degradation::None {
                degraded_answers += 1;
            }
            match &response.answer {
                Answer::Speech { .. } => {}
                Answer::Internal { what } => {
                    internal_answers += 1;
                    assert!(what.contains("injected fault"), "unexpected panic: {what}");
                }
                Answer::Expired { tenant, .. } => assert_eq!(tenant, "chaos"),
                other => panic!("unexpected chaos answer {other:?}"),
            }
        }
        for response in chunk
            .wait_timeout(LONG_WAIT)
            .expect("chunk ticket never completed under chaos")
        {
            if response.degradation != Degradation::None {
                degraded_answers += 1;
            }
            match &response.answer {
                Answer::Speech { .. } => {}
                Answer::Internal { what } => {
                    internal_answers += 1;
                    assert!(what.contains("injected fault"), "unexpected panic: {what}");
                }
                other => panic!("unexpected chunk answer {other:?}"),
            }
        }
    }
    // Background tickets complete with Ok or a typed error — injected
    // faults on the control lane surface as EngineError::Internal after
    // the bounded retries are exhausted, never as a hang or a panic.
    for ticket in refresh_tickets {
        match ticket
            .wait_timeout(LONG_WAIT)
            .expect("refresh ticket never completed under chaos")
        {
            Ok(report) => assert_eq!(report.removed, 0),
            Err(EngineError::Internal { what }) => {
                assert!(
                    what.contains("injected"),
                    "unexpected refresh error: {what}"
                )
            }
            Err(other) => panic!("unexpected refresh error {other:?}"),
        }
    }
    for ticket in register_tickets {
        match ticket
            .wait_timeout(LONG_WAIT)
            .expect("register ticket never completed under chaos")
        {
            Ok(report) => assert!(report.speeches > 0),
            Err(EngineError::Internal { what }) => {
                assert!(
                    what.contains("injected"),
                    "unexpected register error: {what}"
                )
            }
            Err(other) => panic!("unexpected register error {other:?}"),
        }
    }
    plan.disarm();
    assert!(
        plan.injected() > 0,
        "the plan never fired — not a chaos run"
    );

    // ---- Counters reconcile. ----
    let stats = frontend.stats();
    assert_eq!(
        stats.submitted,
        stats.completed + stats.shed + stats.expired,
        "submitted != completed + shed + expired: {stats:?}"
    );
    assert_eq!(stats.shed, 0, "nothing should shed below capacity");
    assert_eq!(stats.expired, zero_budget_total);
    assert_eq!(stats.degraded, degraded_answers);
    assert_eq!(stats.contained_panics, internal_answers);
    assert_eq!(stats.background_completed, stats.background_submitted);
    assert!(
        stats.retried_background <= 2 * stats.background_submitted,
        "more retries than the per-job bound allows: {stats:?}"
    );
    // The front-end's totals agree with the tenant's own roll-up: all
    // expired and degraded traffic addressed the chaos tenant.
    let service_stats = service.stats();
    let tenant = service_stats
        .tenants
        .iter()
        .find(|t| t.tenant == "chaos")
        .unwrap();
    assert_eq!(tenant.expired_requests, stats.expired);
    assert_eq!(tenant.degraded_answers, stats.degraded);

    // ---- Post-chaos: workers alive, behavior byte-identical. ----
    for (utterance, expected) in PLAIN.iter().zip(&expected_texts) {
        let response = frontend
            .submit(ServiceRequest::new("chaos", *utterance))
            .wait_timeout(LONG_WAIT)
            .expect("post-chaos ticket never completed");
        assert!(response.answer.is_speech(), "worker did not survive chaos");
        assert_eq!(response.degradation, Degradation::None);
        assert_eq!(response.text(), expected, "answer drifted after chaos");
    }
    // Refreshes were fail-atomic no-ops either way: the store holds
    // exactly the bytes of the fault-free run.
    let store = service.tenant_store("chaos").unwrap();
    assert_eq!(
        store.snapshot(),
        expected_store,
        "store drifted under chaos"
    );

    // ---- Streaming tenant: counters reconcile, log converges. ----
    assert_eq!(stats.ingest_submitted, WAVES as u64);
    assert_eq!(stats.ingest_deltas, 2 * WAVES as u64);
    let flush = service.drain_ingest("stream").unwrap();
    assert_eq!(flush.deltas, 0, "every accepted batch already flushed");
    let final_stats = service.stats();
    let stream = final_stats
        .tenants
        .iter()
        .find(|t| t.tenant == "stream")
        .unwrap();
    assert_eq!(
        stream.deltas_applied,
        2 * applied_batches.len() as u64,
        "applied deltas disagree with the surviving tickets"
    );
    assert_eq!(stream.ingest_lag, 0);

    // Convergence under chaos: the store equals a cold pre-processing
    // of the table built from exactly the batches whose tickets
    // returned Ok, in submission order.
    let mut rows: Vec<Vec<Value>> = dataset("stream", STREAM_SEED).table.iter_rows().collect();
    for &wave in &applied_batches {
        for delta in stream_batch(wave) {
            match delta {
                RowDelta::Insert(values) => rows.push(values),
                RowDelta::Update { row, values } => rows[row] = values,
                RowDelta::Delete { row } => {
                    rows.remove(row);
                }
            }
        }
    }
    let base = dataset("stream", STREAM_SEED);
    let expected = GeneratedDataset {
        name: base.name.clone(),
        table: Table::from_rows(base.table.schema().clone(), rows).unwrap(),
        dims: base.dims.clone(),
        targets: base.targets.clone(),
    };
    let cold = ServiceBuilder::new().workers(2).build();
    cold.register_dataset(TenantSpec::new("stream", expected, config("stream")))
        .unwrap();
    assert_eq!(
        service.tenant_store("stream").unwrap().snapshot(),
        cold.tenant_store("stream").unwrap().snapshot(),
        "streaming tenant did not converge under chaos"
    );
    frontend.shutdown();
}

/// The acceptance check for the degradation ladder: a deadline-carrying
/// request whose budgeted live solve is forced to time out must come
/// back as a *greedy-degraded speech* — tier stamped — not an apology,
/// while the same request with no budget left degrades to the stored
/// generalization and a deadline-free request keeps the exact pre-PR
/// behavior.
#[test]
fn deadline_pressured_request_degrades_to_greedy_not_apology() {
    use vqs_core::prelude::ExactSummarizer;
    let plan =
        Arc::new(FaultPlan::new(1).rule_every(FaultSite::RespondSolve, Fault::SolverTimeout, 1));
    let service = ServiceBuilder::new()
        .workers(1)
        .summarizer(ExactSummarizer::paper())
        .fault_plan(Arc::clone(&plan))
        .build();
    build_tenant(&service);

    // Deadline-free baseline: the evicted combination generalizes (one
    // predicate kept), full quality — byte-for-byte the pre-deadline
    // behavior.
    let request = ServiceRequest::new("chaos", "delay in Winter in the East?");
    let response = service.respond(&request);
    assert_eq!(response.degradation, Degradation::None);
    match &response.answer {
        Answer::Speech {
            kept_predicates, ..
        } => assert_eq!(*kept_predicates, Some(1)),
        other => panic!("expected generalized speech, got {other:?}"),
    }

    // With budget and no faults: the live exact solve answers the full
    // two-predicate query at full quality.
    let response = service.respond(&request.clone().with_budget(Duration::from_secs(60)));
    assert_eq!(response.degradation, Degradation::None);
    match &response.answer {
        Answer::Speech {
            kept_predicates, ..
        } => assert_eq!(*kept_predicates, None, "live solve answers exactly"),
        other => panic!("expected live-solved speech, got {other:?}"),
    }

    // Deadline pressure: the armed plan forces the budgeted exact solve
    // to time out mid-request. The answer steps down to a greedy-built
    // speech for the *exact* query — stamped Greedy — instead of
    // apologizing.
    plan.arm();
    let response = service.respond(&request.clone().with_budget(Duration::from_secs(60)));
    plan.disarm();
    assert_eq!(response.degradation, Degradation::Greedy);
    match &response.answer {
        Answer::Speech {
            kept_predicates, ..
        } => assert_eq!(*kept_predicates, None, "greedy still answers exactly"),
        other => panic!("expected a degraded speech, not an apology: {other:?}"),
    }

    // No budget at all: nothing is computed; the stored generalization
    // is served and stamped StoreOnly.
    let response = service.respond(&request.clone().with_budget(Duration::ZERO));
    assert_eq!(response.degradation, Degradation::StoreOnly);
    match &response.answer {
        Answer::Speech {
            kept_predicates, ..
        } => assert_eq!(*kept_predicates, Some(1)),
        other => panic!("expected the stored generalization, got {other:?}"),
    }

    // The tenant's counters saw the two degraded answers.
    let stats = service.stats();
    let tenant = stats.tenants.iter().find(|t| t.tenant == "chaos").unwrap();
    assert_eq!(tenant.degraded_answers, 2);
}

/// The accounting invariant under *sustained* open-loop overload
/// (ISSUE 10): an offered rate far past a deliberately slowed
/// one-worker front-end, driven by the coordinated-omission-safe load
/// generator. Every submission must land in exactly one of
/// completed/shed/expired — under queue-full shedding and in-queue
/// expiry at once — and the generator's own per-ticket classification
/// must agree with the front-end's counters.
#[test]
fn overload_accounting_reconciles_under_open_loop_load() {
    use vqs_bench::loadgen::{self, Arrival, LoadPlan, Schedule};

    let seed = chaos_seed();
    // Every respond sleeps 5ms: a ~200 req/s worker offered 3000 req/s.
    let plan = Arc::new(FaultPlan::new(seed).rule_every(
        FaultSite::Respond,
        Fault::Latency(Duration::from_millis(5)),
        1,
    ));
    let service = Arc::new(
        ServiceBuilder::new()
            .workers(1)
            .fault_plan(Arc::clone(&plan))
            .build(),
    );
    build_tenant(&service);
    let frontend = FrontEnd::builder(Arc::clone(&service))
        .workers(1)
        .queue_capacity(32)
        .build();
    plan.arm();

    // Two deadline-free prototypes plus one whose fixed deadline falls
    // ~150ms into the run: cycled clones submitted after that instant
    // expire in the backed-up queue rather than being computed.
    let stale_deadline = std::time::Instant::now() + Duration::from_millis(150);
    let requests = vec![
        ServiceRequest::new("chaos", "delay in Winter?"),
        ServiceRequest::new("chaos", "delay in Summer?"),
        ServiceRequest::new("chaos", "delay in the West?").with_deadline(stale_deadline),
    ];
    let load_plan = LoadPlan::respond_only(
        Schedule::new(Arrival::Constant { rate: 3000.0 }, 600, seed),
        requests,
        seed,
    );
    let report = loadgen::run(&frontend, &load_plan);
    plan.disarm();

    // The generator accounted every submission exactly once...
    assert_eq!(report.responds, 600);
    assert_eq!(
        report.answered + report.shed + report.expired + report.internal,
        600,
        "loadgen lost a ticket: {report:?}"
    );
    // ...the overload genuinely bit on both rungs...
    assert!(
        report.shed > 0,
        "no sheds — not an overload run: {report:?}"
    );
    assert!(
        report.expired > 0,
        "no expiries — stale deadlines never queued: {report:?}"
    );
    assert!(report.answered > 0, "the worker starved entirely");

    // ...and the front-end's own counters reconcile and agree with the
    // generator's per-ticket classification.
    let stats = frontend.stats();
    assert_eq!(
        stats.submitted,
        stats.completed + stats.shed + stats.expired,
        "submitted != completed + shed + expired: {stats:?}"
    );
    assert_eq!(stats.submitted, 600);
    assert_eq!(stats.shed, report.shed);
    assert_eq!(stats.expired, report.expired);
    assert_eq!(stats.contained_panics, report.internal);

    // Post-overload the worker still serves cleanly.
    let response = frontend
        .submit(ServiceRequest::new("chaos", "delay in Winter?"))
        .wait_timeout(LONG_WAIT)
        .expect("post-overload ticket never completed");
    assert!(response.answer.is_speech(), "worker did not recover");
    frontend.shutdown();
}
