// vqs-integration: tests live in the repository-root tests/ directory.
