//! Property coverage for the synthetic generators (ISSUE 10).
//!
//! The scale benchmarks lean on three contracts: `generate_rows` is
//! byte-identical in `(seed, rows)` for *any* worker count (chunk-seeded
//! RNG streams, fixed chunk size), `generate`'s row count is exactly
//! linear in the scale factor, and the declared per-dimension
//! cardinalities actually materialize once the table is large enough —
//! checked at the bench's 1M-row operating point.

use proptest::prelude::*;
use vqs_data::{scale_tenant_spec, DimSpec, SynthSpec, TargetSpec, DEFAULT_SEED};

fn small_spec() -> SynthSpec {
    SynthSpec {
        name: "props".to_string(),
        dims: vec![
            DimSpec::synthetic("a", "a", 5, 0.7),
            DimSpec::named("b", &["x", "y", "z"]),
            DimSpec::synthetic("c", "c", 9, 0.0),
        ],
        targets: vec![
            TargetSpec::new("t", 50.0, 10.0, 2.0, (0.0, 100.0)),
            TargetSpec::new("u", 10.0, 4.0, 1.0, (0.0, 40.0)),
        ],
        rows: 400,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Worker count is a performance knob, never a semantic one: the
    // row range spans several GEN_CHUNK (8192) boundaries so parallel
    // chunk assembly order is actually exercised.
    #[test]
    fn worker_count_never_changes_bytes(
        seed in 0u64..1_000,
        rows in 1usize..20_000,
        workers in prop_oneof![Just(2usize), Just(3), Just(8)],
    ) {
        let spec = small_spec();
        let serial = spec.generate_rows(seed, rows, 1);
        let parallel = spec.generate_rows(seed, rows, workers);
        prop_assert_eq!(serial.table.len(), rows);
        prop_assert_eq!(parallel.table.len(), rows);
        for (a, b) in serial.table.iter_rows().zip(parallel.table.iter_rows()) {
            prop_assert_eq!(a, b);
        }
    }

    // `generate(seed, scale)` sizes the table as round(rows × scale),
    // clamped to ≥ 1 — exactly linear, no drift from sampling.
    #[test]
    fn row_count_is_linear_in_scale(
        seed in 0u64..1_000,
        scale_hundredths in 0u32..400,
    ) {
        let spec = small_spec();
        let scale = f64::from(scale_hundredths) / 100.0;
        let data = spec.generate(seed, scale);
        let expected = ((spec.rows as f64 * scale).round() as usize).max(1);
        prop_assert_eq!(data.table.len(), expected);
    }

    // Different seeds give different tables (the chunk-seed mixing must
    // not collapse the seed space).
    #[test]
    fn seeds_differentiate_parallel_tables(seed in 0u64..1_000) {
        let spec = small_spec();
        let a = spec.generate_rows(seed, 256, 2);
        let b = spec.generate_rows(seed + 1, 256, 2);
        let differs = a
            .table
            .iter_rows()
            .zip(b.table.iter_rows())
            .any(|(x, y)| x != y);
        prop_assert!(differs);
    }
}

/// At the scale bench's 1M-row operating point, every declared
/// dimension value occurs — the candidate-query universe the paper's
/// enumeration reasons over is fully materialized, so preprocess cost
/// measured there reflects the declared cardinalities, not a sampled
/// subset of them.
#[test]
fn declared_cardinalities_hold_at_1m_rows() {
    let spec = scale_tenant_spec();
    let data = spec.generate_rows(DEFAULT_SEED, 1_000_000, 0);
    assert_eq!(data.table.len(), 1_000_000);
    for dim in &spec.dims {
        let col = data.table.column_by_name(&dim.name).unwrap();
        let mut seen = std::collections::HashSet::new();
        for row in 0..data.table.len() {
            seen.insert(col.value(row).to_string());
        }
        assert_eq!(
            seen.len(),
            dim.values.len(),
            "dimension {} cardinality",
            dim.name
        );
        for value in &dim.values {
            assert!(seen.contains(value), "missing {} value {value}", dim.name);
        }
    }
}
