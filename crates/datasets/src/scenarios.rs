//! The four evaluation data sets of Table I, as seeded generators.
//!
//! | Data set       | Size   | #Dims | #Targets | facts/subset (§VIII-B) |
//! |----------------|--------|-------|----------|------------------------|
//! | ACS NY         | 2 MB   | 3     | 6        | 764                    |
//! | Stack Overflow | 197 MB | 7     | 6        | 3,700                  |
//! | Flights        | 565 MB | 6     | 1        | 1,300                  |
//! | Primaries      | 6 MB   | 5     | 1        | —                      |
//!
//! Dimension cardinalities are chosen so the full-data candidate-fact
//! counts land near the paper's numbers (exact counts are asserted in the
//! tests); row counts are laptop-scale by default — the generators take a
//! scale factor, and EXPERIMENTS.md records the deltas to the paper.

use crate::synth::{DimSpec, GeneratedDataset, SynthSpec, TargetSpec};

/// Default seed for all scenario data sets.
pub const DEFAULT_SEED: u64 = 0x1CDE_2021;

/// The eight scenario–target pairs of Fig. 3, in plot order.
pub const FIG3_SCENARIOS: [(&str, &str); 8] = [
    ("F-C", "cancelled"),
    ("F-D", "delay"),
    ("A-H", "hearing"),
    ("A-V", "visual"),
    ("A-C", "cognitive"),
    ("S-C", "competence"),
    ("S-O", "optimism"),
    ("S-S", "job_satisfaction"),
];

/// ACS New York disability extract: 3 dimensions, 6 prevalence targets
/// (per 1000 persons).
pub fn acs_spec() -> SynthSpec {
    SynthSpec {
        name: "ACS NY".to_string(),
        dims: vec![
            DimSpec::named(
                "borough",
                &["Brooklyn", "Manhattan", "Queens", "St. Island", "Bronx"],
            ),
            DimSpec {
                name: "age_group".to_string(),
                values: vec![
                    "0-9", "10-19", "20-29", "30-39", "40-49", "50-59", "60-69", "70-79", "80+",
                ]
                .into_iter()
                .map(String::from)
                .collect(),
                skew: 0.3,
            },
            DimSpec::synthetic("puma", "area", 45, 0.4),
        ],
        targets: {
            // Disability prevalence is dominated by age, with a modest
            // borough effect and little fine-grained (PUMA) signal.
            let weights = [0.35, 1.0, 0.08];
            vec![
                TargetSpec::new("hearing", 35.0, 18.0, 6.0, (0.0, 1000.0))
                    .with_dim_weights(&weights),
                TargetSpec::new("visual", 30.0, 16.0, 6.0, (0.0, 1000.0))
                    .with_dim_weights(&weights),
                TargetSpec::new("cognitive", 45.0, 20.0, 8.0, (0.0, 1000.0))
                    .with_dim_weights(&weights),
                TargetSpec::new("ambulatory", 55.0, 25.0, 8.0, (0.0, 1000.0))
                    .with_dim_weights(&weights),
                TargetSpec::new("selfcare", 22.0, 10.0, 5.0, (0.0, 1000.0))
                    .with_dim_weights(&weights),
                TargetSpec::new("independent_living", 40.0, 18.0, 7.0, (0.0, 1000.0))
                    .with_dim_weights(&weights),
            ]
        },
        rows: 8_000,
    }
}

/// Stack Overflow 2019 developer survey: 7 dimensions, 6 attitude/score
/// targets on a 0–10 scale.
pub fn stackoverflow_spec() -> SynthSpec {
    SynthSpec {
        name: "Stack Overflow".to_string(),
        dims: vec![
            DimSpec::synthetic("country", "country", 40, 0.9),
            DimSpec::synthetic("language", "lang", 25, 0.7),
            DimSpec::synthetic("dev_type", "dev", 10, 0.5),
            DimSpec::named(
                "ed_level",
                &[
                    "None",
                    "Primary",
                    "Secondary",
                    "Associate",
                    "Bachelor",
                    "Master",
                    "Doctoral",
                    "Professional",
                ],
            ),
            DimSpec::synthetic("org_size", "org", 9, 0.4),
            DimSpec::named(
                "age_bracket",
                &["<20", "20-24", "25-29", "30-34", "35-44", "45-54", "55+"],
            ),
            DimSpec::named("gender", &["man", "woman", "non-binary", "undisclosed"]),
        ],
        targets: {
            // Attitude scores are driven mostly by country and dev type;
            // the long-tail dimensions carry little signal.
            let weights = [1.0, 0.15, 0.6, 0.2, 0.25, 0.3, 0.1];
            vec![
                TargetSpec::new("competence", 6.5, 1.2, 0.8, (0.0, 10.0))
                    .with_dim_weights(&weights),
                TargetSpec::new("optimism", 6.0, 1.5, 0.9, (0.0, 10.0)).with_dim_weights(&weights),
                TargetSpec::new("job_satisfaction", 6.8, 1.4, 1.0, (0.0, 10.0))
                    .with_dim_weights(&weights),
                TargetSpec::new("career_satisfaction", 7.0, 1.3, 0.9, (0.0, 10.0))
                    .with_dim_weights(&weights),
                TargetSpec::new("work_hours", 42.0, 4.0, 3.0, (10.0, 80.0))
                    .with_dim_weights(&weights),
                TargetSpec::new("years_coding", 9.0, 3.0, 2.0, (0.0, 45.0))
                    .with_dim_weights(&weights),
            ]
        },
        rows: 25_000,
    }
}

/// Kaggle flight statistics: 6 dimensions, delay (minutes) and
/// cancellation probability (per mille) targets.
pub fn flights_spec() -> SynthSpec {
    SynthSpec {
        name: "Flights".to_string(),
        dims: vec![
            DimSpec::synthetic("airline", "airline", 14, 0.6),
            DimSpec::synthetic("origin_region", "from", 9, 0.5),
            DimSpec::synthetic("dest_region", "to", 9, 0.5),
            DimSpec::named("season", &["Spring", "Summer", "Fall", "Winter"]),
            DimSpec::named(
                "weekday",
                &["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"],
            ),
            DimSpec::named("daypart", &["morning", "midday", "evening", "night"]),
        ],
        targets: {
            // Delays and cancellations hinge on season and airline; the
            // origin/destination splits matter less, weekday barely.
            let weights = [0.8, 0.25, 0.2, 1.0, 0.1, 0.45];
            vec![
                TargetSpec::new("delay", 12.0, 6.0, 5.0, (0.0, 180.0)).with_dim_weights(&weights),
                // Cancellation probability in per-mille (Example 5 speaks
                // of "about 6%" style values).
                TargetSpec::new("cancelled", 25.0, 12.0, 6.0, (0.0, 1000.0))
                    .with_dim_weights(&weights),
            ]
        },
        rows: 50_000,
    }
}

/// FiveThirtyEight democratic primaries polling: 5 dimensions, one
/// polling-percentage target.
pub fn primaries_spec() -> SynthSpec {
    SynthSpec {
        name: "Primaries".to_string(),
        dims: vec![
            DimSpec::synthetic("candidate", "cand", 10, 0.5),
            DimSpec::synthetic("state", "state", 25, 0.4),
            DimSpec::named("month", &["Sep", "Oct", "Nov", "Dec", "Jan", "Feb"]),
            DimSpec::synthetic("pollster", "pollster", 15, 0.6),
            DimSpec::named("population", &["likely", "registered", "adults"]),
        ],
        targets: vec![TargetSpec::new("support", 12.0, 6.0, 3.0, (0.0, 100.0))
            .with_dim_weights(&[1.0, 0.2, 0.5, 0.1, 0.15])],
        rows: 5_000,
    }
}

/// The scale-sweep synthetic tenant: a "heavy traffic from millions of
/// users" analytics table (ROADMAP item 2), sized directly by row count
/// through [`SynthSpec::generate_rows`] rather than a scale factor.
/// Cardinalities are deliberately moderate — the enumerated subset
/// count stays in the low thousands, so preprocess cost at millions of
/// rows measures the *data* axis, not a combinatorial one.
pub fn scale_tenant_spec() -> SynthSpec {
    SynthSpec {
        name: "ScaleTenant".to_string(),
        dims: vec![
            DimSpec::synthetic("region", "region", 12, 0.6),
            DimSpec::synthetic("device", "device", 8, 0.8),
            DimSpec::named("plan", &["free", "basic", "pro", "enterprise"]),
            DimSpec::named(
                "cohort",
                &["new", "active", "dormant", "churned", "returning", "trial"],
            ),
        ],
        targets: vec![
            TargetSpec::new("engagement", 55.0, 14.0, 6.0, (0.0, 100.0))
                .with_dim_weights(&[1.0, 0.5, 0.7, 0.9]),
            TargetSpec::new("latency_ms", 120.0, 40.0, 20.0, (5.0, 1000.0))
                .with_dim_weights(&[0.9, 1.0, 0.2, 0.3]),
        ],
        rows: 1_000_000,
    }
}

/// A deliberately *wide* spec — `dims` binary dimensions, one target —
/// for probing the store's predicate-count regimes: queries with up to
/// 16 predicates enumerate `2^n` generalization candidates, and past 16
/// the store falls back to a linear shard scan. The scale bench charts
/// probe counts across that cliff.
pub fn wide_probe_spec(dims: usize) -> SynthSpec {
    SynthSpec {
        name: format!("Wide-{dims}"),
        dims: (0..dims)
            .map(|d| DimSpec::named(&format!("d{d:02}"), &["a", "b"]))
            .collect(),
        targets: vec![TargetSpec::new("metric", 50.0, 10.0, 3.0, (0.0, 100.0))],
        rows: 512,
    }
}

/// All four scenario specs in Table I order.
pub fn all_specs() -> Vec<SynthSpec> {
    vec![
        acs_spec(),
        stackoverflow_spec(),
        flights_spec(),
        primaries_spec(),
    ]
}

/// Generate one scenario by its Fig. 3 letter ("A", "S", "F", "P").
pub fn by_letter(letter: &str, scale: f64) -> Option<GeneratedDataset> {
    let spec = match letter {
        "A" => acs_spec(),
        "S" => stackoverflow_spec(),
        "F" => flights_spec(),
        "P" => primaries_spec(),
        _ => return None,
    };
    Some(spec.generate(DEFAULT_SEED, scale))
}

/// Candidate-fact count over the full data for facts restricting at most
/// `max_dims` dimensions, assuming all value combinations occur:
/// `Σ_{size ≤ max_dims} Π cardinalities` (Theorem 9's bound, tight for
/// dense data).
pub fn nominal_fact_count(spec: &SynthSpec, max_dims: usize) -> usize {
    let cards: Vec<usize> = spec.dims.iter().map(|d| d.values.len()).collect();
    let mut total = 0usize;
    for mask in 0u32..(1 << cards.len()) {
        if (mask.count_ones() as usize) <= max_dims {
            let product: usize = (0..cards.len())
                .filter(|&d| mask & (1 << d) != 0)
                .map(|d| cards[d])
                .product();
            total += product;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let specs = all_specs();
        let dims: Vec<usize> = specs.iter().map(|s| s.dims.len()).collect();
        let targets: Vec<usize> = specs.iter().map(|s| s.targets.len()).collect();
        assert_eq!(dims, vec![3, 7, 6, 5]);
        // The paper lists 1 target for flights but evaluates both F-C and
        // F-D; we generate both columns.
        assert_eq!(targets, vec![6, 6, 2, 1]);
    }

    #[test]
    fn fact_counts_near_paper() {
        // §VIII-B: 3,700 facts per data subset for Stack Overflow, 1,300
        // for flights, 764 for ACS (facts restrict ≤ 2 dimensions).
        let acs = nominal_fact_count(&acs_spec(), 2);
        assert!((640..=900).contains(&acs), "ACS facts: {acs}");
        let so = nominal_fact_count(&stackoverflow_spec(), 2);
        assert!((3_100..=4_600).contains(&so), "SO facts: {so}");
        let fl = nominal_fact_count(&flights_spec(), 2);
        assert!((850..=1_600).contains(&fl), "Flights facts: {fl}");
        // Ordering is what drives the Fig. 3 shape.
        assert!(so > fl && fl > acs);
    }

    #[test]
    fn fig3_targets_exist() {
        let acs = acs_spec();
        let so = stackoverflow_spec();
        let fl = flights_spec();
        for (scenario, target) in FIG3_SCENARIOS {
            let spec = match scenario.chars().next().unwrap() {
                'A' => &acs,
                'S' => &so,
                'F' => &fl,
                _ => unreachable!(),
            };
            assert!(
                spec.targets.iter().any(|t| t.name == target),
                "{scenario} target '{target}' missing"
            );
        }
    }

    #[test]
    fn generators_produce_tables() {
        for letter in ["A", "S", "F", "P"] {
            let data = by_letter(letter, 0.01).unwrap();
            assert!(!data.table.is_empty(), "{letter}");
            assert!(data.table.schema().len() == data.dims.len() + data.targets.len());
        }
        assert!(by_letter("X", 1.0).is_none());
    }

    #[test]
    fn acs_borough_values_match_fig6() {
        let data = acs_spec().generate(DEFAULT_SEED, 0.02);
        let col = data.table.column_by_name("borough").unwrap();
        let mut seen = std::collections::HashSet::new();
        for row in 0..data.table.len() {
            seen.insert(col.value(row).to_string());
        }
        assert!(seen.contains("Brooklyn") && seen.contains("Bronx"));
    }
}
