//! # vqs-data — evaluation data sets for the VQS reproduction
//!
//! The paper's four public data sets (Table I) are unavailable offline;
//! this crate replaces them with seeded synthetic generators matched to
//! the properties the algorithms depend on — dimension/target counts,
//! per-dimension cardinalities (and thereby candidate-fact counts),
//! categorical skew and dimension-driven target structure. It also ships
//! the paper's running example (Fig. 1) as an exactly reconstructed grid.
//!
//! ```
//! use vqs_data::{running_example, scenarios};
//!
//! let fig1 = running_example::relation();
//! assert_eq!(vqs_core::prelude::base_error(&fig1), 120.0);
//!
//! let flights = scenarios::flights_spec().generate(scenarios::DEFAULT_SEED, 0.01);
//! assert_eq!(flights.dims.len(), 6);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod running_example;
pub mod scenarios;
pub mod synth;

pub use scenarios::{
    acs_spec, all_specs, by_letter, flights_spec, nominal_fact_count, primaries_spec,
    scale_tenant_spec, stackoverflow_spec, wide_probe_spec, DEFAULT_SEED, FIG3_SCENARIOS,
};
pub use synth::{DimSpec, GeneratedDataset, SynthSpec, TargetSpec};
