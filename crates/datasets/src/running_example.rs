//! The paper's running example (Fig. 1): average airplane delays as a
//! function of region and season.
//!
//! The 4×4 grid below is the unique one consistent with the worked numbers
//! of Examples 2, 6, 7 and 8 (see DESIGN.md):
//!
//! ```text
//!             East  South  West  North
//! Spring        0      0     0     20
//! Summer        0     20     0     10
//! Fall          0      0     0     10
//! Winter       20     10    10     20
//! ```
//!
//! Derived quantities the tests rely on: `D(∅) = 120`; the Winter and
//! North facts (both value 15) have single-fact utility 40 each and the
//! second of them adds gain 25 after the first; the Summer∧South fact
//! (value 20) has utility 20; after the Winter fact, the East groups's
//! deviation bound is 5 and Fall's is 10. Example 4's Speech 2 error of
//! 35 is inconsistent with this grid (the true value is 55 — utility 65);
//! Speech 2 still dominates Speech 1 as the paper claims.

use vqs_core::prelude::*;

/// Season labels, row-major order of the grid.
pub const SEASONS: [&str; 4] = ["Spring", "Summer", "Fall", "Winter"];
/// Region labels, column order of the grid.
pub const REGIONS: [&str; 4] = ["East", "South", "West", "North"];

/// The delay grid, `GRID[season][region]`.
pub const GRID: [[f64; 4]; 4] = [
    [0.0, 0.0, 0.0, 20.0],
    [0.0, 20.0, 0.0, 10.0],
    [0.0, 0.0, 0.0, 10.0],
    [20.0, 10.0, 10.0, 20.0],
];

/// The running-example relation: one row per (season, region) cell, prior
/// "no delays" (Example 3).
pub fn relation() -> EncodedRelation {
    let mut rows = Vec::with_capacity(16);
    for (s, season) in SEASONS.iter().enumerate() {
        for (r, region) in REGIONS.iter().enumerate() {
            rows.push((vec![*season, *region], GRID[s][r]));
        }
    }
    EncodedRelation::from_rows(&["season", "region"], "delay", rows, Prior::Constant(0.0))
        .expect("running example is well-formed")
}

/// Build a scope over the running example from `(column, value)` names.
pub fn scope(relation: &EncodedRelation, pairs: &[(&str, &str)]) -> Scope {
    let encoded: Vec<(usize, u32)> = pairs
        .iter()
        .map(|&(dim, value)| {
            let d = relation.dim_index(dim).expect("dimension exists");
            let code = relation.dims()[d].code_of(value).expect("value exists");
            (d, code)
        })
        .collect();
    Scope::from_pairs(&encoded).expect("valid scope")
}

/// Speech 1 of Fig. 1: Summer∧South = 20 and Winter∧East = 20.
pub fn speech1(relation: &EncodedRelation) -> Speech {
    Speech::new(vec![
        Fact::new(
            scope(relation, &[("season", "Summer"), ("region", "South")]),
            20.0,
            1,
        ),
        Fact::new(
            scope(relation, &[("season", "Winter"), ("region", "East")]),
            20.0,
            1,
        ),
    ])
}

/// Speech 2 of Fig. 1: Winter = 15 and North = 15.
pub fn speech2(relation: &EncodedRelation) -> Speech {
    Speech::new(vec![
        Fact::new(scope(relation, &[("season", "Winter")]), 15.0, 4),
        Fact::new(scope(relation, &[("region", "North")]), 15.0, 4),
    ])
}

/// The Example 7 fact pool: every fact restricting a specific region or
/// season or both (no overall-average fact).
pub fn example7_catalog(relation: &EncodedRelation) -> FactCatalog {
    FactCatalog::build_with_scope_sizes(relation, &[0, 1], 1, 2).expect("running example catalog")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_totals_match_example4() {
        let r = relation();
        assert_eq!(r.len(), 16);
        assert_eq!(base_error(&r), 120.0);
    }

    #[test]
    fn speech_utilities() {
        let r = relation();
        assert_eq!(speech1(&r).utility(&r), 40.0);
        assert_eq!(speech2(&r).utility(&r), 65.0);
        assert!(speech2(&r).utility(&r) > speech1(&r).utility(&r));
    }

    #[test]
    fn fact_values_match_grid_averages() {
        let r = relation();
        let winter = Fact::for_scope(&r, scope(&r, &[("season", "Winter")])).unwrap();
        assert_eq!(winter.value, 15.0);
        let north = Fact::for_scope(&r, scope(&r, &[("region", "North")])).unwrap();
        assert_eq!(north.value, 15.0);
        let east = Fact::for_scope(&r, scope(&r, &[("region", "East")])).unwrap();
        assert_eq!(east.value, 5.0);
    }

    #[test]
    fn example7_pool_excludes_overall() {
        let r = relation();
        let catalog = example7_catalog(&r);
        assert!(catalog.facts().iter().all(|f| !f.scope.is_empty()));
        // 4 seasons + 4 regions + 16 cells.
        assert_eq!(catalog.len(), 24);
    }
}
