//! Generic seeded data synthesis.
//!
//! The paper evaluates on four public data sets (Table I). Those files are
//! not available offline, so each is replaced by a generator that matches
//! the properties the algorithms are sensitive to: the number of dimension
//! and target columns, per-dimension cardinalities (which determine the
//! candidate-fact counts reported in §VIII-B), value skew, and a target
//! that truly depends on the dimensions (so that facts explain variance
//! and summaries are meaningful). Everything is seeded and reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vqs_relalg::prelude::{ColumnType, Field, Schema, Table, Value};

/// One dimension column specification.
#[derive(Debug, Clone)]
pub struct DimSpec {
    /// Column name.
    pub name: String,
    /// Distinct values.
    pub values: Vec<String>,
    /// Zipf-ish skew exponent: 0 = uniform, 1 ≈ classic Zipf. Real survey
    /// columns (country, airline) are heavily skewed, which shapes fact
    /// supports and thereby pruning effectiveness.
    pub skew: f64,
}

impl DimSpec {
    /// A dimension with auto-named values `prefix0..prefixN`.
    pub fn synthetic(name: &str, prefix: &str, cardinality: usize, skew: f64) -> DimSpec {
        DimSpec {
            name: name.to_string(),
            values: (0..cardinality).map(|i| format!("{prefix}{i}")).collect(),
            skew,
        }
    }

    /// A dimension with explicit values, uniform draw.
    pub fn named(name: &str, values: &[&str]) -> DimSpec {
        DimSpec {
            name: name.to_string(),
            values: values.iter().map(|s| s.to_string()).collect(),
            skew: 0.0,
        }
    }
}

/// One target column specification.
///
/// Values are generated as
/// `base + Σ_d effect_scale · e_d[code_d] + N(0, noise)` clamped to
/// `[min, max]`, with per-value effects `e_d` drawn once per (target,
/// dimension) from the seed. The additive structure means low-dimensional
/// facts genuinely predict the target — the regime the paper's utility
/// model rewards.
#[derive(Debug, Clone)]
pub struct TargetSpec {
    /// Column name.
    pub name: String,
    /// Baseline value.
    pub base: f64,
    /// Scale of per-dimension effects.
    pub effect_scale: f64,
    /// Standard deviation of the residual noise.
    pub noise: f64,
    /// Lower clamp.
    pub min: f64,
    /// Upper clamp.
    pub max: f64,
    /// Relative effect weight per dimension (aligned with the spec's
    /// dims; missing entries default to 1). Real-world targets are
    /// dominated by one or two dimensions — disability prevalence by age,
    /// flight delays by season/airline — and that concentration is what
    /// makes coarse facts informative and fact-group pruning effective.
    pub dim_weights: Vec<f64>,
}

impl TargetSpec {
    /// Convenience constructor with uniform dimension weights.
    pub fn new(name: &str, base: f64, effect_scale: f64, noise: f64, range: (f64, f64)) -> Self {
        TargetSpec {
            name: name.to_string(),
            base,
            effect_scale,
            noise,
            min: range.0,
            max: range.1,
            dim_weights: Vec::new(),
        }
    }

    /// Set per-dimension effect weights (builder style).
    pub fn with_dim_weights(mut self, weights: &[f64]) -> Self {
        self.dim_weights = weights.to_vec();
        self
    }

    fn weight(&self, dim: usize) -> f64 {
        self.dim_weights.get(dim).copied().unwrap_or(1.0)
    }
}

/// A complete synthetic data set specification.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Data set name (e.g. "Flights").
    pub name: String,
    /// Dimension columns.
    pub dims: Vec<DimSpec>,
    /// Target columns.
    pub targets: Vec<TargetSpec>,
    /// Row count at scale 1.0.
    pub rows: usize,
}

/// A generated data set: a relalg table plus column-role metadata.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// Data set name.
    pub name: String,
    /// The data (dimension columns first, then targets).
    pub table: Table,
    /// Names of the dimension columns.
    pub dims: Vec<String>,
    /// Names of the target columns.
    pub targets: Vec<String>,
}

impl GeneratedDataset {
    /// Approximate in-memory size in bytes (strings count once per cell),
    /// reported in our Table I analogue.
    pub fn approx_bytes(&self) -> usize {
        let mut per_row = 0usize;
        for field in self.table.schema().fields() {
            per_row += match field.ty {
                ColumnType::Str => 12,
                _ => 8,
            };
        }
        self.table.len() * per_row
    }
}

/// The derived sampling model of one spec: per-dimension cumulative
/// distributions and the per-(target, dimension, value) additive
/// effects. Building it consumes the effect draws from the model RNG;
/// sampling rows afterwards is side-effect-free on the model, so any
/// number of independently seeded RNGs can sample rows concurrently.
struct SynthModel {
    /// Cumulative categorical distribution per dimension (Zipf-ish).
    dim_cdfs: Vec<Vec<f64>>,
    /// `effects[t][d][code]`: additive contribution of dimension `d`
    /// taking value `code` to target `t`.
    effects: Vec<Vec<Vec<f64>>>,
}

/// Rows per generation chunk of [`SynthSpec::generate_rows`]. Fixed —
/// never derived from the worker count — so chunk RNG streams, and
/// therefore the generated bytes, are identical for any parallelism.
const GEN_CHUNK: usize = 8_192;

/// SplitMix64 step: decorrelates per-chunk seeds from the base seed so
/// neighboring chunks don't get neighboring `StdRng` streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SynthSpec {
    /// Generate the data set at `scale` (scaling the row count) from a
    /// deterministic seed.
    pub fn generate(&self, seed: u64, scale: f64) -> GeneratedDataset {
        let rows = ((self.rows as f64 * scale).round() as usize).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        // Model draws come off the same RNG stream the row loop then
        // continues — the historical layout; golden tests pin its bytes.
        let model = self.model(&mut rng);
        let mut table = Table::empty(self.schema());
        for _ in 0..rows {
            table
                .push_row(self.sample_row(&model, &mut rng))
                .expect("generated row matches schema");
        }
        self.dataset(table)
    }

    /// Generate exactly `rows` rows on `workers` threads (`0` = all
    /// available cores), deterministically in `(seed, rows)`: the table
    /// is byte-identical for any worker count, because rows are produced
    /// in fixed [`GEN_CHUNK`]-sized chunks each sampled from its own
    /// chunk-seeded RNG, and chunks are assembled in order. The derived
    /// model (value distributions, dimension effects) matches
    /// [`SynthSpec::generate`] with the same seed; the row stream is a
    /// different (but equally seeded) sample of the same population.
    ///
    /// This is the scale-bench entry point: row counts in the millions
    /// are sized directly instead of through a scale factor, and
    /// generation parallelizes.
    pub fn generate_rows(&self, seed: u64, rows: usize, workers: usize) -> GeneratedDataset {
        let rows = rows.max(1);
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        let model = self.model(&mut StdRng::seed_from_u64(seed));
        let chunk_count = rows.div_ceil(GEN_CHUNK);
        let slots: Vec<std::sync::Mutex<Vec<Vec<Value>>>> = (0..chunk_count)
            .map(|_| std::sync::Mutex::new(Vec::new()))
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let fill = |_worker: usize| loop {
            let chunk = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if chunk >= chunk_count {
                break;
            }
            let mut rng = StdRng::seed_from_u64(splitmix64(seed ^ (chunk as u64 + 1)));
            let count = GEN_CHUNK.min(rows - chunk * GEN_CHUNK);
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                out.push(self.sample_row(&model, &mut rng));
            }
            *slots[chunk].lock().expect("chunk slot poisoned") = out;
        };
        if workers <= 1 || chunk_count <= 1 {
            fill(0);
        } else {
            std::thread::scope(|scope| {
                for worker in 0..workers.min(chunk_count) {
                    scope.spawn(move || fill(worker));
                }
            });
        }
        let table = Table::from_rows(
            self.schema(),
            slots
                .into_iter()
                .flat_map(|slot| slot.into_inner().expect("chunk slot poisoned")),
        )
        .expect("generated rows match schema");
        self.dataset(table)
    }

    /// The spec's schema: dimension columns (strings) first, then
    /// targets (floats).
    fn schema(&self) -> Schema {
        let mut fields: Vec<Field> = self
            .dims
            .iter()
            .map(|d| Field::required(&d.name, ColumnType::Str))
            .collect();
        fields.extend(
            self.targets
                .iter()
                .map(|t| Field::required(&t.name, ColumnType::Float)),
        );
        Schema::new(fields).expect("spec column names are unique")
    }

    /// Derive the sampling model, consuming the effect draws from `rng`
    /// in the historical order (targets outer, dimensions inner, values
    /// innermost — [`SynthSpec::generate`]'s byte-stability depends on
    /// it).
    fn model(&self, rng: &mut StdRng) -> SynthModel {
        // Per-dimension categorical distributions (Zipf-ish by rank).
        let dim_cdfs: Vec<Vec<f64>> = self
            .dims
            .iter()
            .map(|dim| {
                let raw: Vec<f64> = (0..dim.values.len())
                    .map(|rank| 1.0 / ((rank + 1) as f64).powf(dim.skew))
                    .collect();
                let total: f64 = raw.iter().sum();
                // Cumulative distribution for sampling.
                let mut acc = 0.0;
                raw.iter()
                    .map(|w| {
                        acc += w / total;
                        acc
                    })
                    .collect()
            })
            .collect();

        // Per-(target, dimension, value) additive effects, scaled by the
        // target's per-dimension weights.
        let effects: Vec<Vec<Vec<f64>>> = self
            .targets
            .iter()
            .map(|target| {
                self.dims
                    .iter()
                    .enumerate()
                    .map(|(d, dim)| {
                        let weight = target.weight(d);
                        (0..dim.values.len())
                            .map(|_| rng.gen_range(-1.0..1.0) * target.effect_scale * weight)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        SynthModel { dim_cdfs, effects }
    }

    /// Sample one row: a dimension-code draw per dimension, then per
    /// target one gaussian residual — the exact historical draw order.
    fn sample_row(&self, model: &SynthModel, rng: &mut impl Rng) -> Vec<Value> {
        let codes: Vec<usize> = model
            .dim_cdfs
            .iter()
            .map(|cdf| {
                let x: f64 = rng.gen();
                cdf.iter().position(|&c| x <= c).unwrap_or(cdf.len() - 1)
            })
            .collect();
        let mut row: Vec<Value> = codes
            .iter()
            .zip(&self.dims)
            .map(|(&code, dim)| Value::str(&dim.values[code]))
            .collect();
        for (t, target) in self.targets.iter().enumerate() {
            let effect: f64 = codes
                .iter()
                .enumerate()
                .map(|(d, &code)| model.effects[t][d][code])
                .sum();
            let noise = gaussian(rng) * target.noise;
            let value = (target.base + effect + noise).clamp(target.min, target.max);
            row.push(Value::Float(value));
        }
        row
    }

    /// Wrap a finished table in the dataset envelope.
    fn dataset(&self, table: Table) -> GeneratedDataset {
        GeneratedDataset {
            name: self.name.clone(),
            table,
            dims: self.dims.iter().map(|d| d.name.clone()).collect(),
            targets: self.targets.iter().map(|t| t.name.clone()).collect(),
        }
    }
}

/// Standard normal sample via Box–Muller (avoids a distribution crate).
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SynthSpec {
        SynthSpec {
            name: "test".to_string(),
            dims: vec![
                DimSpec::synthetic("a", "a", 4, 0.8),
                DimSpec::named("b", &["x", "y"]),
            ],
            targets: vec![TargetSpec::new("t", 50.0, 10.0, 2.0, (0.0, 100.0))],
            rows: 500,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = spec().generate(7, 1.0);
        let b = spec().generate(7, 1.0);
        assert_eq!(a.table.len(), b.table.len());
        for (ra, rb) in a.table.iter_rows().zip(b.table.iter_rows()) {
            assert_eq!(ra, rb);
        }
        let c = spec().generate(8, 1.0);
        let differs = a
            .table
            .iter_rows()
            .zip(c.table.iter_rows())
            .any(|(x, y)| x != y);
        assert!(differs);
    }

    #[test]
    fn scale_controls_rows() {
        assert_eq!(spec().generate(1, 0.1).table.len(), 50);
        assert_eq!(spec().generate(1, 2.0).table.len(), 1000);
        assert_eq!(spec().generate(1, 0.0).table.len(), 1);
    }

    #[test]
    fn skew_concentrates_mass() {
        let data = spec().generate(3, 1.0);
        let col = data.table.column_by_name("a").unwrap();
        let mut counts = std::collections::HashMap::new();
        for row in 0..data.table.len() {
            *counts.entry(col.value(row).to_string()).or_insert(0usize) += 1;
        }
        // Rank-0 value should be the most frequent under skew 0.8.
        let a0 = counts.get("a0").copied().unwrap_or(0);
        assert!(counts.values().all(|&c| c <= a0), "counts: {counts:?}");
    }

    #[test]
    fn targets_respect_clamp() {
        let data = spec().generate(5, 1.0);
        let idx = data.table.schema().index_of("t").unwrap();
        for row in 0..data.table.len() {
            let v = data.table.value(row, idx).as_f64().unwrap();
            assert!((0.0..=100.0).contains(&v));
        }
    }

    #[test]
    fn dimension_effects_shape_target() {
        // Group means by dimension value must differ by more than noise:
        // otherwise summaries would be vacuous.
        let data = spec().generate(11, 2.0);
        let a = data.table.schema().index_of("a").unwrap();
        let t = data.table.schema().index_of("t").unwrap();
        let mut sums: std::collections::HashMap<String, (f64, usize)> = Default::default();
        for row in 0..data.table.len() {
            let key = data.table.value(row, a).to_string();
            let entry = sums.entry(key).or_insert((0.0, 0));
            entry.0 += data.table.value(row, t).as_f64().unwrap();
            entry.1 += 1;
        }
        let means: Vec<f64> = sums.values().map(|&(s, n)| s / n as f64).collect();
        let spread = means.iter().cloned().fold(f64::MIN, f64::max)
            - means.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 3.0, "group means too flat: {means:?}");
    }

    #[test]
    fn gaussian_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn approx_bytes_scales_with_rows() {
        let small = spec().generate(1, 0.5);
        let large = spec().generate(1, 1.0);
        assert!(large.approx_bytes() > small.approx_bytes());
    }
}
