//! Differential tests of the indexed solver hot path.
//!
//! Three invariants protect the indexed-kernel and parallel-search
//! optimizations:
//!
//! 1. The catalog's CSR inverted-index kernel
//!    (`gain_indexed`/`apply_indexed`/`revert_frame`) agrees with the
//!    original full-scan implementations (`gain_of`/`apply_fact`/`revert`)
//!    on random relations, and reverts are bit-exact. The unrolled
//!    (auto-vectorizable) `gain_indexed` sweep additionally agrees with
//!    the single-accumulator `gain_indexed_scalar` ground truth to 1e-9
//!    (its four partial sums reassociate the additions).
//! 2. The parallel exact search returns the same speech as the sequential
//!    search — utility, chosen facts, and timeout flag — for any worker
//!    count, on both sides of the adaptive fan-out gate and for scoped
//!    as well as custom executors.

use proptest::prelude::*;

use vqs_core::prelude::*;

/// A small random relation (2 dimensions, bounded cardinalities) plus the
/// per-row targets, generated from plain proptest collections so failures
/// replay deterministically.
fn arb_relation() -> impl Strategy<Value = EncodedRelation> {
    (
        prop::collection::vec((0u32..4, 0u32..3), 1..40),
        0.0f64..30.0,
    )
        .prop_map(|(rows, prior)| {
            let data: Vec<(Vec<String>, f64)> = rows
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| {
                    (
                        vec![format!("a{a}"), format!("b{b}")],
                        ((i * 7919) % 97) as f64,
                    )
                })
                .collect();
            let row_refs: Vec<(Vec<&str>, f64)> = data
                .iter()
                .map(|(v, t)| (v.iter().map(String::as_str).collect(), *t))
                .collect();
            EncodedRelation::from_rows(&["a", "b"], "y", row_refs, Prior::Constant(prior)).unwrap()
        })
}

proptest! {
    // Indexed gains equal full-scan gains for every candidate fact, both
    // from the initial state and after a couple of facts were applied.
    #[test]
    fn indexed_gain_matches_full_scan(relation in arb_relation(), picks in prop::collection::vec(0usize..64, 0..3)) {
        let catalog = FactCatalog::build(&relation, &[0, 1], 2).unwrap();
        let mut state = ResidualState::new(&relation);
        let mut arena = UndoArena::new();
        for pick in picks {
            let id = pick % catalog.len();
            let (rows, devs) = (catalog.fact_rows(id), catalog.fact_devs(id));
            state.apply_indexed(rows, devs, &mut arena);
        }
        for (id, fact) in catalog.facts().iter().enumerate() {
            let indexed = state.gain_indexed(catalog.fact_rows(id), catalog.fact_devs(id));
            let scan = state.gain_of(&relation, fact);
            prop_assert!((indexed - scan).abs() < 1e-9, "fact {id}: {indexed} vs {scan}");
        }
    }

    // Applying through the index mutates residuals exactly like the
    // full-scan apply, and the arena revert restores the prior state
    // bit-for-bit (residuals *and* running total).
    #[test]
    fn indexed_apply_and_revert_match_full_scan(relation in arb_relation(), picks in prop::collection::vec(0usize..64, 1..5)) {
        let catalog = FactCatalog::build(&relation, &[0, 1], 2).unwrap();
        let mut scan = ResidualState::new(&relation);
        let mut indexed = ResidualState::new(&relation);
        let mut arena = UndoArena::new();
        let mut checkpoints: Vec<(Vec<f64>, f64)> = Vec::new();
        for pick in &picks {
            let id = pick % catalog.len();
            checkpoints.push((indexed.residuals().to_vec(), indexed.total()));
            let fact = catalog.fact(id).clone();
            let (scan_gain, _) = scan.apply_fact(&relation, &fact);
            let indexed_gain =
                indexed.apply_indexed(catalog.fact_rows(id), catalog.fact_devs(id), &mut arena);
            prop_assert!((indexed_gain - scan_gain).abs() < 1e-9);
            for row in 0..relation.len() {
                prop_assert!((indexed.residual(row) - scan.residual(row)).abs() < 1e-9);
            }
            prop_assert!((indexed.total() - scan.total()).abs() < 1e-9);
        }
        // Unwind in LIFO order: every checkpoint must be restored exactly.
        prop_assert_eq!(arena.depth(), picks.len());
        while let Some((residuals, total)) = checkpoints.pop() {
            indexed.revert_frame(&mut arena);
            prop_assert_eq!(indexed.residuals(), residuals.as_slice());
            prop_assert_eq!(indexed.total().to_bits(), total.to_bits());
        }
        prop_assert_eq!(arena.depth(), 0);
    }

    // The unrolled four-accumulator gain sweep agrees with the
    // single-accumulator scalar ground truth on every fact, from the
    // initial residuals and after random applies.
    #[test]
    fn vectorized_gain_sweep_matches_scalar_sweep(relation in arb_relation(), picks in prop::collection::vec(0usize..64, 0..3)) {
        let catalog = FactCatalog::build(&relation, &[0, 1], 2).unwrap();
        let mut state = ResidualState::new(&relation);
        let mut arena = UndoArena::new();
        for pick in picks {
            let id = pick % catalog.len();
            state.apply_indexed(catalog.fact_rows(id), catalog.fact_devs(id), &mut arena);
        }
        for id in 0..catalog.len() {
            let unrolled = state.gain_indexed(catalog.fact_rows(id), catalog.fact_devs(id));
            let scalar = state.gain_indexed_scalar(catalog.fact_rows(id), catalog.fact_devs(id));
            prop_assert!((unrolled - scalar).abs() < 1e-9, "fact {id}: {unrolled} vs {scalar}");
        }
    }

    // The parallel exact search is byte-identical to the sequential one:
    // same utility bits, same chosen facts, same timeout flag, for
    // workers ∈ {0, 1, 2, 8} — with the fan-out forced *on*
    // (`fan_out_threshold: 0`) so the parallel machinery actually runs,
    // and forced *off* (`usize::MAX`) so the adaptive gate's sequential
    // route is provably the same search. The default threshold sits
    // between those extremes, so both sides of the gate boundary are
    // covered.
    #[test]
    fn parallel_exact_equals_sequential(relation in arb_relation(), max_facts in 1usize..4) {
        let catalog = FactCatalog::build(&relation, &[0, 1], 2).unwrap();
        let problem = Problem::new(&relation, &catalog, max_facts).unwrap();
        let sequential = ExactSummarizer::paper().summarize(&problem).unwrap();
        for workers in [0usize, 1, 2, 8] {
            for fan_out_threshold in [0usize, usize::MAX] {
                let parallel = ExactSummarizer {
                    workers,
                    fan_out_threshold,
                    ..ExactSummarizer::paper()
                }
                .summarize(&problem)
                .unwrap();
                prop_assert_eq!(
                    parallel.utility.to_bits(),
                    sequential.utility.to_bits(),
                    "workers {} threshold {}", workers, fan_out_threshold
                );
                prop_assert_eq!(
                    parallel.speech.facts(),
                    sequential.speech.facts(),
                    "workers {} threshold {}", workers, fan_out_threshold
                );
                prop_assert_eq!(parallel.timed_out, sequential.timed_out);
                prop_assert_eq!(parallel.base_error.to_bits(), sequential.base_error.to_bits());
            }
        }
    }

    // The indexed exact search still matches the brute-force optimum.
    #[test]
    fn indexed_exact_matches_brute_force(relation in arb_relation()) {
        let catalog = FactCatalog::build(&relation, &[0, 1], 2).unwrap();
        let problem = Problem::new(&relation, &catalog, 2).unwrap();
        let exact = ExactSummarizer::paper().summarize(&problem).unwrap();
        let brute = BruteForceSummarizer.summarize(&problem).unwrap();
        prop_assert!((exact.utility - brute.utility).abs() < 1e-9);
    }
}

/// The indexed kernel touches exactly the in-scope rows: solving with the
/// exact summarizer reports index row touches but no scan-based gain
/// touches from the DFS (the single-fact utility pass still scans).
#[test]
fn exact_search_runs_on_the_index() {
    let data: Vec<(Vec<&str>, f64)> = (0..60)
        .map(|i| {
            let a = ["x", "y", "z"][i % 3];
            let b = ["p", "q"][i % 2];
            (vec![a, b], (i % 13) as f64)
        })
        .collect();
    let relation = EncodedRelation::from_rows(&["a", "b"], "y", data, Prior::GlobalMean).unwrap();
    let catalog = FactCatalog::build(&relation, &[0, 1], 2).unwrap();
    let problem = Problem::new(&relation, &catalog, 3).unwrap();
    let summary = ExactSummarizer::paper().summarize(&problem).unwrap();
    assert!(summary.instrumentation.index_row_touches > 0);
    assert!(summary.instrumentation.nodes_expanded > 0);
}
