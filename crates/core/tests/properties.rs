//! Property-based tests of the model layer: scopes, expectation models
//! and the utility function's formal guarantees.

use proptest::prelude::*;

use vqs_core::prelude::*;

fn arb_scope_pairs() -> impl Strategy<Value = Vec<(usize, u32)>> {
    prop::collection::btree_map(0usize..6, 0u32..4, 0..4).prop_map(|map| map.into_iter().collect())
}

proptest! {
    #[test]
    fn scope_pairs_roundtrip(pairs in arb_scope_pairs()) {
        let scope = Scope::from_pairs(&pairs).unwrap();
        prop_assert_eq!(scope.pairs(), pairs.clone());
        prop_assert_eq!(scope.len(), pairs.len());
        for (d, v) in &pairs {
            prop_assert!(scope.restricts(*d));
            prop_assert_eq!(scope.value_for(*d), Some(*v));
        }
    }

    #[test]
    fn scope_subset_is_a_partial_order(a in arb_scope_pairs(), b in arb_scope_pairs()) {
        let sa = Scope::from_pairs(&a).unwrap();
        let sb = Scope::from_pairs(&b).unwrap();
        // Reflexivity.
        prop_assert!(sa.subset_of(&sa));
        // Antisymmetry.
        if sa.subset_of(&sb) && sb.subset_of(&sa) {
            prop_assert_eq!(&sa, &sb);
        }
        // The empty scope is a subset of everything.
        prop_assert!(Scope::all().subset_of(&sa));
    }

    #[test]
    fn subset_scopes_cover_superset_rows(a in arb_scope_pairs(), extra in 0usize..6, value in 0u32..4) {
        // If sa ⊆ sb then every row matching sb also matches sa.
        let sa = Scope::from_pairs(&a).unwrap();
        let mut b = a.clone();
        if !b.iter().any(|&(d, _)| d == extra) {
            b.push((extra, value));
        }
        let sb = Scope::from_pairs(&b).unwrap();
        prop_assert!(sa.subset_of(&sb));

        // Construct a relation whose first row matches sb exactly.
        let dims: Vec<String> = (0..6).map(|d| format!("d{d}")).collect();
        let dim_refs: Vec<&str> = dims.iter().map(String::as_str).collect();
        let mut row = vec!["v0"; 6];
        let values = ["v0", "v1", "v2", "v3"];
        for &(d, v) in &b {
            row[d] = values[v as usize];
        }
        let relation = EncodedRelation::from_rows(
            &dim_refs,
            "y",
            vec![(row.clone(), 1.0)],
            Prior::Constant(0.0),
        )
        .unwrap();
        // Re-encode both scopes against this relation's dictionaries.
        let encode = |pairs: &[(usize, u32)]| {
            let encoded: Vec<(usize, u32)> = pairs
                .iter()
                .map(|&(d, v)| {
                    let code = relation.dims()[d]
                        .code_of(values[v as usize])
                        .unwrap_or(0);
                    (d, code)
                })
                .collect();
            Scope::from_pairs(&encoded).unwrap()
        };
        let (ra, rb) = (encode(&a), encode(&b));
        if rb.matches_row(&relation, 0) {
            prop_assert!(ra.matches_row(&relation, 0));
        }
    }

    #[test]
    fn expectations_stay_within_value_hull(
        values in prop::collection::vec(0.0f64..100.0, 1..5),
        prior in 0.0f64..100.0,
        actual in 0.0f64..100.0,
    ) {
        // Every model's expectation lies within the hull of the proposed
        // values and the prior.
        let relation = EncodedRelation::from_rows(
            &["d"],
            "y",
            vec![(vec!["x"], actual)],
            Prior::Constant(prior),
        )
        .unwrap();
        let facts: Vec<Fact> = values
            .iter()
            .map(|&v| Fact::new(Scope::from_pairs(&[(0, 0)]).unwrap(), v, 1))
            .collect();
        let lo = values
            .iter()
            .chain(std::iter::once(&prior))
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let hi = values
            .iter()
            .chain(std::iter::once(&prior))
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        for model in ExpectationModel::ALL {
            let e = model.expected_value(&relation, 0, &facts, prior, actual);
            prop_assert!(e >= lo - 1e-9 && e <= hi + 1e-9, "{model:?}: {e} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn closest_model_bounds(
        values in prop::collection::vec(0.0f64..100.0, 1..5),
        prior in 0.0f64..100.0,
        actual in 0.0f64..100.0,
    ) {
        // Sound orderings among the models: the closest pick dominates the
        // farthest pick (same choice set), and hearing facts can never
        // hurt a closest-model listener relative to the prior alone.
        // (Averaging models are incomparable point-wise: an average of two
        // off values can land closer than any single proposed value.)
        let relation = EncodedRelation::from_rows(
            &["d"],
            "y",
            vec![(vec!["x"], actual)],
            Prior::Constant(prior),
        )
        .unwrap();
        let facts: Vec<Fact> = values
            .iter()
            .map(|&v| Fact::new(Scope::from_pairs(&[(0, 0)]).unwrap(), v, 1))
            .collect();
        let closest = speech_error_under(&relation, &facts, ExpectationModel::ClosestRelevant);
        let farthest =
            speech_error_under(&relation, &facts, ExpectationModel::FarthestRelevant);
        prop_assert!(closest <= farthest + 1e-9);
        prop_assert!(closest <= (prior - actual).abs() + 1e-9);
        // Against every proposed value individually, closest wins.
        for &v in &values {
            prop_assert!(closest <= (v - actual).abs() + 1e-9);
        }
    }

    #[test]
    fn utility_bounded_by_base_error(
        targets in prop::collection::vec(0.0f64..50.0, 4..24),
        prior in 0.0f64..50.0,
    ) {
        let rows: Vec<(Vec<String>, f64)> = targets
            .iter()
            .enumerate()
            .map(|(i, &t)| (vec![format!("v{}", i % 4)], t))
            .collect();
        let row_refs: Vec<(Vec<&str>, f64)> = rows
            .iter()
            .map(|(v, t)| (v.iter().map(String::as_str).collect(), *t))
            .collect();
        let relation =
            EncodedRelation::from_rows(&["d"], "y", row_refs, Prior::Constant(prior)).unwrap();
        let catalog = FactCatalog::build(&relation, &[0], 1).unwrap();
        let problem = Problem::new(&relation, &catalog, 3).unwrap();
        let summary = GreedySummarizer::base().summarize(&problem).unwrap();
        prop_assert!(summary.utility >= -1e-9);
        prop_assert!(summary.utility <= summary.base_error + 1e-9);
        prop_assert!(summary.scaled_utility() <= 1.0 + 1e-9);
    }

    #[test]
    fn speech_deduplication_preserves_utility(
        targets in prop::collection::vec(0.0f64..50.0, 4..16),
    ) {
        let rows: Vec<(Vec<String>, f64)> = targets
            .iter()
            .enumerate()
            .map(|(i, &t)| (vec![format!("v{}", i % 3)], t))
            .collect();
        let row_refs: Vec<(Vec<&str>, f64)> = rows
            .iter()
            .map(|(v, t)| (v.iter().map(String::as_str).collect(), *t))
            .collect();
        let relation =
            EncodedRelation::from_rows(&["d"], "y", row_refs, Prior::Constant(0.0)).unwrap();
        let catalog = FactCatalog::build(&relation, &[0], 1).unwrap();
        let fact = catalog.fact(0).clone();
        let single = Speech::new(vec![fact.clone()]);
        let doubled = Speech::new(vec![fact.clone(), fact]);
        prop_assert_eq!(doubled.len(), 1);
        prop_assert_eq!(single.utility(&relation), doubled.utility(&relation));
    }
}
