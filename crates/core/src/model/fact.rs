//! Facts and their scopes (Definition 2 of the paper).

use std::fmt;

use crate::error::{CoreError, Result};
use crate::model::relation::EncodedRelation;

/// A fact scope: an assignment of values to a subset of dimension columns.
///
/// Stored compactly as a bitmask of restricted dimensions plus the value
/// codes for those dimensions in ascending dimension order. Supports up to
/// 32 dimensions, far beyond the handful the paper's configurations use.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Scope {
    mask: u32,
    values: Vec<u32>,
}

impl Scope {
    /// The empty scope (restricts nothing; every row is within scope).
    pub fn all() -> Scope {
        Scope {
            mask: 0,
            values: Vec::new(),
        }
    }

    /// Build a scope from `(dimension index, value code)` pairs.
    pub fn from_pairs(pairs: &[(usize, u32)]) -> Result<Scope> {
        let mut sorted = pairs.to_vec();
        sorted.sort_by_key(|&(d, _)| d);
        let mut mask = 0u32;
        let mut values = Vec::with_capacity(sorted.len());
        for &(d, v) in &sorted {
            if d >= 32 {
                return Err(CoreError::DimensionOutOfRange { dim: d, dims: 32 });
            }
            let bit = 1u32 << d;
            if mask & bit != 0 {
                return Err(CoreError::InvalidProblem {
                    detail: format!("dimension {d} restricted twice in one scope"),
                });
            }
            mask |= bit;
            values.push(v);
        }
        Ok(Scope { mask, values })
    }

    /// Bitmask of restricted dimensions.
    #[inline]
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Number of restricted dimensions.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the scope restricts nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mask == 0
    }

    /// Whether dimension `d` is restricted.
    #[inline]
    pub fn restricts(&self, d: usize) -> bool {
        d < 32 && self.mask & (1 << d) != 0
    }

    /// Value code required for dimension `d`, if restricted.
    pub fn value_for(&self, d: usize) -> Option<u32> {
        if !self.restricts(d) {
            return None;
        }
        let bit = 1u32 << d;
        // Position among set bits below `d`.
        let rank = (self.mask & (bit - 1)).count_ones() as usize;
        Some(self.values[rank])
    }

    /// `(dimension, value)` pairs in ascending dimension order.
    pub fn pairs(&self) -> Vec<(usize, u32)> {
        let mut out = Vec::with_capacity(self.values.len());
        let mut mask = self.mask;
        let mut i = 0;
        while mask != 0 {
            let d = mask.trailing_zeros() as usize;
            out.push((d, self.values[i]));
            i += 1;
            mask &= mask - 1;
        }
        out
    }

    /// Definition 2's "within scope": row `row` of `relation` matches when
    /// the row agrees with every restricted dimension.
    #[inline]
    pub fn matches_row(&self, relation: &EncodedRelation, row: usize) -> bool {
        for (d, v) in self.pairs() {
            if relation.code(d, row) != v {
                return false;
            }
        }
        true
    }

    /// Set-inclusion of scopes: `self ⊆ other` iff every `(dim, value)`
    /// assignment of `self` also appears in `other`. A smaller scope covers
    /// *more* rows; the paper writes `D ⊆ Dr` for row matching.
    pub fn subset_of(&self, other: &Scope) -> bool {
        if self.mask & other.mask != self.mask {
            return false;
        }
        self.pairs()
            .iter()
            .all(|&(d, v)| other.value_for(d) == Some(v))
    }

    /// Render the scope with dimension names and values from `relation`.
    pub fn describe(&self, relation: &EncodedRelation) -> String {
        if self.is_empty() {
            return "overall".to_string();
        }
        let parts: Vec<String> = self
            .pairs()
            .iter()
            .map(|&(d, v)| {
                let dim = &relation.dims()[d];
                let value = dim
                    .values
                    .get(v as usize)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("#{v}"));
                format!("{}={}", dim.name, value)
            })
            .collect();
        parts.join(" ∧ ")
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("{}");
        }
        f.write_str("{")?;
        for (i, (d, v)) in self.pairs().into_iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "d{d}={v}")?;
        }
        f.write_str("}")
    }
}

/// A fact: a scope plus the typical (average) target value of the rows
/// within scope (Definition 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Fact {
    /// Scope of the fact.
    pub scope: Scope,
    /// Average target value over rows within scope.
    pub value: f64,
    /// Number of rows within scope (support).
    pub support: usize,
}

impl Fact {
    /// Build a fact from scope and typical value.
    pub fn new(scope: Scope, value: f64, support: usize) -> Fact {
        Fact {
            scope,
            value,
            support,
        }
    }

    /// Compute the fact for `scope` over `relation` (average of the rows
    /// within scope). Returns `None` when no row matches.
    pub fn for_scope(relation: &EncodedRelation, scope: Scope) -> Option<Fact> {
        let mut sum = 0.0;
        let mut count = 0usize;
        for row in 0..relation.len() {
            if scope.matches_row(relation, row) {
                sum += relation.target(row);
                count += 1;
            }
        }
        (count > 0).then(|| Fact::new(scope, sum / count as f64, count))
    }

    /// Render "the average `<target>` for `<scope>` is `<value>`".
    pub fn describe(&self, relation: &EncodedRelation) -> String {
        format!(
            "average {} for {} is {:.2}",
            relation.target_name(),
            self.scope.describe(relation),
            self.value
        )
    }
}

/// Identifier of a fact within a [`crate::enumeration::FactCatalog`].
pub type FactId = usize;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::relation::Prior;

    fn relation() -> EncodedRelation {
        EncodedRelation::from_rows(
            &["region", "season"],
            "delay",
            vec![
                (vec!["East", "Winter"], 20.0),
                (vec!["South", "Winter"], 10.0),
                (vec!["South", "Summer"], 20.0),
                (vec!["East", "Summer"], 0.0),
            ],
            Prior::Constant(0.0),
        )
        .unwrap()
    }

    #[test]
    fn scope_pairs_roundtrip() {
        let scope = Scope::from_pairs(&[(1, 3), (0, 7)]).unwrap();
        assert_eq!(scope.pairs(), vec![(0, 7), (1, 3)]);
        assert_eq!(scope.value_for(0), Some(7));
        assert_eq!(scope.value_for(1), Some(3));
        assert_eq!(scope.value_for(2), None);
        assert_eq!(scope.len(), 2);
    }

    #[test]
    fn duplicate_dimension_rejected() {
        assert!(Scope::from_pairs(&[(0, 1), (0, 2)]).is_err());
        assert!(Scope::from_pairs(&[(40, 1)]).is_err());
    }

    #[test]
    fn row_matching() {
        let r = relation();
        let winter = Scope::from_pairs(&[(1, r.dims()[1].code_of("Winter").unwrap())]).unwrap();
        assert!(winter.matches_row(&r, 0));
        assert!(winter.matches_row(&r, 1));
        assert!(!winter.matches_row(&r, 2));
        assert!(Scope::all().matches_row(&r, 3));
    }

    #[test]
    fn subset_semantics() {
        let coarse = Scope::from_pairs(&[(0, 1)]).unwrap();
        let fine = Scope::from_pairs(&[(0, 1), (1, 2)]).unwrap();
        let other = Scope::from_pairs(&[(0, 2), (1, 2)]).unwrap();
        assert!(coarse.subset_of(&fine));
        assert!(!fine.subset_of(&coarse));
        assert!(!coarse.subset_of(&other));
        assert!(Scope::all().subset_of(&coarse));
        assert!(fine.subset_of(&fine));
    }

    #[test]
    fn fact_for_scope_averages() {
        let r = relation();
        let south = Scope::from_pairs(&[(0, r.dims()[0].code_of("South").unwrap())]).unwrap();
        let fact = Fact::for_scope(&r, south).unwrap();
        assert_eq!(fact.value, 15.0);
        assert_eq!(fact.support, 2);
        let overall = Fact::for_scope(&r, Scope::all()).unwrap();
        assert_eq!(overall.value, 12.5);
        assert_eq!(overall.support, 4);
    }

    #[test]
    fn fact_for_empty_match_is_none() {
        let r = relation();
        // Value code 9 does not exist.
        let scope = Scope {
            mask: 1,
            values: vec![9],
        };
        assert!(Fact::for_scope(&r, scope).is_none());
    }

    #[test]
    fn describe_is_readable() {
        let r = relation();
        let winter = Scope::from_pairs(&[(1, r.dims()[1].code_of("Winter").unwrap())]).unwrap();
        assert_eq!(winter.describe(&r), "season=Winter");
        let fact = Fact::for_scope(&r, winter).unwrap();
        assert!(fact.describe(&r).contains("delay"));
        assert!(fact.describe(&r).contains("15.00"));
        assert_eq!(Scope::all().describe(&r), "overall");
    }

    #[test]
    fn display_compact() {
        let scope = Scope::from_pairs(&[(0, 7), (2, 1)]).unwrap();
        assert_eq!(scope.to_string(), "{d0=7, d2=1}");
        assert_eq!(Scope::all().to_string(), "{}");
    }
}
