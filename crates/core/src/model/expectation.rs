//! User expectation models (Definition 4 and the Fig. 7 alternatives).
//!
//! After hearing a speech, a listener forms an expectation for each row.
//! The paper models listeners as picking, among the typical values of the
//! facts relevant to a row (plus their prior), the value *closest* to the
//! actual one — a listener with enough prior knowledge to weigh conflicting
//! facts correctly. §VIII-C compares this model against three alternatives
//! on crowd workers; all four are implemented here so the user-study
//! reproduction can run the same comparison.

use crate::model::fact::Fact;
use crate::model::relation::EncodedRelation;

/// How a listener resolves multiple relevant facts into one expectation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExpectationModel {
    /// Definition 4: the relevant value (prior included) closest to the
    /// actual value. The model used by all optimization algorithms.
    ClosestRelevant,
    /// Adversarial variant: the relevant fact value farthest from the
    /// actual value.
    FarthestRelevant,
    /// Average of the values proposed by relevant ("within scope") facts.
    AverageRelevant,
    /// Average of all values in the speech, relevant or not.
    AverageAll,
}

impl ExpectationModel {
    /// All models, in the order of Fig. 7's legend.
    pub const ALL: [ExpectationModel; 4] = [
        ExpectationModel::FarthestRelevant,
        ExpectationModel::AverageRelevant,
        ExpectationModel::ClosestRelevant,
        ExpectationModel::AverageAll,
    ];

    /// Display label matching the paper's Fig. 7.
    pub fn label(&self) -> &'static str {
        match self {
            ExpectationModel::ClosestRelevant => "Closest",
            ExpectationModel::FarthestRelevant => "Farthest",
            ExpectationModel::AverageRelevant => "Avg. Scope",
            ExpectationModel::AverageAll => "Avg. All",
        }
    }

    /// Expected value for one row after hearing `facts`.
    ///
    /// `prior` is the listener's prior expectation for the row; `actual`
    /// is the row's true target value (used only by the clairvoyant
    /// closest/farthest models). When no fact is relevant, every model
    /// falls back to the prior — except `AverageAll`, which averages the
    /// whole speech whenever it is non-empty.
    pub fn expected_value(
        &self,
        relation: &EncodedRelation,
        row: usize,
        facts: &[Fact],
        prior: f64,
        actual: f64,
    ) -> f64 {
        let relevant = facts
            .iter()
            .filter(|f| f.scope.matches_row(relation, row))
            .map(|f| f.value);
        match self {
            ExpectationModel::ClosestRelevant => relevant
                .chain(std::iter::once(prior))
                .min_by(|a, b| (a - actual).abs().total_cmp(&(b - actual).abs()))
                .unwrap_or(prior),
            ExpectationModel::FarthestRelevant => {
                let mut iter = relevant.peekable();
                if iter.peek().is_none() {
                    prior
                } else {
                    iter.max_by(|a, b| (a - actual).abs().total_cmp(&(b - actual).abs()))
                        .unwrap_or(prior)
                }
            }
            ExpectationModel::AverageRelevant => {
                let values: Vec<f64> = relevant.collect();
                if values.is_empty() {
                    prior
                } else {
                    values.iter().sum::<f64>() / values.len() as f64
                }
            }
            ExpectationModel::AverageAll => {
                if facts.is_empty() {
                    prior
                } else {
                    facts.iter().map(|f| f.value).sum::<f64>() / facts.len() as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fact::Scope;
    use crate::model::relation::Prior;

    fn relation() -> EncodedRelation {
        EncodedRelation::from_rows(
            &["region", "season"],
            "delay",
            vec![
                (vec!["East", "Winter"], 20.0),
                (vec!["South", "Winter"], 10.0),
                (vec!["South", "Summer"], 20.0),
            ],
            Prior::Constant(0.0),
        )
        .unwrap()
    }

    fn facts(r: &EncodedRelation) -> Vec<Fact> {
        let winter = Scope::from_pairs(&[(1, r.dims()[1].code_of("Winter").unwrap())]).unwrap();
        let south = Scope::from_pairs(&[(0, r.dims()[0].code_of("South").unwrap())]).unwrap();
        vec![Fact::new(winter, 15.0, 2), Fact::new(south, 15.0, 2)]
    }

    #[test]
    fn closest_picks_best_relevant_or_prior() {
        let r = relation();
        let f = facts(&r);
        let model = ExpectationModel::ClosestRelevant;
        // Row 0 (East, Winter, 20): relevant {15}, prior 0 → 15.
        assert_eq!(model.expected_value(&r, 0, &f, 0.0, 20.0), 15.0);
        // Row with actual 10 and both facts relevant: {15, 15} vs prior 0 → 15.
        assert_eq!(model.expected_value(&r, 1, &f, 0.0, 10.0), 15.0);
        // A row whose actual is 2: prior 0 beats 15.
        assert_eq!(model.expected_value(&r, 1, &f, 0.0, 2.0), 0.0);
    }

    #[test]
    fn closest_falls_back_to_prior_without_facts() {
        let r = relation();
        let model = ExpectationModel::ClosestRelevant;
        assert_eq!(model.expected_value(&r, 0, &[], 7.0, 20.0), 7.0);
    }

    #[test]
    fn farthest_is_adversarial() {
        let r = relation();
        let winter = Scope::from_pairs(&[(1, r.dims()[1].code_of("Winter").unwrap())]).unwrap();
        let south = Scope::from_pairs(&[(0, r.dims()[0].code_of("South").unwrap())]).unwrap();
        let f = vec![Fact::new(winter, 18.0, 2), Fact::new(south, 5.0, 2)];
        // Row 1 (South, Winter, 10): relevant {18, 5}; farthest from 10 is 5?
        // |18-10| = 8, |5-10| = 5 → farthest is 18.
        assert_eq!(
            ExpectationModel::FarthestRelevant.expected_value(&r, 1, &f, 0.0, 10.0),
            18.0
        );
    }

    #[test]
    fn averages_differ_on_partially_relevant_speech() {
        let r = relation();
        let winter = Scope::from_pairs(&[(1, r.dims()[1].code_of("Winter").unwrap())]).unwrap();
        let summer = Scope::from_pairs(&[(1, r.dims()[1].code_of("Summer").unwrap())]).unwrap();
        let f = vec![Fact::new(winter, 12.0, 2), Fact::new(summer, 30.0, 1)];
        // Row 0 is Winter: only the winter fact is relevant.
        assert_eq!(
            ExpectationModel::AverageRelevant.expected_value(&r, 0, &f, 0.0, 20.0),
            12.0
        );
        // AverageAll mixes in the irrelevant summer fact.
        assert_eq!(
            ExpectationModel::AverageAll.expected_value(&r, 0, &f, 0.0, 20.0),
            21.0
        );
    }

    #[test]
    fn fallbacks_without_relevant_facts() {
        let r = relation();
        let summer = Scope::from_pairs(&[(1, r.dims()[1].code_of("Summer").unwrap())]).unwrap();
        let f = vec![Fact::new(summer, 30.0, 1)];
        // Row 0 is Winter — no relevant fact.
        assert_eq!(
            ExpectationModel::AverageRelevant.expected_value(&r, 0, &f, 3.0, 20.0),
            3.0
        );
        assert_eq!(
            ExpectationModel::FarthestRelevant.expected_value(&r, 0, &f, 3.0, 20.0),
            3.0
        );
        // AverageAll still averages the speech.
        assert_eq!(
            ExpectationModel::AverageAll.expected_value(&r, 0, &f, 3.0, 20.0),
            30.0
        );
    }

    #[test]
    fn labels_match_figure_seven() {
        let labels: Vec<&str> = ExpectationModel::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(
            labels,
            vec!["Farthest", "Avg. Scope", "Closest", "Avg. All"]
        );
    }
}
