//! Speeches: bounded sets of facts (Definition 3).

use std::fmt;

use crate::model::fact::Fact;
use crate::model::relation::EncodedRelation;
use crate::model::utility;

/// A speech — the facts selected for voice output.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Speech {
    facts: Vec<Fact>,
}

impl Speech {
    /// The empty speech.
    pub fn empty() -> Speech {
        Speech { facts: Vec::new() }
    }

    /// Build a speech from facts, dropping exact duplicates (a speech is a
    /// *set* of facts).
    pub fn new(facts: Vec<Fact>) -> Speech {
        let mut unique: Vec<Fact> = Vec::with_capacity(facts.len());
        for fact in facts {
            if !unique
                .iter()
                .any(|f| f.scope == fact.scope && f.value == fact.value)
            {
                unique.push(fact);
            }
        }
        Speech { facts: unique }
    }

    /// The facts, in selection order.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// Speech length (Definition 3): the number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True for the empty speech.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Accumulated deviation `D(F)` over `relation`.
    pub fn error(&self, relation: &EncodedRelation) -> f64 {
        utility::speech_error(relation, &self.facts)
    }

    /// Utility `U(F)` over `relation`.
    pub fn utility(&self, relation: &EncodedRelation) -> f64 {
        utility::utility(relation, &self.facts)
    }

    /// Utility scaled into `[0, 1]` by the base error (the paper's Fig. 3
    /// reports "utility (scaled)" per problem instance).
    pub fn scaled_utility(&self, relation: &EncodedRelation) -> f64 {
        let base = utility::base_error(relation);
        if base == 0.0 {
            1.0
        } else {
            self.utility(relation) / base
        }
    }

    /// Human-readable rendering with dimension names resolved against
    /// `relation`.
    pub fn describe(&self, relation: &EncodedRelation) -> String {
        if self.facts.is_empty() {
            return "(empty speech)".to_string();
        }
        self.facts
            .iter()
            .map(|f| f.describe(relation))
            .collect::<Vec<_>>()
            .join("; ")
    }
}

impl fmt::Display for Speech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Speech[{} facts]", self.facts.len())
    }
}

impl FromIterator<Fact> for Speech {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Self {
        Speech::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fact::Scope;
    use crate::model::relation::Prior;

    fn relation() -> EncodedRelation {
        EncodedRelation::from_rows(
            &["region"],
            "delay",
            vec![(vec!["East"], 20.0), (vec!["West"], 0.0)],
            Prior::Constant(0.0),
        )
        .unwrap()
    }

    #[test]
    fn deduplicates_facts() {
        let fact = Fact::new(Scope::all(), 10.0, 2);
        let speech = Speech::new(vec![fact.clone(), fact.clone()]);
        assert_eq!(speech.len(), 1);
    }

    #[test]
    fn utility_and_error() {
        let r = relation();
        let east = Scope::from_pairs(&[(0, 0)]).unwrap();
        let speech = Speech::new(vec![Fact::new(east, 20.0, 1)]);
        assert_eq!(speech.error(&r), 0.0);
        assert_eq!(speech.utility(&r), 20.0);
        assert_eq!(speech.scaled_utility(&r), 1.0);
    }

    #[test]
    fn scaled_utility_of_perfect_prior() {
        let r = EncodedRelation::from_rows(
            &["region"],
            "delay",
            vec![(vec!["East"], 5.0)],
            Prior::Constant(5.0),
        )
        .unwrap();
        // Base error 0: any speech is trivially perfect.
        assert_eq!(Speech::empty().scaled_utility(&r), 1.0);
    }

    #[test]
    fn describe_lists_facts() {
        let r = relation();
        let speech = Speech::new(vec![Fact::new(Scope::all(), 10.0, 2)]);
        assert!(speech.describe(&r).contains("overall"));
        assert_eq!(Speech::empty().describe(&r), "(empty speech)");
    }

    #[test]
    fn from_iterator_collects() {
        let speech: Speech = vec![Fact::new(Scope::all(), 1.0, 1)].into_iter().collect();
        assert_eq!(speech.len(), 1);
        assert_eq!(speech.to_string(), "Speech[1 facts]");
    }
}
