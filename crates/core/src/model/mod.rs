//! The formal problem model of §II: relations, facts, speeches, user
//! expectations and utility.

pub mod expectation;
pub mod fact;
pub mod relation;
pub mod speech;
pub mod utility;

pub use expectation::ExpectationModel;
pub use fact::{Fact, FactId, Scope};
pub use relation::{Dimension, EncodedRelation, Prior};
pub use speech::Speech;
pub use utility::{
    base_error, speech_error, speech_error_under, utility, ResidualState, UndoArena,
};
