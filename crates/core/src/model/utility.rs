//! Deviation, error and utility (Definitions 5 and 6), plus the
//! incremental residual state used by the algorithms.

use crate::model::expectation::ExpectationModel;
use crate::model::fact::Fact;
use crate::model::relation::EncodedRelation;

/// Accumulated deviation `D(∅)` between the prior and the data — the error
/// before any fact is spoken.
pub fn base_error(relation: &EncodedRelation) -> f64 {
    let priors = relation.prior_values();
    relation
        .targets()
        .iter()
        .zip(&priors)
        .map(|(&v, &p)| (p - v).abs())
        .sum()
}

/// Accumulated deviation `D(F)` of a speech under the paper's
/// closest-relevant-value expectation model (Definition 5).
pub fn speech_error(relation: &EncodedRelation, facts: &[Fact]) -> f64 {
    let priors = relation.prior_values();
    let mut total = 0.0;
    for (row, &prior) in priors.iter().enumerate() {
        let actual = relation.target(row);
        let mut dev = (prior - actual).abs();
        for fact in facts {
            if fact.scope.matches_row(relation, row) {
                dev = dev.min((fact.value - actual).abs());
            }
        }
        total += dev;
    }
    total
}

/// Accumulated deviation of a speech under an arbitrary expectation model
/// (used to reproduce Fig. 7).
pub fn speech_error_under(
    relation: &EncodedRelation,
    facts: &[Fact],
    model: ExpectationModel,
) -> f64 {
    let priors = relation.prior_values();
    let mut total = 0.0;
    for (row, &prior) in priors.iter().enumerate() {
        let actual = relation.target(row);
        let expected = model.expected_value(relation, row, facts, prior, actual);
        total += (expected - actual).abs();
    }
    total
}

/// Utility `U(F) = D(∅) − D(F)` (Definition 6).
pub fn utility(relation: &EncodedRelation, facts: &[Fact]) -> f64 {
    base_error(relation) - speech_error(relation, facts)
}

/// Per-row residual deviations, maintained incrementally while a speech is
/// being built.
///
/// `residual[r]` is the deviation of row `r` under the facts applied so
/// far (starting from the prior). The greedy algorithm's Line 11
/// ("recalculate user expectation") is [`ResidualState::apply_fact`]; its
/// Line 7 utility computation is [`ResidualState::gain_of`].
#[derive(Debug, Clone)]
pub struct ResidualState {
    residual: Vec<f64>,
    total: f64,
}

impl ResidualState {
    /// Initialize from the relation's prior.
    pub fn new(relation: &EncodedRelation) -> Self {
        let priors = relation.prior_values();
        let residual: Vec<f64> = relation
            .targets()
            .iter()
            .zip(&priors)
            .map(|(&v, &p)| (p - v).abs())
            .collect();
        let total = residual.iter().sum();
        ResidualState { residual, total }
    }

    /// Current residual of one row.
    #[inline]
    pub fn residual(&self, row: usize) -> f64 {
        self.residual[row]
    }

    /// All residuals.
    pub fn residuals(&self) -> &[f64] {
        &self.residual
    }

    /// Current accumulated deviation `D(F)`.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Utility gain of adding `fact` to the current speech, without
    /// modifying state: `Σ_r max(0, residual_r − |fact.value − v_r|)` over
    /// the rows within scope.
    pub fn gain_of(&self, relation: &EncodedRelation, fact: &Fact) -> f64 {
        let mut gain = 0.0;
        for row in 0..relation.len() {
            if fact.scope.matches_row(relation, row) {
                let dev = (fact.value - relation.target(row)).abs();
                let improvement = self.residual[row] - dev;
                if improvement > 0.0 {
                    gain += improvement;
                }
            }
        }
        gain
    }

    /// Apply `fact`: residuals of covered rows drop to
    /// `min(residual, |fact.value − v_r|)`. Returns the realized gain and
    /// an undo log of `(row, previous residual)` entries for backtracking
    /// search.
    pub fn apply_fact(
        &mut self,
        relation: &EncodedRelation,
        fact: &Fact,
    ) -> (f64, Vec<(usize, f64)>) {
        let mut gain = 0.0;
        let mut undo = Vec::new();
        for row in 0..relation.len() {
            if fact.scope.matches_row(relation, row) {
                let dev = (fact.value - relation.target(row)).abs();
                if dev < self.residual[row] {
                    undo.push((row, self.residual[row]));
                    gain += self.residual[row] - dev;
                    self.residual[row] = dev;
                }
            }
        }
        self.total -= gain;
        (gain, undo)
    }

    /// Reverse a previous [`ResidualState::apply_fact`].
    pub fn revert(&mut self, undo: &[(usize, f64)]) {
        for &(row, previous) in undo {
            self.total += previous - self.residual[row];
            self.residual[row] = previous;
        }
    }

    /// Indexed variant of [`ResidualState::gain_of`]: the rows within the
    /// fact's scope and their pre-computed deviations come from a
    /// [`crate::enumeration::FactCatalog`] inverted index, so only
    /// in-scope rows are touched and no per-row scope decoding happens.
    ///
    /// The sweep is 4-way unrolled with independent accumulators and a
    /// branchless `max(0.0)` clamp, so the compiler keeps it in vector
    /// registers instead of serializing on one chain of conditional
    /// adds. The unrolling reorders the floating-point summation, so the
    /// result can differ from [`ResidualState::gain_indexed_scalar`] by
    /// rounding (≤ 1e-9 relative in the differential tests) — acceptable
    /// for gain *estimates*. State-mutating code
    /// ([`ResidualState::apply_indexed`]) stays scalar and bit-exact, so
    /// search determinism is unaffected.
    pub fn gain_indexed(&self, rows: &[u32], devs: &[f64]) -> f64 {
        debug_assert_eq!(rows.len(), devs.len());
        let residual = &self.residual[..];
        let n = residual.len();
        // One vectorizable validation pass up front replaces a bounds
        // check inside every gather: the non-short-circuiting max
        // reduction compiles to SIMD, a CSR index never points past the
        // relation so the branch below is always taken in practice, and
        // a malformed caller degrades to the checked scalar path instead
        // of hitting undefined behavior.
        let max_row = rows.iter().fold(0u32, |max, &row| max.max(row));
        if rows.len() != devs.len() || (!rows.is_empty() && max_row as usize >= n) {
            return self.gain_indexed_scalar(rows, devs);
        }
        let chunks = rows.len() / 4;
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for c in 0..chunks {
            let base = c * 4;
            // SAFETY: every element of `rows` was verified `< n` above,
            // and `base + 3 < rows.len() == devs.len()` by the chunk
            // bound.
            unsafe {
                // `max(0.0)` maps non-improvements to +0.0, which is
                // additive identity here: all residuals and deviations
                // are finite and non-negative, so improvements never
                // produce NaN or -0.0 sums that a conditional add would
                // treat differently.
                a0 += (residual.get_unchecked(*rows.get_unchecked(base) as usize)
                    - devs.get_unchecked(base))
                .max(0.0);
                a1 += (residual.get_unchecked(*rows.get_unchecked(base + 1) as usize)
                    - devs.get_unchecked(base + 1))
                .max(0.0);
                a2 += (residual.get_unchecked(*rows.get_unchecked(base + 2) as usize)
                    - devs.get_unchecked(base + 2))
                .max(0.0);
                a3 += (residual.get_unchecked(*rows.get_unchecked(base + 3) as usize)
                    - devs.get_unchecked(base + 3))
                .max(0.0);
            }
        }
        let mut tail = 0.0f64;
        for k in chunks * 4..rows.len() {
            tail += (residual[rows[k] as usize] - devs[k]).max(0.0);
        }
        (a0 + a1) + (a2 + a3) + tail
    }

    /// Scalar reference implementation of [`ResidualState::gain_indexed`]:
    /// one accumulator, strict row order, conditional adds — the exact
    /// summation the pre-vectorization kernel performed. Kept as the
    /// ground truth for the kernel differential tests.
    pub fn gain_indexed_scalar(&self, rows: &[u32], devs: &[f64]) -> f64 {
        let mut gain = 0.0;
        for (&row, &dev) in rows.iter().zip(devs) {
            let improvement = self.residual[row as usize] - dev;
            if improvement > 0.0 {
                gain += improvement;
            }
        }
        gain
    }

    /// Indexed variant of [`ResidualState::apply_fact`]: touches only the
    /// in-scope rows and records the undo information in `arena` (one
    /// frame per call) instead of allocating a fresh undo vector. Returns
    /// the realized gain. Revert with [`ResidualState::revert_frame`].
    pub fn apply_indexed(&mut self, rows: &[u32], devs: &[f64], arena: &mut UndoArena) -> f64 {
        let frame = UndoFrame {
            mark: arena.entries.len(),
            total_before: self.total,
        };
        let mut gain = 0.0;
        for (&row, &dev) in rows.iter().zip(devs) {
            let current = self.residual[row as usize];
            if dev < current {
                arena.entries.push((row, current));
                gain += current - dev;
                self.residual[row as usize] = dev;
            }
        }
        self.total -= gain;
        arena.frames.push(frame);
        gain
    }

    /// Reverse the most recent un-reverted [`ResidualState::apply_indexed`].
    ///
    /// Restores the saved per-row residuals (newest first) and resets the
    /// running total to its snapshot, so a revert is *bit-exact*: the
    /// state after any apply/revert sequence depends only on the facts
    /// currently applied, never on abandoned search branches. The
    /// backtracking search relies on this to return byte-identical
    /// speeches for any worker count.
    ///
    /// # Panics
    /// Panics if `arena` holds no open frame (more reverts than applies).
    pub fn revert_frame(&mut self, arena: &mut UndoArena) {
        let frame = arena.frames.pop().expect("revert_frame without open frame");
        for &(row, previous) in arena.entries[frame.mark..].iter().rev() {
            self.residual[row as usize] = previous;
        }
        arena.entries.truncate(frame.mark);
        self.total = frame.total_before;
    }
}

/// One apply's bookkeeping inside an [`UndoArena`].
#[derive(Debug, Clone, Copy)]
struct UndoFrame {
    /// First entry of this frame in the arena's entry stack.
    mark: usize,
    /// Exact running total before the apply, restored on revert.
    total_before: f64,
}

/// Reusable undo storage for backtracking search over
/// [`ResidualState::apply_indexed`] / [`ResidualState::revert_frame`].
///
/// A depth-first search applies and reverts one fact per tree edge; with a
/// per-call undo `Vec` every node pays an allocation. The arena instead
/// keeps one growing `(row, previous residual)` stack plus a frame stack
/// marking where each apply started, so steady-state search allocates
/// nothing. Frames must be reverted in LIFO order — exactly the order a
/// DFS backtracks in.
#[derive(Debug, Clone, Default)]
pub struct UndoArena {
    entries: Vec<(u32, f64)>,
    frames: Vec<UndoFrame>,
}

impl UndoArena {
    /// An empty arena.
    pub fn new() -> UndoArena {
        UndoArena::default()
    }

    /// Number of open (un-reverted) frames.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Drop all frames and entries without touching any residual state.
    /// Useful for forward-only consumers (e.g. greedy) that never revert.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.frames.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::fact::Scope;
    use crate::model::relation::Prior;

    /// The canonical Fig. 1 grid (see DESIGN.md).
    fn fig1() -> EncodedRelation {
        EncodedRelation::from_rows(
            &["season", "region"],
            "delay",
            vec![
                (vec!["Spring", "East"], 0.0),
                (vec!["Spring", "South"], 0.0),
                (vec!["Spring", "West"], 0.0),
                (vec!["Spring", "North"], 20.0),
                (vec!["Summer", "East"], 0.0),
                (vec!["Summer", "South"], 20.0),
                (vec!["Summer", "West"], 0.0),
                (vec!["Summer", "North"], 10.0),
                (vec!["Fall", "East"], 0.0),
                (vec!["Fall", "South"], 0.0),
                (vec!["Fall", "West"], 0.0),
                (vec!["Fall", "North"], 10.0),
                (vec!["Winter", "East"], 20.0),
                (vec!["Winter", "South"], 10.0),
                (vec!["Winter", "West"], 10.0),
                (vec!["Winter", "North"], 20.0),
            ],
            Prior::Constant(0.0),
        )
        .unwrap()
    }

    fn scope(r: &EncodedRelation, pairs: &[(&str, &str)]) -> Scope {
        let encoded: Vec<(usize, u32)> = pairs
            .iter()
            .map(|&(dim, value)| {
                let d = r.dim_index(dim).unwrap();
                (d, r.dims()[d].code_of(value).unwrap())
            })
            .collect();
        Scope::from_pairs(&encoded).unwrap()
    }

    #[test]
    fn example4_base_error_is_120() {
        assert_eq!(base_error(&fig1()), 120.0);
    }

    #[test]
    fn example4_speech1_error_80_utility_40() {
        let r = fig1();
        let speech1 = vec![
            Fact::new(
                scope(&r, &[("season", "Summer"), ("region", "South")]),
                20.0,
                1,
            ),
            Fact::new(
                scope(&r, &[("season", "Winter"), ("region", "East")]),
                20.0,
                1,
            ),
        ];
        assert_eq!(speech_error(&r, &speech1), 80.0);
        assert_eq!(utility(&r, &speech1), 40.0);
    }

    #[test]
    fn speech2_dominates_speech1() {
        // The paper's Example 4 states error 35 for Speech 2; with the grid
        // consistent with Examples 2/6/7/8 the exact error is 55 (see
        // DESIGN.md), but Speech 2 still dominates Speech 1 (utility 65 > 40).
        let r = fig1();
        let speech2 = vec![
            Fact::new(scope(&r, &[("season", "Winter")]), 15.0, 4),
            Fact::new(scope(&r, &[("region", "North")]), 15.0, 4),
        ];
        assert_eq!(speech_error(&r, &speech2), 55.0);
        assert_eq!(utility(&r, &speech2), 65.0);
    }

    #[test]
    fn single_fact_utilities_from_examples() {
        let r = fig1();
        // Example 6/7: Winter fact utility 40, Summer∧South utility 20.
        let winter = Fact::new(scope(&r, &[("season", "Winter")]), 15.0, 4);
        assert_eq!(utility(&r, &[winter]), 40.0);
        let north = Fact::new(scope(&r, &[("region", "North")]), 15.0, 4);
        assert_eq!(utility(&r, &[north]), 40.0);
        let summer_south = Fact::new(
            scope(&r, &[("season", "Summer"), ("region", "South")]),
            20.0,
            1,
        );
        assert_eq!(utility(&r, &[summer_south]), 20.0);
    }

    #[test]
    fn residual_state_matches_direct_computation() {
        let r = fig1();
        let winter = Fact::new(scope(&r, &[("season", "Winter")]), 15.0, 4);
        let north = Fact::new(scope(&r, &[("region", "North")]), 15.0, 4);
        let mut state = ResidualState::new(&r);
        assert_eq!(state.total(), 120.0);

        // Example 7: gains 40 then 25.
        assert_eq!(state.gain_of(&r, &winter), 40.0);
        let (gain, _) = state.apply_fact(&r, &winter);
        assert_eq!(gain, 40.0);
        assert_eq!(state.gain_of(&r, &north), 25.0);
        let (gain, _) = state.apply_fact(&r, &north);
        assert_eq!(gain, 25.0);
        assert_eq!(state.total(), speech_error(&r, &[winter, north]));
    }

    #[test]
    fn revert_restores_state() {
        let r = fig1();
        let winter = Fact::new(scope(&r, &[("season", "Winter")]), 15.0, 4);
        let mut state = ResidualState::new(&r);
        let before: Vec<f64> = state.residuals().to_vec();
        let (_, undo) = state.apply_fact(&r, &winter);
        assert_ne!(state.residuals(), before.as_slice());
        state.revert(&undo);
        assert_eq!(state.residuals(), before.as_slice());
        assert_eq!(state.total(), 120.0);
    }

    /// Rows/devs slices for a fact, the way `FactCatalog` materializes them.
    fn index_of(r: &EncodedRelation, fact: &Fact) -> (Vec<u32>, Vec<f64>) {
        let rows: Vec<u32> = (0..r.len())
            .filter(|&row| fact.scope.matches_row(r, row))
            .map(|row| row as u32)
            .collect();
        let devs: Vec<f64> = rows
            .iter()
            .map(|&row| (fact.value - r.target(row as usize)).abs())
            .collect();
        (rows, devs)
    }

    #[test]
    fn indexed_kernel_matches_full_scan() {
        let r = fig1();
        let winter = Fact::new(scope(&r, &[("season", "Winter")]), 15.0, 4);
        let north = Fact::new(scope(&r, &[("region", "North")]), 15.0, 4);
        let mut scan = ResidualState::new(&r);
        let mut indexed = ResidualState::new(&r);
        let mut arena = UndoArena::new();
        for fact in [&winter, &north] {
            let (rows, devs) = index_of(&r, fact);
            assert_eq!(indexed.gain_indexed(&rows, &devs), scan.gain_of(&r, fact));
            assert_eq!(
                indexed.gain_indexed_scalar(&rows, &devs),
                scan.gain_of(&r, fact)
            );
            let (scan_gain, _) = scan.apply_fact(&r, fact);
            let indexed_gain = indexed.apply_indexed(&rows, &devs, &mut arena);
            assert_eq!(indexed_gain, scan_gain);
            assert_eq!(indexed.residuals(), scan.residuals());
            assert_eq!(indexed.total(), scan.total());
        }
        assert_eq!(arena.depth(), 2);
    }

    #[test]
    fn arena_revert_is_bit_exact_in_lifo_order() {
        let r = fig1();
        let winter = Fact::new(scope(&r, &[("season", "Winter")]), 15.0, 4);
        let north = Fact::new(scope(&r, &[("region", "North")]), 15.0, 4);
        let mut state = ResidualState::new(&r);
        let before_any: Vec<f64> = state.residuals().to_vec();
        let mut arena = UndoArena::new();
        let (w_rows, w_devs) = index_of(&r, &winter);
        let (n_rows, n_devs) = index_of(&r, &north);
        state.apply_indexed(&w_rows, &w_devs, &mut arena);
        let after_winter: Vec<f64> = state.residuals().to_vec();
        let total_after_winter = state.total();
        state.apply_indexed(&n_rows, &n_devs, &mut arena);
        state.revert_frame(&mut arena);
        assert_eq!(state.residuals(), after_winter.as_slice());
        assert_eq!(state.total(), total_after_winter);
        state.revert_frame(&mut arena);
        assert_eq!(state.residuals(), before_any.as_slice());
        assert_eq!(state.total(), 120.0);
        assert_eq!(arena.depth(), 0);
        arena.clear();
        assert_eq!(arena.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "revert_frame without open frame")]
    fn revert_without_frame_panics() {
        let r = fig1();
        let mut state = ResidualState::new(&r);
        let mut arena = UndoArena::new();
        state.revert_frame(&mut arena);
    }

    #[test]
    fn utility_is_monotone_and_submodular_on_fig1() {
        // Spot check of Theorem 1 on the running example: adding a fact to
        // a subset helps at least as much as adding it to a superset.
        let r = fig1();
        let winter = Fact::new(scope(&r, &[("season", "Winter")]), 15.0, 4);
        let north = Fact::new(scope(&r, &[("region", "North")]), 15.0, 4);
        let summer_south = Fact::new(
            scope(&r, &[("season", "Summer"), ("region", "South")]),
            20.0,
            1,
        );

        let small = vec![winter.clone()];
        let large = vec![winter.clone(), north.clone()];
        let gain_small = utility(&r, &[winter.clone(), summer_south.clone()]) - utility(&r, &small);
        let gain_large = utility(&r, &[winter.clone(), north.clone(), summer_south.clone()])
            - utility(&r, &large);
        assert!(gain_small >= gain_large);
        // Monotonicity.
        assert!(utility(&r, &large) >= utility(&r, &small));
    }

    #[test]
    fn error_under_closest_matches_speech_error() {
        let r = fig1();
        let facts = vec![
            Fact::new(scope(&r, &[("season", "Winter")]), 15.0, 4),
            Fact::new(scope(&r, &[("region", "North")]), 15.0, 4),
        ];
        assert_eq!(
            speech_error_under(&r, &facts, ExpectationModel::ClosestRelevant),
            speech_error(&r, &facts)
        );
        // The adversarial model can only do worse.
        assert!(
            speech_error_under(&r, &facts, ExpectationModel::FarthestRelevant)
                >= speech_error(&r, &facts)
        );
    }
}
