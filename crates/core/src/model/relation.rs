//! The relation to summarize, in dictionary-encoded columnar form
//! (Definition 1 of the paper).

use std::sync::Arc;

use vqs_relalg::prelude::{ColumnType, Table, Value};

use crate::error::{CoreError, Result};

/// Metadata of one dimension column: its name and value dictionary.
///
/// Rows store `u32` codes indexing into `values`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dimension {
    /// Column name (e.g. "season").
    pub name: String,
    /// Distinct values in code order (e.g. `["Spring", "Summer", ...]`).
    pub values: Vec<Arc<str>>,
}

impl Dimension {
    /// Number of distinct values.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// Code of `value`, if present.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.values
            .iter()
            .position(|v| v.as_ref() == value)
            .map(|i| i as u32)
    }
}

/// How user expectations are initialized before any fact is heard
/// (the prior `P(r)` of Definition 4).
#[derive(Debug, Clone, PartialEq)]
pub enum Prior {
    /// The same constant expectation for every row (e.g. "no delays").
    Constant(f64),
    /// The global mean of the target column — the prior used throughout the
    /// paper's experiments ("we use the average value in the target column
    /// as a (constant) prior", §VIII-A).
    GlobalMean,
    /// An arbitrary per-row prior.
    PerRow(Vec<f64>),
}

/// A relation with dictionary-encoded dimension columns and one numeric
/// target column (Definition 1).
///
/// `dim_codes` is column-major: `dim_codes[d][row]` is the code of row
/// `row` in dimension `d`.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedRelation {
    dims: Vec<Dimension>,
    dim_codes: Vec<Vec<u32>>,
    target: Vec<f64>,
    target_name: String,
    prior: Prior,
}

impl EncodedRelation {
    /// Build a relation; validates column lengths and value codes.
    pub fn new(
        dims: Vec<Dimension>,
        dim_codes: Vec<Vec<u32>>,
        target: Vec<f64>,
        target_name: impl Into<String>,
        prior: Prior,
    ) -> Result<Self> {
        if dims.len() != dim_codes.len() {
            return Err(CoreError::LengthMismatch {
                detail: format!(
                    "{} dimensions but {} code columns",
                    dims.len(),
                    dim_codes.len()
                ),
            });
        }
        for (d, codes) in dim_codes.iter().enumerate() {
            if codes.len() != target.len() {
                return Err(CoreError::LengthMismatch {
                    detail: format!(
                        "dimension {d} has {} rows, target has {}",
                        codes.len(),
                        target.len()
                    ),
                });
            }
            let cardinality = dims[d].cardinality() as u32;
            if let Some(&bad) = codes.iter().find(|&&c| c >= cardinality) {
                return Err(CoreError::ValueOutOfRange { dim: d, value: bad });
            }
        }
        if let Prior::PerRow(p) = &prior {
            if p.len() != target.len() {
                return Err(CoreError::LengthMismatch {
                    detail: format!("prior has {} rows, target has {}", p.len(), target.len()),
                });
            }
        }
        Ok(EncodedRelation {
            dims,
            dim_codes,
            target,
            target_name: target_name.into(),
            prior,
        })
    }

    /// Build from string-valued rows: each row is (dimension values, target).
    pub fn from_rows<'a>(
        dim_names: &[&str],
        target_name: &str,
        rows: impl IntoIterator<Item = (Vec<&'a str>, f64)>,
        prior: Prior,
    ) -> Result<Self> {
        let mut dims: Vec<Dimension> = dim_names
            .iter()
            .map(|&n| Dimension {
                name: n.to_string(),
                values: Vec::new(),
            })
            .collect();
        let mut dim_codes: Vec<Vec<u32>> = vec![Vec::new(); dim_names.len()];
        let mut target = Vec::new();
        for (values, t) in rows {
            if values.len() != dims.len() {
                return Err(CoreError::LengthMismatch {
                    detail: format!("row has {} dims, expected {}", values.len(), dims.len()),
                });
            }
            for (d, value) in values.iter().enumerate() {
                let code = match dims[d].code_of(value) {
                    Some(c) => c,
                    None => {
                        dims[d].values.push(Arc::from(*value));
                        (dims[d].values.len() - 1) as u32
                    }
                };
                dim_codes[d].push(code);
            }
            target.push(t);
        }
        EncodedRelation::new(dims, dim_codes, target, target_name, prior)
    }

    /// Import from a relalg [`Table`]: `dim_cols` name the dimension
    /// columns (must be strings), `target_col` the numeric target.
    pub fn from_table(
        table: &Table,
        dim_cols: &[&str],
        target_col: &str,
        prior: Prior,
    ) -> Result<Self> {
        let schema = table.schema();
        let mut dims = Vec::with_capacity(dim_cols.len());
        let mut dim_codes: Vec<Vec<u32>> = Vec::with_capacity(dim_cols.len());
        for &name in dim_cols {
            let idx = schema.index_of(name)?;
            let mut dim = Dimension {
                name: name.to_string(),
                values: Vec::new(),
            };
            let mut codes = Vec::with_capacity(table.len());
            for row in 0..table.len() {
                let value = table.value(row, idx);
                let text = match &value {
                    Value::Str(s) => s.clone(),
                    Value::Null => {
                        return Err(CoreError::InvalidProblem {
                            detail: format!("NULL dimension value in '{name}' at row {row}"),
                        })
                    }
                    other => Arc::from(other.to_string().as_str()),
                };
                let code = match dim.values.iter().position(|v| *v == text) {
                    Some(i) => i as u32,
                    None => {
                        dim.values.push(text);
                        (dim.values.len() - 1) as u32
                    }
                };
                codes.push(code);
            }
            dims.push(dim);
            dim_codes.push(codes);
        }
        let target_idx = schema.index_of(target_col)?;
        let target_field = schema.field(target_idx)?;
        if !matches!(target_field.ty, ColumnType::Float | ColumnType::Int) {
            return Err(CoreError::InvalidProblem {
                detail: format!("target column '{target_col}' is not numeric"),
            });
        }
        let mut target = Vec::with_capacity(table.len());
        for row in 0..table.len() {
            match table.value(row, target_idx).as_f64() {
                Some(v) => target.push(v),
                None => {
                    return Err(CoreError::InvalidProblem {
                        detail: format!("NULL target value at row {row}"),
                    })
                }
            }
        }
        EncodedRelation::new(dims, dim_codes, target, target_col, prior)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.target.len()
    }

    /// True when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.target.is_empty()
    }

    /// Number of dimension columns.
    pub fn dim_count(&self) -> usize {
        self.dims.len()
    }

    /// Dimension metadata.
    pub fn dims(&self) -> &[Dimension] {
        &self.dims
    }

    /// Dimension by index.
    pub fn dim(&self, d: usize) -> Result<&Dimension> {
        self.dims.get(d).ok_or(CoreError::DimensionOutOfRange {
            dim: d,
            dims: self.dims.len(),
        })
    }

    /// Index of the dimension named `name`.
    pub fn dim_index(&self, name: &str) -> Option<usize> {
        self.dims.iter().position(|d| d.name == name)
    }

    /// Code of row `row` in dimension `d`.
    #[inline]
    pub fn code(&self, d: usize, row: usize) -> u32 {
        self.dim_codes[d][row]
    }

    /// All codes of dimension `d`, row-aligned.
    pub fn codes(&self, d: usize) -> &[u32] {
        &self.dim_codes[d]
    }

    /// Target value of row `row`.
    #[inline]
    pub fn target(&self, row: usize) -> f64 {
        self.target[row]
    }

    /// The whole target column.
    pub fn targets(&self) -> &[f64] {
        &self.target
    }

    /// Name of the target column.
    pub fn target_name(&self) -> &str {
        &self.target_name
    }

    /// The configured prior.
    pub fn prior(&self) -> &Prior {
        &self.prior
    }

    /// Replace the prior (builder style).
    pub fn with_prior(mut self, prior: Prior) -> Result<Self> {
        if let Prior::PerRow(p) = &prior {
            if p.len() != self.target.len() {
                return Err(CoreError::LengthMismatch {
                    detail: format!(
                        "prior has {} rows, target has {}",
                        p.len(),
                        self.target.len()
                    ),
                });
            }
        }
        self.prior = prior;
        Ok(self)
    }

    /// Mean of the target column (0 for an empty relation).
    pub fn target_mean(&self) -> f64 {
        if self.target.is_empty() {
            0.0
        } else {
            self.target.iter().sum::<f64>() / self.target.len() as f64
        }
    }

    /// Materialize the prior as one value per row.
    pub fn prior_values(&self) -> Vec<f64> {
        match &self.prior {
            Prior::Constant(c) => vec![*c; self.len()],
            Prior::GlobalMean => vec![self.target_mean(); self.len()],
            Prior::PerRow(p) => p.clone(),
        }
    }

    /// Restrict to the rows at `keep` (preserving order); dictionaries are
    /// shared unchanged so codes remain comparable with the parent.
    pub fn subset(&self, keep: &[usize]) -> Result<Self> {
        for &row in keep {
            if row >= self.len() {
                return Err(CoreError::LengthMismatch {
                    detail: format!("row {row} out of range ({} rows)", self.len()),
                });
            }
        }
        let dim_codes: Vec<Vec<u32>> = self
            .dim_codes
            .iter()
            .map(|codes| keep.iter().map(|&r| codes[r]).collect())
            .collect();
        let target: Vec<f64> = keep.iter().map(|&r| self.target[r]).collect();
        let prior = match &self.prior {
            Prior::PerRow(p) => Prior::PerRow(keep.iter().map(|&r| p[r]).collect()),
            other => other.clone(),
        };
        EncodedRelation::new(
            self.dims.clone(),
            dim_codes,
            target,
            self.target_name.clone(),
            prior,
        )
    }

    /// Human-readable value of row `row` in dimension `d`.
    pub fn value_str(&self, d: usize, row: usize) -> &str {
        &self.dims[d].values[self.dim_codes[d][row] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqs_relalg::prelude::{Field, Schema};

    pub(crate) fn two_by_two() -> EncodedRelation {
        EncodedRelation::from_rows(
            &["region", "season"],
            "delay",
            vec![
                (vec!["East", "Winter"], 20.0),
                (vec!["South", "Winter"], 10.0),
                (vec!["South", "Summer"], 20.0),
                (vec!["East", "Summer"], 0.0),
            ],
            Prior::Constant(0.0),
        )
        .unwrap()
    }

    #[test]
    fn encodes_and_decodes() {
        let r = two_by_two();
        assert_eq!(r.len(), 4);
        assert_eq!(r.dim_count(), 2);
        assert_eq!(r.dim(0).unwrap().cardinality(), 2);
        assert_eq!(r.value_str(0, 1), "South");
        assert_eq!(r.code(0, 0), r.code(0, 3)); // both East
        assert_eq!(r.target(1), 10.0);
    }

    #[test]
    fn dim_lookup_by_name() {
        let r = two_by_two();
        assert_eq!(r.dim_index("season"), Some(1));
        assert_eq!(r.dim_index("missing"), None);
        assert!(r.dim(7).is_err());
    }

    #[test]
    fn priors_materialize() {
        let r = two_by_two();
        assert_eq!(r.prior_values(), vec![0.0; 4]);
        let r = r.with_prior(Prior::GlobalMean).unwrap();
        assert_eq!(r.prior_values(), vec![12.5; 4]);
        let r = r
            .with_prior(Prior::PerRow(vec![1.0, 2.0, 3.0, 4.0]))
            .unwrap();
        assert_eq!(r.prior_values()[2], 3.0);
    }

    #[test]
    fn per_row_prior_length_checked() {
        let r = two_by_two();
        assert!(r.with_prior(Prior::PerRow(vec![1.0])).is_err());
    }

    #[test]
    fn invalid_codes_rejected() {
        let dims = vec![Dimension {
            name: "d".into(),
            values: vec![Arc::from("a")],
        }];
        let err = EncodedRelation::new(dims, vec![vec![1]], vec![0.0], "t", Prior::Constant(0.0))
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::ValueOutOfRange { dim: 0, value: 1 }
        ));
    }

    #[test]
    fn subset_preserves_dictionaries() {
        let r = two_by_two();
        let s = r.subset(&[1, 2]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.value_str(0, 0), "South");
        // Codes stay comparable with the parent relation.
        assert_eq!(s.code(0, 0), r.code(0, 1));
        assert!(r.subset(&[99]).is_err());
    }

    #[test]
    fn from_table_roundtrip() {
        let schema = Schema::new(vec![
            Field::required("region", ColumnType::Str),
            Field::required("delay", ColumnType::Float),
        ])
        .unwrap();
        let table = Table::from_rows(
            schema,
            vec![
                vec!["East".into(), 20.0.into()],
                vec!["South".into(), 10.0.into()],
            ],
        )
        .unwrap();
        let r = EncodedRelation::from_table(&table, &["region"], "delay", Prior::Constant(0.0))
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.value_str(0, 0), "East");
        assert_eq!(r.target(1), 10.0);
        assert!(
            EncodedRelation::from_table(&table, &["region"], "region", Prior::Constant(0.0))
                .is_err()
        );
    }

    #[test]
    fn target_mean_of_empty_is_zero() {
        let r = EncodedRelation::from_rows(&["d"], "t", Vec::new(), Prior::GlobalMean).unwrap();
        assert_eq!(r.target_mean(), 0.0);
        assert!(r.is_empty());
    }
}
