//! Relational execution of the paper's algorithms.
//!
//! §IV: "Our implementation executes the algorithm by issuing a series of
//! SQL queries (thereby removing the need for transferring data out of the
//! database system)." This module is that implementation path: Algorithms
//! 1 and 2 expressed as operator trees over [`vqs_relalg`] — grouping Γ,
//! selection σ, projection Π, the fact-scope join ⋊⋉M and the Cartesian
//! product × of the pseudo-code. It produces bit-identical utilities to
//! the direct in-memory implementations (cross-checked by tests and the
//! `equivalence` integration suite) and exists for fidelity, not speed:
//! the direct implementations are the fast path.

use vqs_relalg::ops::aggregate::{AggFunc, AggItem};
use vqs_relalg::ops::join::JoinType;
use vqs_relalg::ops::ProjectItem;
use vqs_relalg::plan::Plan;
use vqs_relalg::prelude::{ColumnType, Expr, Field, Schema, Table, Value};

use crate::algorithms::{summary_from_ids, Problem, Summarizer, Summary};
use crate::enumeration::FactCatalog;
use crate::error::Result;
use crate::instrument::Instrumentation;
use crate::model::fact::FactId;
use crate::model::relation::EncodedRelation;

/// Materialize the data relation as a relalg table:
/// `[row_id, d_0..d_{D-1}, target, prior, expect]` with `expect`
/// initialized to the prior (Algorithm 2 "initialized with the prior").
pub fn data_table(relation: &EncodedRelation) -> Result<Table> {
    let mut fields = vec![Field::required("row_id", ColumnType::Int)];
    for dim in relation.dims() {
        fields.push(Field::required(&dim.name, ColumnType::Str));
    }
    fields.push(Field::required("target", ColumnType::Float));
    fields.push(Field::required("prior", ColumnType::Float));
    fields.push(Field::required("expect", ColumnType::Float));
    let mut table = Table::empty(Schema::new(fields)?);
    let priors = relation.prior_values();
    for (row, &prior) in priors.iter().enumerate() {
        let mut values: Vec<Value> = vec![Value::Int(row as i64)];
        for d in 0..relation.dim_count() {
            values.push(Value::str(relation.value_str(d, row)));
        }
        values.push(Value::Float(relation.target(row)));
        values.push(Value::Float(prior));
        values.push(Value::Float(prior));
        table.push_row(values)?;
    }
    Ok(table)
}

/// Materialize the fact candidates as a relalg table:
/// `[fact_id, d_0..d_{D-1}, value]` with NULL for unrestricted dimensions.
pub fn fact_table(relation: &EncodedRelation, catalog: &FactCatalog) -> Result<Table> {
    let mut fields = vec![Field::required("fact_id", ColumnType::Int)];
    for dim in relation.dims() {
        fields.push(Field::nullable(&dim.name, ColumnType::Str));
    }
    fields.push(Field::required("value", ColumnType::Float));
    let mut table = Table::empty(Schema::new(fields)?);
    for (id, fact) in catalog.facts().iter().enumerate() {
        let mut values: Vec<Value> = vec![Value::Int(id as i64)];
        for d in 0..relation.dim_count() {
            match fact.scope.value_for(d) {
                Some(code) => values.push(Value::str(&relation.dims()[d].values[code as usize])),
                None => values.push(Value::Null),
            }
        }
        values.push(Value::Float(fact.value));
        table.push_row(values)?;
    }
    Ok(table)
}

/// Dimension column pairs for the scope join ⋊⋉M (facts side, data side).
fn dim_pairs(dim_count: usize) -> Vec<(usize, usize)> {
    (0..dim_count).map(|d| (1 + d, 1 + d)).collect()
}

/// Per-fact utility gains against the data table's current `expect`
/// column: `Γ_{ΣU, F}(R ⋊⋉M F)` of Algorithm 2 Line 7 (equivalently the
/// initialization of Algorithm 1 Line 6 where `expect` = prior).
///
/// Returns a table `[fact_id, gain]`.
fn fact_gains(facts: &Table, data: &Table, dim_count: usize) -> Result<Table> {
    let fact_width = facts.schema().len();
    let value_col = fact_width - 1;
    let target_col = fact_width + 1 + dim_count;
    let expect_col = fact_width + 3 + dim_count;

    // U per (fact, row) = max(0, |expect − target| − |value − target|).
    let improvement = Expr::Greatest(vec![
        Expr::lit(0.0),
        Expr::col(expect_col)
            .sub(Expr::col(target_col))
            .abs()
            .sub(Expr::col(value_col).sub(Expr::col(target_col)).abs()),
    ]);

    let plan = Plan::values(facts.clone())
        .scope_join(Plan::values(data.clone()), dim_pairs(dim_count))
        .project(vec![
            ProjectItem::new(Expr::col(0), "fact_id"),
            ProjectItem::new(improvement, "u"),
        ])
        .aggregate(
            vec![Expr::col(0)],
            vec!["fact_id".to_string()],
            vec![AggItem::new(AggFunc::Sum, Expr::col(1), "gain")],
        );
    Ok(plan.execute()?)
}

/// Highest-gain fact id in a `[fact_id, gain]` table, with its gain.
fn argmax_gain(gains: &Table) -> Option<(FactId, f64)> {
    let mut best: Option<(FactId, f64)> = None;
    for row in gains.iter_rows() {
        let id = row[0].as_i64()? as FactId;
        let gain = row[1].as_f64().unwrap_or(0.0);
        if best.is_none_or(|(_, g)| gain > g) {
            best = Some((id, gain));
        }
    }
    best
}

/// Algorithm 2 Line 11: recalculate the expectation column after adding
/// one fact — for rows within the fact's scope, `expect` becomes the value
/// closest to the target among `{expect, value}`.
fn update_expectations(
    data: &Table,
    relation: &EncodedRelation,
    catalog: &FactCatalog,
    fact_id: FactId,
) -> Result<Table> {
    let fact = catalog.fact(fact_id);
    let dim_count = relation.dim_count();
    let target_col = 1 + dim_count;
    let expect_col = 3 + dim_count;

    // Scope predicate over the data table's dimension columns.
    let mut in_scope = Expr::lit(true);
    for (d, code) in fact.scope.pairs() {
        let value = &relation.dims()[d].values[code as usize];
        in_scope = in_scope.and(Expr::col(1 + d).eq(Expr::lit(value.as_ref())));
    }
    let closer = Expr::lit(fact.value)
        .sub(Expr::col(target_col))
        .abs()
        .lt(Expr::col(expect_col).sub(Expr::col(target_col)).abs());
    let new_expect = Expr::Case {
        branches: vec![(in_scope.and(closer), Expr::lit(fact.value))],
        otherwise: Box::new(Expr::col(expect_col)),
    };

    let mut items = Vec::with_capacity(data.schema().len());
    for (i, field) in data.schema().fields().iter().enumerate() {
        if i == expect_col {
            items.push(ProjectItem::new(new_expect.clone(), "expect"));
        } else {
            items.push(ProjectItem::new(Expr::col(i), field.name.clone()));
        }
    }
    Ok(Plan::values(data.clone()).project(items).execute()?)
}

/// Algorithm 2 executed as relational operators ("G-B over SQL").
#[derive(Debug, Clone, Copy, Default)]
pub struct RelationalGreedy;

impl Summarizer for RelationalGreedy {
    fn name(&self) -> &'static str {
        "G-SQL"
    }

    fn summarize(&self, problem: &Problem<'_>) -> Result<Summary> {
        let mut counters = Instrumentation::default();
        let facts = fact_table(problem.relation, problem.catalog)?;
        let mut data = data_table(problem.relation)?;
        let dim_count = problem.relation.dim_count();

        let mut chosen: Vec<FactId> = Vec::new();
        for _ in 0..problem.max_facts {
            let gains = fact_gains(&facts, &data, dim_count)?;
            counters.gain_passes += 1;
            counters.gain_row_touches += (problem.catalog.groups().len() * data.len()) as u64;
            let Some((fact_id, gain)) = argmax_gain(&gains) else {
                break;
            };
            if gain <= 0.0 {
                break;
            }
            data = update_expectations(&data, problem.relation, problem.catalog, fact_id)?;
            chosen.push(fact_id);
        }
        Ok(summary_from_ids(problem, &chosen, counters))
    }
}

/// Algorithm 1 executed as relational operators ("E over SQL"):
/// level-wise speech expansion `σ_P(Π(S × F))` with both pruning atoms,
/// then exact utility evaluation `Γ_{ΣU,S}(R ⋊⋉M S)`.
#[derive(Debug, Clone, Default)]
pub struct RelationalExact {
    /// Lower bound `b` on the optimal utility (0 disables bound pruning;
    /// Algorithm 1 takes it as input — seed it from a greedy run).
    pub lower_bound: f64,
    /// The speech achieving `lower_bound`, kept as the incumbent. Without
    /// it the search could prune every expansion whose optimistic bound
    /// only *equals* `b` (legitimate — they cannot *exceed* the bound's
    /// provider) and then return a strictly worse speech than the
    /// heuristic it was seeded from.
    pub incumbent: Vec<FactId>,
}

impl RelationalExact {
    /// Seed the bound from a relational greedy run, as the paper does.
    pub fn with_greedy_bound(problem: &Problem<'_>) -> Result<Self> {
        let greedy = RelationalGreedy.summarize(problem)?;
        let incumbent: Vec<FactId> = greedy
            .speech
            .facts()
            .iter()
            .filter_map(|f| {
                problem
                    .catalog
                    .facts()
                    .iter()
                    .position(|c| c.scope == f.scope && c.value == f.value)
            })
            .collect();
        Ok(RelationalExact {
            lower_bound: greedy.utility,
            incumbent,
        })
    }
}

impl Summarizer for RelationalExact {
    fn name(&self) -> &'static str {
        "E-SQL"
    }

    fn summarize(&self, problem: &Problem<'_>) -> Result<Summary> {
        let mut counters = Instrumentation::default();
        let facts = fact_table(problem.relation, problem.catalog)?;
        let data = data_table(problem.relation)?;
        let dim_count = problem.relation.dim_count();
        let m = problem.max_facts.min(problem.catalog.len());

        // Line 6: single-fact utilities (expect column still equals prior).
        let singles = fact_gains(&facts, &data, dim_count)?;
        counters.gain_passes += 1;

        // S ← speeches of length 1: [f1, last_u, sum_u].
        let mut speeches = Plan::values(singles.clone())
            .project(vec![
                ProjectItem::new(Expr::col(0), "f1"),
                ProjectItem::new(Expr::col(1), "last_u"),
                ProjectItem::new(Expr::col(1), "sum_u"),
            ])
            .execute()?;

        let mut best: Option<(Vec<FactId>, f64)> =
            (!self.incumbent.is_empty()).then(|| (self.incumbent.clone(), self.lower_bound));
        for level in 1..=m {
            counters.speeches_evaluated += speeches.len() as u64;
            // Evaluate exact utility at every level: "up to m facts".
            if let Some((ids, utility)) =
                best_speech_at_level(&speeches, level, &facts, &data, dim_count)?
            {
                if best.as_ref().is_none_or(|(_, u)| utility > *u) {
                    best = Some((ids, utility));
                }
            }
            if level == m {
                break;
            }
            // Lines 8–11: expand and prune. r counts the current fact too
            // (see the exact::ExactSummarizer docs on the paper's Example 6).
            let bound = self
                .lower_bound
                .max(best.as_ref().map(|&(_, u)| u).unwrap_or(0.0));
            speeches = expand_level(&speeches, &singles, level, m, bound, &mut counters)?;
            if speeches.is_empty() {
                break;
            }
        }

        let (ids, _) = best.unwrap_or_default();
        Ok(summary_from_ids(problem, &ids, counters))
    }
}

/// One expansion step: `σ_P(Π_{Ũ,S,F}(S × F))`.
fn expand_level(
    speeches: &Table,
    singles: &Table,
    level: usize,
    m: usize,
    bound: f64,
    counters: &mut Instrumentation,
) -> Result<Table> {
    let s_width = speeches.schema().len();
    let last_u = s_width - 2;
    let sum_u = s_width - 1;
    let cand_id = s_width; // fact_id of the cross-joined candidate
    let cand_u = s_width + 1;
    let remaining = (m - level) as f64;

    // Pruning atom 1: facts ordered by decreasing single-fact utility
    // (ties broken by id so each set is kept exactly once).
    let ordered = Expr::col(last_u).gt(Expr::col(cand_u)).or(Expr::col(last_u)
        .eq(Expr::col(cand_u))
        .and(Expr::col(s_width - 3).lt(Expr::col(cand_id))));
    // Pruning atom 2: optimistic completion must reach the bound b:
    // sum_u + r·F.U ≥ b.
    let reachable = Expr::col(sum_u)
        .add(Expr::lit(remaining).mul(Expr::col(cand_u)))
        .ge(Expr::lit(bound));

    let mut items: Vec<ProjectItem> = Vec::new();
    for j in 0..level {
        items.push(ProjectItem::new(Expr::col(j), format!("f{}", j + 1)));
    }
    items.push(ProjectItem::new(
        Expr::col(cand_id),
        format!("f{}", level + 1),
    ));
    items.push(ProjectItem::new(Expr::col(cand_u), "last_u"));
    items.push(ProjectItem::new(
        Expr::col(sum_u).add(Expr::col(cand_u)),
        "sum_u",
    ));

    let out = Plan::values(speeches.clone())
        .cross(Plan::values(singles.clone()))
        .filter(ordered.and(reachable))
        .project(items)
        .execute()?;
    counters.nodes_expanded += out.len() as u64;
    counters.nodes_pruned += (speeches.len() * singles.len()) as u64 - out.len() as u64;
    Ok(out)
}

/// Exact utility of every speech at a level: explode to (speech, fact)
/// pairs, join facts, scope-join the data, take the per-(speech,row)
/// minimum deviation, sum improvements per speech, return the best.
fn best_speech_at_level(
    speeches: &Table,
    level: usize,
    facts: &Table,
    data: &Table,
    dim_count: usize,
) -> Result<Option<(Vec<FactId>, f64)>> {
    if speeches.is_empty() {
        return Ok(None);
    }
    // Explode: [speech_id, fact_id] for every member fact.
    let mut pair_table = Table::empty(Schema::new(vec![
        Field::required("speech_id", ColumnType::Int),
        Field::required("fact_id", ColumnType::Int),
    ])?);
    for (speech_id, row) in speeches.iter_rows().enumerate() {
        for fact_id in row.iter().take(level) {
            pair_table.push_row(vec![Value::Int(speech_id as i64), fact_id.clone()])?;
        }
    }

    // pairs ⋈ facts on fact_id → [speech_id, fact_id, fact dims.., value].
    let with_facts = Plan::values(pair_table)
        .hash_join(Plan::values(facts.clone()), vec![(1, 0)], JoinType::Inner)
        .execute()?;

    // Scope join against the data. Fact dims start at column 3
    // (speech_id, fact_id, fact_id again from the join's right side).
    let fact_dim_base = 3;
    let fw = with_facts.schema().len();
    let value_col = fw - 1;
    let dims: Vec<(usize, usize)> = (0..dim_count).map(|d| (fact_dim_base + d, 1 + d)).collect();
    let target_col = fw + 1 + dim_count;
    let prior_col = fw + 2 + dim_count;
    let row_id_col = fw;

    let joined = Plan::values(with_facts)
        .scope_join(Plan::values(data.clone()), dims)
        .project(vec![
            ProjectItem::new(Expr::col(0), "speech_id"),
            ProjectItem::new(Expr::col(row_id_col), "row_id"),
            ProjectItem::new(Expr::col(value_col).sub(Expr::col(target_col)).abs(), "dev"),
            ProjectItem::new(
                Expr::col(prior_col).sub(Expr::col(target_col)).abs(),
                "base_dev",
            ),
        ])
        .aggregate(
            vec![Expr::col(0), Expr::col(1)],
            vec!["speech_id".to_string(), "row_id".to_string()],
            vec![
                AggItem::new(AggFunc::Min, Expr::col(2), "min_dev"),
                AggItem::new(AggFunc::Min, Expr::col(3), "base_dev"),
            ],
        )
        .project(vec![
            ProjectItem::new(Expr::col(0), "speech_id"),
            ProjectItem::new(
                Expr::Greatest(vec![Expr::lit(0.0), Expr::col(3).sub(Expr::col(2))]),
                "improvement",
            ),
        ])
        .aggregate(
            vec![Expr::col(0)],
            vec!["speech_id".to_string()],
            vec![AggItem::new(AggFunc::Sum, Expr::col(1), "utility")],
        )
        .execute()?;

    let Some((speech_id, utility)) = argmax_gain(&joined) else {
        return Ok(None);
    };
    let row = speeches.row(speech_id);
    let ids: Vec<FactId> = (0..level)
        .map(|j| row[j].as_i64().unwrap_or_default() as FactId)
        .collect();
    Ok(Some((ids, utility)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{fig1_relation, random_relation};
    use crate::algorithms::{ExactSummarizer, GreedySummarizer};

    #[test]
    fn data_and_fact_tables_have_expected_shape() {
        let r = fig1_relation();
        let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
        let data = data_table(&r).unwrap();
        assert_eq!(data.len(), 16);
        // row_id + 2 dims + target + prior + expect.
        assert_eq!(data.schema().len(), 6);
        let facts = fact_table(&r, &catalog).unwrap();
        assert_eq!(facts.len(), catalog.len());
        // Unrestricted dims are NULL.
        let overall = facts.row(0);
        assert!(overall[1].is_null() && overall[2].is_null());
    }

    #[test]
    fn relational_greedy_matches_direct_greedy() {
        let r = fig1_relation();
        let catalog = FactCatalog::build_with_scope_sizes(&r, &[0, 1], 1, 2).unwrap();
        let problem = Problem::new(&r, &catalog, 2).unwrap();
        let direct = GreedySummarizer::base().summarize(&problem).unwrap();
        let relational = RelationalGreedy.summarize(&problem).unwrap();
        assert!((direct.utility - relational.utility).abs() < 1e-9);
    }

    #[test]
    fn relational_greedy_matches_on_random_data() {
        for seed in 0..4 {
            let r = random_relation(seed, 40, &[("a", 3), ("b", 3)]);
            let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
            let problem = Problem::new(&r, &catalog, 3).unwrap();
            let direct = GreedySummarizer::base().summarize(&problem).unwrap();
            let relational = RelationalGreedy.summarize(&problem).unwrap();
            assert!(
                (direct.utility - relational.utility).abs() < 1e-9,
                "seed {seed}: direct {} vs relational {}",
                direct.utility,
                relational.utility
            );
        }
    }

    #[test]
    fn relational_exact_finds_optimum() {
        let r = fig1_relation();
        let catalog = FactCatalog::build_with_scope_sizes(&r, &[0, 1], 1, 1).unwrap();
        let problem = Problem::new(&r, &catalog, 2).unwrap();
        let exact = ExactSummarizer::paper().summarize(&problem).unwrap();
        let relational = RelationalExact::with_greedy_bound(&problem)
            .unwrap()
            .summarize(&problem)
            .unwrap();
        assert!((exact.utility - relational.utility).abs() < 1e-9);
        assert_eq!(relational.utility, 65.0);
    }

    #[test]
    fn relational_exact_matches_on_random_data() {
        for seed in 0..3 {
            let r = random_relation(50 + seed, 25, &[("a", 3), ("b", 2)]);
            let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
            let problem = Problem::new(&r, &catalog, 2).unwrap();
            let direct = ExactSummarizer::paper().summarize(&problem).unwrap();
            let relational = RelationalExact::with_greedy_bound(&problem)
                .unwrap()
                .summarize(&problem)
                .unwrap();
            assert!(
                (direct.utility - relational.utility).abs() < 1e-9,
                "seed {seed}: direct {} vs relational {}",
                direct.utility,
                relational.utility
            );
        }
    }

    #[test]
    fn bound_pruning_shrinks_levels() {
        let r = random_relation(9, 30, &[("a", 3), ("b", 2)]);
        let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
        let problem = Problem::new(&r, &catalog, 2).unwrap();
        let strong = RelationalExact::with_greedy_bound(&problem)
            .unwrap()
            .summarize(&problem)
            .unwrap();
        let weak = RelationalExact {
            lower_bound: 0.0,
            incumbent: Vec::new(),
        }
        .summarize(&problem)
        .unwrap();
        assert!((strong.utility - weak.utility).abs() < 1e-9);
        assert!(strong.instrumentation.nodes_expanded <= weak.instrumentation.nodes_expanded);
    }
}
