//! Error type for the summarization core.

use std::fmt;

/// Errors raised by model construction and the summarization algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A dimension column index is out of range.
    DimensionOutOfRange {
        /// The offending index.
        dim: usize,
        /// Number of dimensions in the relation.
        dims: usize,
    },
    /// A dimension value code is out of range for its column.
    ValueOutOfRange {
        /// Dimension index.
        dim: usize,
        /// The offending value code.
        value: u32,
    },
    /// The relation was built with inconsistent column lengths.
    LengthMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// A problem instance is malformed (e.g. zero facts requested).
    InvalidProblem {
        /// Description of the problem.
        detail: String,
    },
    /// An error bubbled up from the relational engine.
    Relational(vqs_relalg::error::RelalgError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DimensionOutOfRange { dim, dims } => {
                write!(
                    f,
                    "dimension index {dim} out of range (relation has {dims})"
                )
            }
            CoreError::ValueOutOfRange { dim, value } => {
                write!(f, "value code {value} out of range for dimension {dim}")
            }
            CoreError::LengthMismatch { detail } => write!(f, "length mismatch: {detail}"),
            CoreError::InvalidProblem { detail } => write!(f, "invalid problem: {detail}"),
            CoreError::Relational(e) => write!(f, "relational engine: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Relational(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vqs_relalg::error::RelalgError> for CoreError {
    fn from(e: vqs_relalg::error::RelalgError) -> Self {
        CoreError::Relational(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_indices() {
        let err = CoreError::DimensionOutOfRange { dim: 5, dims: 3 };
        assert!(err.to_string().contains('5'));
        assert!(err.to_string().contains('3'));
    }

    #[test]
    fn relational_errors_convert() {
        let inner = vqs_relalg::error::RelalgError::DivisionByZero;
        let err: CoreError = inner.into();
        assert!(err.to_string().contains("division"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
