//! Subset/delta mapping for incremental maintenance.
//!
//! The offline pipeline enumerates one summary per *dimension subset*
//! (a bitmask over the dimension columns) and *value combination* (the
//! values a row takes on the masked dimensions). Incremental maintenance
//! inverts that map: a changed row can only invalidate the summaries of
//! the `(mask, combination)` pairs it participates in, one per admissible
//! mask — a DBSP-style dataflow from deltas to dirty query subsets
//! instead of a full re-diff.
//!
//! Both directions must agree exactly for a drained delta log to
//! converge on the cold pre-processing result, so the enumerator and the
//! invalidation circuit share these definitions.

/// All dimension-subset bitmasks over `dim_count` dimensions with at
/// most `max_len` bits set, in ascending numeric order — the enumeration
/// order of the offline pre-processing pass (bit `d` = dimension `d`).
///
/// The empty mask (the predicate-free overall query) is always included.
/// `dim_count` must stay below 32; the store never enumerates more
/// (predicates beyond that are answered by fallback, not enumeration).
pub fn subset_masks(dim_count: usize, max_len: usize) -> Vec<u32> {
    assert!(dim_count < 32, "dimension subsets are 32-bit masks");
    (0u32..(1u32 << dim_count))
        .filter(|mask| mask.count_ones() as usize <= max_len)
        .collect()
}

/// The indexes of the set bits of `mask`, ascending.
pub fn mask_dims(mask: u32) -> Vec<usize> {
    let mut bits = mask;
    let mut dims = Vec::with_capacity(mask.count_ones() as usize);
    while bits != 0 {
        let d = bits.trailing_zeros() as usize;
        dims.push(d);
        bits &= bits - 1;
    }
    dims
}

/// The value combination of one row restricted to `mask`: for every set
/// bit `d`, ascending, the pair `(d, values[d])`. `values` holds the
/// row's value on every dimension, indexed by dimension.
pub fn masked_combo<T: Clone>(values: &[T], mask: u32) -> Vec<(usize, T)> {
    mask_dims(mask)
        .into_iter()
        .map(|d| (d, values[d].clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_respect_length_cap_and_order() {
        let masks = subset_masks(3, 2);
        assert_eq!(masks, vec![0b000, 0b001, 0b010, 0b011, 0b100, 0b101, 0b110]);
        // Unlimited length = the full power set.
        assert_eq!(subset_masks(3, 3).len(), 8);
        // Length zero still yields the overall (empty) subset.
        assert_eq!(subset_masks(3, 0), vec![0]);
        assert_eq!(subset_masks(0, 2), vec![0]);
    }

    #[test]
    fn mask_dims_are_ascending_set_bits() {
        assert_eq!(mask_dims(0), Vec::<usize>::new());
        assert_eq!(mask_dims(0b1), vec![0]);
        assert_eq!(mask_dims(0b1010), vec![1, 3]);
        assert_eq!(mask_dims(u32::MAX), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn combos_pair_dimension_with_value() {
        let row = ["Winter", "East", "AA"];
        assert_eq!(masked_combo(&row, 0), Vec::new());
        assert_eq!(masked_combo(&row, 0b101), vec![(0, "Winter"), (2, "AA")]);
    }

    #[test]
    fn every_row_key_is_one_mask() {
        // A row participates in exactly one combination per mask — the
        // invariant the invalidation circuit relies on.
        let row = ["a", "b"];
        let masks = subset_masks(2, 2);
        let keys: Vec<_> = masks.iter().map(|&m| masked_combo(&row, m)).collect();
        assert_eq!(keys.len(), 4);
        assert_eq!(keys[3], vec![(0, "a"), (1, "b")]);
    }
}
