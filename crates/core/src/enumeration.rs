//! Fact candidate enumeration and the group/partition index.
//!
//! §III: "The facts considered for summarization report average values in
//! the target column for data subsets. We consider one fact for each data
//! subset defined by a conjunction of the query predicates and, by
//! default, up to two additional equality predicates on the dimensions
//! (considering equality predicates for all value combinations that appear
//! in the data set)."
//!
//! A [`FactCatalog`] materializes exactly those candidates for one
//! (already query-filtered) relation: one [`FactGroup`] per subset of the
//! free dimension columns up to the configured size, one fact per distinct
//! value combination appearing in the data. Each group stores a row→fact
//! partition index so that per-fact utility gains and deviation bounds are
//! computed in one pass over the rows — the direct-execution analogue of
//! the paper's fact/data joins and group-by queries.

use vqs_relalg::hash::FxHashMap;

use crate::error::{CoreError, Result};
use crate::instrument::Instrumentation;
use crate::model::fact::{Fact, FactId, Scope};
use crate::model::relation::EncodedRelation;
use crate::model::utility::ResidualState;

/// One fact group: all facts restricting the same set of dimensions
/// (§VI-B prunes "at the granularity of fact groups, characterized by the
/// set of restricted dimension columns").
#[derive(Debug, Clone)]
pub struct FactGroup {
    /// Bitmask of restricted dimensions.
    pub mask: u32,
    /// Restricted dimension indexes, ascending.
    pub cols: Vec<usize>,
    /// First fact of this group in the catalog's fact list.
    pub fact_start: FactId,
    /// Number of facts in the group (`M(g)` in §VI-C).
    pub fact_count: usize,
    /// Per-row fact offset within the group: row `r` falls within the scope
    /// of exactly the fact `fact_start + row_fact[r]`.
    row_fact: Vec<u32>,
    /// Row-aligned deviation cache: `row_devs[r]` is
    /// `|value(fact_of_row(r)) − target(r)|`. Materialized once at build
    /// time so the per-iteration gain pass reads three contiguous f64/u32
    /// streams instead of gathering fact values and re-deriving the
    /// deviation per row.
    row_devs: Vec<f64>,
}

impl FactGroup {
    /// Global [`FactId`] of the group fact covering `row`.
    #[inline]
    pub fn fact_of_row(&self, row: usize) -> FactId {
        self.fact_start + self.row_fact[row] as usize
    }

    /// Fact ids of this group.
    pub fn fact_ids(&self) -> std::ops::Range<FactId> {
        self.fact_start..self.fact_start + self.fact_count
    }

    /// The row-aligned deviation cache (`|value(fact_of_row(r)) − target(r)|`
    /// per row), the dense operand of the gain partition pass.
    pub fn row_devs(&self) -> &[f64] {
        &self.row_devs
    }
}

/// The candidate facts for one summarization problem.
///
/// Besides the per-group row→fact partitions, the catalog materializes a
/// CSR-layout *inverted* index: for every fact, the rows within its scope
/// (`fact_rows`) and the pre-computed deviation `|fact.value − v_r|` of
/// each such row (`fact_devs`). The solver hot path
/// ([`crate::model::utility::ResidualState::gain_indexed`] /
/// [`crate::model::utility::ResidualState::apply_indexed`]) walks these
/// slices instead of scanning all rows and re-decoding scopes per row —
/// O(|scope|) work per fact instead of O(rows·dims).
#[derive(Debug, Clone)]
pub struct FactCatalog {
    facts: Vec<Fact>,
    groups: Vec<FactGroup>,
    rows: usize,
    /// CSR offsets: the rows of fact `f` live at
    /// `index_rows[index_offsets[f]..index_offsets[f + 1]]`.
    index_offsets: Vec<usize>,
    /// Row ids per fact, ascending within each fact.
    index_rows: Vec<u32>,
    /// `|fact.value − target(row)|`, aligned with `index_rows`.
    index_devs: Vec<f64>,
}

impl FactCatalog {
    /// Enumerate all facts over `relation` restricting at most `max_dims`
    /// of the `free_dims` columns, including the empty scope (the overall
    /// average — the "general cancellation probability" style fact of the
    /// paper's Example 5).
    ///
    /// `free_dims` are the dimensions not already fixed by query
    /// predicates; restricting a fixed dimension would duplicate facts.
    pub fn build(
        relation: &EncodedRelation,
        free_dims: &[usize],
        max_dims: usize,
    ) -> Result<FactCatalog> {
        Self::build_with_scope_sizes(relation, free_dims, 0, max_dims)
    }

    /// Like [`FactCatalog::build`] but with a *minimum* scope size as well —
    /// `min_dims = 1` excludes the overall-average fact, matching the fact
    /// pool of the paper's Example 7 ("all facts … describing flights
    /// within a specific region or season or both").
    pub fn build_with_scope_sizes(
        relation: &EncodedRelation,
        free_dims: &[usize],
        min_dims: usize,
        max_dims: usize,
    ) -> Result<FactCatalog> {
        for &d in free_dims {
            if d >= relation.dim_count() {
                return Err(CoreError::DimensionOutOfRange {
                    dim: d,
                    dims: relation.dim_count(),
                });
            }
        }
        if free_dims.len() > 32 {
            return Err(CoreError::InvalidProblem {
                detail: format!(
                    "at most 32 free dimensions supported, got {}",
                    free_dims.len()
                ),
            });
        }
        let mut sorted_dims = free_dims.to_vec();
        sorted_dims.sort_unstable();
        sorted_dims.dedup();

        let mut facts = Vec::new();
        let mut groups = Vec::new();
        for subset in subsets_up_to(&sorted_dims, max_dims) {
            if subset.len() < min_dims {
                continue;
            }
            let group = build_group(relation, &subset, &mut facts)?;
            groups.push(group);
        }
        if groups.is_empty() {
            return Err(CoreError::InvalidProblem {
                detail: format!(
                    "no fact groups: min_dims {min_dims} exceeds max_dims {max_dims} or free dims"
                ),
            });
        }
        let (index_offsets, index_rows, index_devs) =
            build_inverted_index(relation, &facts, &groups);
        Ok(FactCatalog {
            facts,
            groups,
            rows: relation.len(),
            index_offsets,
            index_rows,
            index_devs,
        })
    }

    /// All candidate facts.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// Fact by id.
    pub fn fact(&self, id: FactId) -> &Fact {
        &self.facts[id]
    }

    /// Number of candidate facts (`k = |F|` in §VII).
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True when no facts were enumerated (empty relation).
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The fact groups, ordered by subset enumeration (empty scope first,
    /// then single dimensions, then pairs, ...).
    pub fn groups(&self) -> &[FactGroup] {
        &self.groups
    }

    /// Number of rows the catalog was built over.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Index of the group that owns `fact`.
    pub fn group_of(&self, fact: FactId) -> usize {
        match self.groups.binary_search_by(|g| {
            if fact < g.fact_start {
                std::cmp::Ordering::Greater
            } else if fact >= g.fact_start + g.fact_count {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => i,
            Err(_) => unreachable!("fact id out of catalog range"),
        }
    }

    /// Utility gains of every fact in `group` against the current
    /// residuals, in one pass over the rows (the direct analogue of the
    /// fact/data join plus grouped sum in Algorithm 2 Line 7).
    pub fn group_gains(
        &self,
        relation: &EncodedRelation,
        residual: &ResidualState,
        group: usize,
        counters: &mut Instrumentation,
    ) -> Vec<f64> {
        let mut gains = Vec::new();
        self.group_gains_into(relation, residual, group, counters, &mut gains);
        gains
    }

    /// [`FactCatalog::group_gains`] into a caller-owned buffer, for sweeps
    /// that evaluate many groups per iteration (the greedy inner loop):
    /// the buffer is cleared and refilled, so one allocation serves the
    /// whole sweep instead of one per group.
    pub fn group_gains_into(
        &self,
        relation: &EncodedRelation,
        residual: &ResidualState,
        group: usize,
        counters: &mut Instrumentation,
        gains: &mut Vec<f64>,
    ) {
        debug_assert_eq!(relation.len(), self.rows);
        let group = &self.groups[group];
        gains.clear();
        gains.resize(group.fact_count, 0.0);
        let residuals = residual.residuals();
        if group.fact_count == 1 {
            // Single-fact group (e.g. the overall average): a pure
            // reduction over two contiguous streams — 4-way unrolled with
            // independent accumulators and a branchless clamp, the same
            // shape as `ResidualState::gain_indexed`. The reordered
            // summation may differ from the sequential pass by rounding
            // (gain estimates tolerate that; see the differential tests).
            let devs = &group.row_devs[..];
            let chunks = self.rows / 4;
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
            for c in 0..chunks {
                let b = c * 4;
                a0 += (residuals[b] - devs[b]).max(0.0);
                a1 += (residuals[b + 1] - devs[b + 1]).max(0.0);
                a2 += (residuals[b + 2] - devs[b + 2]).max(0.0);
                a3 += (residuals[b + 3] - devs[b + 3]).max(0.0);
            }
            let mut tail = 0.0f64;
            for r in chunks * 4..self.rows {
                tail += (residuals[r] - devs[r]).max(0.0);
            }
            gains[0] = (a0 + a1) + (a2 + a3) + tail;
        } else {
            // Per-fact gather over the catalog's CSR inverted index: the
            // group's facts partition the rows, so this touches each row
            // exactly once — the same totals as a row-order partition
            // pass — but every add lands in a register accumulator
            // instead of a `gains[offset]` slot, so there is no serial
            // load-add-store chain through memory. Four independent
            // accumulators per fact expose ILP; the branchless clamp
            // adds +0.0 for non-improving rows (the additive identity
            // for these finite non-negative streams). Summation order
            // differs from the scan by reassociation only — gains are
            // selection estimates with tolerance-checked consumers (see
            // the differential tests), while `apply_indexed`, which
            // determines search state, stays strictly sequential.
            assert_eq!(residuals.len(), self.rows);
            for (slot, fact) in group.fact_ids().enumerate() {
                let lo = self.index_offsets[fact];
                let hi = self.index_offsets[fact + 1];
                let len = hi - lo;
                let chunks = len / 4;
                let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                // SAFETY: `build_inverted_index` fills `index_rows` with
                // row ids drawn from `0..relation.len()` (validated as
                // `self.rows` above, the length of `residuals`),
                // `index_devs` is aligned with `index_rows`, and the
                // CSR offsets are a prefix sum bounded by their lengths.
                unsafe {
                    for c in 0..chunks {
                        let b = lo + c * 4;
                        let rows = &self.index_rows;
                        let devs = &self.index_devs;
                        a0 += (residuals.get_unchecked(*rows.get_unchecked(b) as usize)
                            - devs.get_unchecked(b))
                        .max(0.0);
                        a1 += (residuals.get_unchecked(*rows.get_unchecked(b + 1) as usize)
                            - devs.get_unchecked(b + 1))
                        .max(0.0);
                        a2 += (residuals.get_unchecked(*rows.get_unchecked(b + 2) as usize)
                            - devs.get_unchecked(b + 2))
                        .max(0.0);
                        a3 += (residuals.get_unchecked(*rows.get_unchecked(b + 3) as usize)
                            - devs.get_unchecked(b + 3))
                        .max(0.0);
                    }
                }
                let mut tail = 0.0f64;
                for k in lo + chunks * 4..hi {
                    tail += (residuals[self.index_rows[k] as usize] - self.index_devs[k]).max(0.0);
                }
                gains[slot] = (a0 + a1) + (a2 + a3) + tail;
            }
        }
        counters.gain_passes += 1;
        counters.gain_row_touches += self.rows as u64;
    }

    /// Per-fact upper bounds on utility gain for one group: the summed
    /// residual deviation of the rows within each fact's scope ("adding a
    /// fact can at most decrease error to zero in the data region the
    /// fact refers to", §VI-B). The paper's Example 8 quotes these values
    /// (facts referencing Fall ≤ 10, facts referencing the East ≤ 5).
    pub fn group_fact_bounds(
        &self,
        residual: &ResidualState,
        group: usize,
        counters: &mut Instrumentation,
    ) -> Vec<f64> {
        let group = &self.groups[group];
        let mut sums = vec![0.0f64; group.fact_count];
        for row in 0..self.rows {
            sums[group.row_fact[row] as usize] += residual.residual(row);
        }
        counters.bound_passes += 1;
        counters.bound_row_touches += self.rows as u64;
        sums
    }

    /// Upper bound on the utility gain of any fact in `group`: the maximum
    /// of [`FactCatalog::group_fact_bounds`] (Algorithm 3 Line 15).
    pub fn group_bound(
        &self,
        residual: &ResidualState,
        group: usize,
        counters: &mut Instrumentation,
    ) -> f64 {
        self.group_fact_bounds(residual, group, counters)
            .into_iter()
            .fold(0.0, f64::max)
    }

    /// Rows within the scope of `fact`, ascending (CSR inverted index).
    #[inline]
    pub fn fact_rows(&self, fact: FactId) -> &[u32] {
        &self.index_rows[self.index_offsets[fact]..self.index_offsets[fact + 1]]
    }

    /// Pre-computed deviations `|fact.value − v_r|`, aligned with
    /// [`FactCatalog::fact_rows`].
    #[inline]
    pub fn fact_devs(&self, fact: FactId) -> &[f64] {
        &self.index_devs[self.index_offsets[fact]..self.index_offsets[fact + 1]]
    }

    /// Both CSR slices of one fact in a single bounds computation — the
    /// shape the solver hot path consumes.
    #[inline]
    pub fn fact_index(&self, fact: FactId) -> (&[u32], &[f64]) {
        let range = self.index_offsets[fact]..self.index_offsets[fact + 1];
        (&self.index_rows[range.clone()], &self.index_devs[range])
    }

    /// Single-fact utilities of every fact (used by the exact algorithm to
    /// order facts and bound expansions).
    pub fn single_fact_utilities(
        &self,
        relation: &EncodedRelation,
        counters: &mut Instrumentation,
    ) -> Vec<f64> {
        let base = ResidualState::new(relation);
        let mut utilities = vec![0.0f64; self.facts.len()];
        for (g, _) in self.groups.iter().enumerate() {
            let gains = self.group_gains(relation, &base, g, counters);
            let start = self.groups[g].fact_start;
            utilities[start..start + gains.len()].copy_from_slice(&gains);
        }
        utilities
    }
}

/// Enumerate all subsets of `dims` with at most `max_size` elements,
/// smallest first (the empty subset leads).
fn subsets_up_to(dims: &[usize], max_size: usize) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = vec![Vec::new()];
    for size in 1..=max_size.min(dims.len()) {
        for combo in combinations(dims.len(), size) {
            out.push(combo.iter().map(|&i| dims[i]).collect());
        }
    }
    out
}

/// All `size`-combinations of `0..n` in lexicographic order.
fn combinations(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if size > n {
        return out;
    }
    let mut combo: Vec<usize> = (0..size).collect();
    loop {
        out.push(combo.clone());
        let mut i = size;
        let mut advanced = false;
        while i > 0 {
            i -= 1;
            if combo[i] != i + n - size {
                combo[i] += 1;
                for j in i + 1..size {
                    combo[j] = combo[j - 1] + 1;
                }
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    out
}

/// Materialize the CSR inverted index from the per-group row→fact
/// partitions: one counting sort per group, no scope matching. Every row
/// appears once per group (the groups partition the rows), so the index
/// holds exactly `rows × groups` entries.
fn build_inverted_index(
    relation: &EncodedRelation,
    facts: &[Fact],
    groups: &[FactGroup],
) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
    let total = relation.len() * groups.len();
    let mut offsets = vec![0usize; facts.len() + 1];
    // Count rows per fact (shifted by one for the prefix sum).
    for group in groups {
        for &offset in &group.row_fact {
            offsets[group.fact_start + offset as usize + 1] += 1;
        }
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let mut cursor: Vec<usize> = offsets[..facts.len()].to_vec();
    let mut rows = vec![0u32; total];
    let mut devs = vec![0.0f64; total];
    for group in groups {
        for (row, &offset) in group.row_fact.iter().enumerate() {
            let fact = group.fact_start + offset as usize;
            let slot = cursor[fact];
            cursor[fact] += 1;
            rows[slot] = row as u32;
            devs[slot] = (facts[fact].value - relation.target(row)).abs();
        }
    }
    (offsets, rows, devs)
}

fn build_group(
    relation: &EncodedRelation,
    cols: &[usize],
    facts: &mut Vec<Fact>,
) -> Result<FactGroup> {
    let fact_start = facts.len();
    let mut combo_index: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
    let mut row_fact = Vec::with_capacity(relation.len());
    let mut sums: Vec<f64> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    let mut keys: Vec<Vec<u32>> = Vec::new();
    for row in 0..relation.len() {
        let key: Vec<u32> = cols.iter().map(|&d| relation.code(d, row)).collect();
        let offset = match combo_index.get(&key) {
            Some(&o) => o,
            None => {
                let o = sums.len() as u32;
                combo_index.insert(key.clone(), o);
                keys.push(key);
                sums.push(0.0);
                counts.push(0);
                o
            }
        };
        sums[offset as usize] += relation.target(row);
        counts[offset as usize] += 1;
        row_fact.push(offset);
    }
    let mask = cols.iter().fold(0u32, |m, &d| m | (1 << d));
    for ((key, sum), count) in keys.iter().zip(&sums).zip(&counts) {
        let pairs: Vec<(usize, u32)> = cols.iter().copied().zip(key.iter().copied()).collect();
        let scope = Scope::from_pairs(&pairs)?;
        facts.push(Fact::new(scope, sum / *count as f64, *count));
    }
    let row_devs: Vec<f64> = row_fact
        .iter()
        .enumerate()
        .map(|(row, &offset)| {
            (facts[fact_start + offset as usize].value - relation.target(row)).abs()
        })
        .collect();
    // Validate the row→fact partition once at build time: the bound pass
    // and the inverted-index build index per-fact arrays by these offsets,
    // and the CSR slices that `group_gains` walks unchecked are derived
    // from them.
    assert!(row_fact
        .iter()
        .all(|&offset| (offset as usize) < sums.len()));
    Ok(FactGroup {
        mask,
        cols: cols.to_vec(),
        fact_start,
        fact_count: sums.len(),
        row_fact,
        row_devs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::relation::Prior;
    use crate::model::utility;

    fn relation() -> EncodedRelation {
        EncodedRelation::from_rows(
            &["region", "season"],
            "delay",
            vec![
                (vec!["East", "Winter"], 20.0),
                (vec!["South", "Winter"], 10.0),
                (vec!["South", "Summer"], 20.0),
                (vec!["East", "Summer"], 0.0),
            ],
            Prior::Constant(0.0),
        )
        .unwrap()
    }

    #[test]
    fn enumerates_expected_fact_count() {
        let r = relation();
        let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
        // Empty scope (1) + region (2) + season (2) + region×season (4).
        assert_eq!(catalog.len(), 9);
        assert_eq!(catalog.groups().len(), 4);
        let masks: Vec<u32> = catalog.groups().iter().map(|g| g.mask).collect();
        assert_eq!(masks, vec![0b00, 0b01, 0b10, 0b11]);
    }

    #[test]
    fn max_dims_limits_groups() {
        let r = relation();
        let catalog = FactCatalog::build(&r, &[0, 1], 1).unwrap();
        assert_eq!(catalog.groups().len(), 3);
        assert_eq!(catalog.len(), 5);
        let catalog = FactCatalog::build(&r, &[0, 1], 0).unwrap();
        assert_eq!(catalog.len(), 1); // just the overall average
        assert_eq!(catalog.fact(0).value, 12.5);
    }

    #[test]
    fn facts_average_their_scope() {
        let r = relation();
        let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
        for fact in catalog.facts() {
            let recomputed = Fact::for_scope(&r, fact.scope.clone()).unwrap();
            assert!((fact.value - recomputed.value).abs() < 1e-12);
            assert_eq!(fact.support, recomputed.support);
        }
    }

    #[test]
    fn row_partition_is_consistent() {
        let r = relation();
        let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
        for group in catalog.groups() {
            for row in 0..r.len() {
                let fact = catalog.fact(group.fact_of_row(row));
                assert!(fact.scope.matches_row(&r, row));
            }
        }
    }

    #[test]
    fn group_of_inverts_fact_ids() {
        let r = relation();
        let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
        for (g, group) in catalog.groups().iter().enumerate() {
            for id in group.fact_ids() {
                assert_eq!(catalog.group_of(id), g);
            }
        }
    }

    #[test]
    fn gains_match_direct_computation() {
        let r = relation();
        let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
        let state = ResidualState::new(&r);
        let mut counters = Instrumentation::default();
        for (g, group) in catalog.groups().iter().enumerate() {
            let gains = catalog.group_gains(&r, &state, g, &mut counters);
            for (offset, gain) in gains.iter().enumerate() {
                let fact = catalog.fact(group.fact_start + offset);
                let direct = state.gain_of(&r, fact);
                assert!((gain - direct).abs() < 1e-12, "group {g} fact {offset}");
            }
        }
        assert!(counters.gain_passes >= 4);
        assert_eq!(counters.gain_row_touches, 16);
    }

    #[test]
    fn single_fact_utilities_match_utility_fn() {
        let r = relation();
        let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
        let mut counters = Instrumentation::default();
        let utilities = catalog.single_fact_utilities(&r, &mut counters);
        for (id, fact) in catalog.facts().iter().enumerate() {
            let direct = utility::utility(&r, std::slice::from_ref(fact));
            assert!((utilities[id] - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn bounds_dominate_gains() {
        let r = relation();
        let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
        let state = ResidualState::new(&r);
        let mut counters = Instrumentation::default();
        for g in 0..catalog.groups().len() {
            let bound = catalog.group_bound(&state, g, &mut counters);
            let gains = catalog.group_gains(&r, &state, g, &mut counters);
            for gain in gains {
                assert!(bound >= gain - 1e-12);
            }
        }
        assert_eq!(counters.bound_passes, 4);
    }

    #[test]
    fn inverted_index_matches_scope_matching() {
        let r = relation();
        let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
        for (id, fact) in catalog.facts().iter().enumerate() {
            let expected: Vec<u32> = (0..r.len())
                .filter(|&row| fact.scope.matches_row(&r, row))
                .map(|row| row as u32)
                .collect();
            assert_eq!(catalog.fact_rows(id), expected.as_slice(), "fact {id}");
            for (&row, &dev) in catalog.fact_rows(id).iter().zip(catalog.fact_devs(id)) {
                let direct = (fact.value - r.target(row as usize)).abs();
                assert_eq!(dev, direct, "fact {id} row {row}");
            }
            assert_eq!(catalog.fact_rows(id).len(), fact.support);
        }
        // The groups partition the rows, so the index holds rows × groups
        // entries in total.
        let total: usize = (0..catalog.len())
            .map(|id| catalog.fact_rows(id).len())
            .sum();
        assert_eq!(total, r.len() * catalog.groups().len());
    }

    #[test]
    fn indexed_gain_matches_scan_gain() {
        let r = relation();
        let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
        let state = ResidualState::new(&r);
        for (id, fact) in catalog.facts().iter().enumerate() {
            let (rows, devs) = catalog.fact_index(id);
            let indexed = state.gain_indexed(rows, devs);
            let scan = state.gain_of(&r, fact);
            assert_eq!(indexed, scan, "fact {id}");
        }
    }

    #[test]
    fn free_dims_exclude_fixed_columns() {
        let r = relation();
        // Only season free: no region-restricted facts.
        let catalog = FactCatalog::build(&r, &[1], 2).unwrap();
        assert_eq!(catalog.groups().len(), 2);
        assert!(catalog.facts().iter().all(|f| !f.scope.restricts(0)));
    }

    #[test]
    fn invalid_dims_rejected() {
        let r = relation();
        assert!(FactCatalog::build(&r, &[5], 2).is_err());
    }

    #[test]
    fn subsets_enumeration_orders_by_size() {
        let subsets = subsets_up_to(&[0, 1, 2], 2);
        assert_eq!(
            subsets,
            vec![
                vec![],
                vec![0],
                vec![1],
                vec![2],
                vec![0, 1],
                vec![0, 2],
                vec![1, 2],
            ]
        );
        assert_eq!(subsets_up_to(&[3, 7], 5).len(), 4);
    }

    #[test]
    fn combinations_basic() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
        assert!(combinations(2, 3).is_empty());
    }
}
