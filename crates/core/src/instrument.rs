//! Work counters shared by the algorithms and the benches.
//!
//! The paper compares algorithms by data processing effort (joins vs
//! group-bys); these counters make the same effort visible in our direct
//! implementations, independent of wall-clock noise.

/// Counters accumulated while solving one summarization problem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Instrumentation {
    /// Row touches spent computing per-fact utility gains (the analogue of
    /// joining data rows with facts, `CU`).
    pub gain_row_touches: u64,
    /// Row touches spent computing deviation upper bounds (the analogue of
    /// the group-by-only bound queries, `CD`).
    pub bound_row_touches: u64,
    /// Row touches served by the catalog's CSR inverted index
    /// ([`crate::enumeration::FactCatalog::fact_rows`]): only rows inside a
    /// fact's scope, with the deviation pre-computed. The indexed solver
    /// hot path accumulates here instead of `gain_row_touches`, making the
    /// O(|scope|)-vs-O(rows·dims) saving directly visible.
    pub index_row_touches: u64,
    /// Number of per-group gain passes executed.
    pub gain_passes: u64,
    /// Number of per-group bound passes executed.
    pub bound_passes: u64,
    /// Fact groups pruned (targets plus their specializations).
    pub groups_pruned: u64,
    /// Search-tree nodes expanded (exact algorithm only).
    pub nodes_expanded: u64,
    /// Search-tree branches cut by the utility bound (exact only).
    pub nodes_pruned: u64,
    /// Complete speeches whose exact utility was evaluated.
    pub speeches_evaluated: u64,
    /// Run-time speech-store lookups served.
    pub store_lookups: u64,
    /// Hash probes issued by the speech store (exact probe plus indexed
    /// generalization candidates; a full-map scan would show up here as a
    /// probe count proportional to the store size).
    pub store_probes: u64,
}

impl Instrumentation {
    /// Merge counters from another instance (e.g. per-iteration partials).
    pub fn merge(&mut self, other: &Instrumentation) {
        self.gain_row_touches += other.gain_row_touches;
        self.bound_row_touches += other.bound_row_touches;
        self.index_row_touches += other.index_row_touches;
        self.gain_passes += other.gain_passes;
        self.bound_passes += other.bound_passes;
        self.groups_pruned += other.groups_pruned;
        self.nodes_expanded += other.nodes_expanded;
        self.nodes_pruned += other.nodes_pruned;
        self.speeches_evaluated += other.speeches_evaluated;
        self.store_lookups += other.store_lookups;
        self.store_probes += other.store_probes;
    }

    /// Total row touches across gain and bound passes.
    pub fn total_row_touches(&self) -> u64 {
        self.gain_row_touches + self.bound_row_touches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = Instrumentation {
            gain_row_touches: 10,
            gain_passes: 1,
            ..Default::default()
        };
        let b = Instrumentation {
            gain_row_touches: 5,
            bound_row_touches: 7,
            index_row_touches: 11,
            groups_pruned: 2,
            store_lookups: 3,
            store_probes: 9,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.gain_row_touches, 15);
        assert_eq!(a.bound_row_touches, 7);
        assert_eq!(a.index_row_touches, 11);
        assert_eq!(a.groups_pruned, 2);
        assert_eq!(a.total_row_touches(), 22);
        assert_eq!(a.store_lookups, 3);
        assert_eq!(a.store_probes, 9);
    }

    #[test]
    fn store_counters_accumulate_independently() {
        let mut a = Instrumentation {
            store_lookups: 1,
            store_probes: 4,
            ..Default::default()
        };
        a.merge(&a.clone());
        assert_eq!(a.store_lookups, 2);
        assert_eq!(a.store_probes, 8);
        // Store counters do not leak into the data-processing totals.
        assert_eq!(a.total_row_touches(), 0);
    }
}
