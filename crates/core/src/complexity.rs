//! The NP-hardness reduction of §VII (Theorem 4): set cover reduces to
//! speech summarization.
//!
//! Executable form of the proof: a [`SetCoverInstance`] maps to a relation
//! with one row per universe element and one dimension column per subset;
//! each subset `s` contributes a candidate fact with value 1 scoped to the
//! rows of `s`. With prior 0 and all targets 1, a speech of `m` facts has
//! deviation 0 iff the corresponding `m` subsets cover the universe.
//! Running any exact summarizer on the reduction therefore decides set
//! cover — which is both a correctness check for the solvers and the
//! reason exhaustive search cannot stay polynomial.

use crate::enumeration::FactCatalog;
use crate::error::{CoreError, Result};
use crate::model::fact::{Fact, Scope};
use crate::model::relation::{EncodedRelation, Prior};
use crate::model::speech::Speech;

/// A set cover instance: a universe `{0, .., universe_size-1}` and a
/// family of subsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCoverInstance {
    /// Number of universe elements.
    pub universe_size: usize,
    /// The subsets, each listing element indexes.
    pub subsets: Vec<Vec<usize>>,
}

impl SetCoverInstance {
    /// Validate element indexes.
    pub fn new(universe_size: usize, subsets: Vec<Vec<usize>>) -> Result<Self> {
        for (i, subset) in subsets.iter().enumerate() {
            if let Some(&bad) = subset.iter().find(|&&e| e >= universe_size) {
                return Err(CoreError::InvalidProblem {
                    detail: format!("subset {i} references element {bad} outside the universe"),
                });
            }
        }
        Ok(SetCoverInstance {
            universe_size,
            subsets,
        })
    }

    /// Whether the chosen subset indexes cover the universe.
    pub fn is_cover(&self, chosen: &[usize]) -> bool {
        let mut covered = vec![false; self.universe_size];
        for &s in chosen {
            for &e in &self.subsets[s] {
                covered[e] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }
}

/// The reduction artifacts: a relation, the candidate facts (one per
/// subset), and the mapping back to subset indexes.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// One row per universe element, one dimension per subset.
    pub relation: EncodedRelation,
    /// Candidate facts; `facts[i]` corresponds to `subsets[i]`.
    pub facts: Vec<Fact>,
}

/// Build the Theorem 4 reduction.
///
/// Column `C_s` holds value `"in"` for rows in subset `s` and `"out"`
/// otherwise; fact `F_s = ⟨{⟨C_s, in⟩}, 1⟩`. Prior 0, targets 1.
pub fn reduce(instance: &SetCoverInstance) -> Result<Reduction> {
    if instance.subsets.len() > 32 {
        return Err(CoreError::InvalidProblem {
            detail: "reduction supports at most 32 subsets (scope mask width)".to_string(),
        });
    }
    let dim_names: Vec<String> = (0..instance.subsets.len())
        .map(|s| format!("C{s}"))
        .collect();
    let dim_name_refs: Vec<&str> = dim_names.iter().map(String::as_str).collect();

    let mut rows = Vec::with_capacity(instance.universe_size);
    for element in 0..instance.universe_size {
        let values: Vec<&str> = instance
            .subsets
            .iter()
            .map(|subset| {
                if subset.contains(&element) {
                    "in"
                } else {
                    "out"
                }
            })
            .collect();
        rows.push((values, 1.0));
    }
    let relation =
        EncodedRelation::from_rows(&dim_name_refs, "covered", rows, Prior::Constant(0.0))?;

    let mut facts = Vec::with_capacity(instance.subsets.len());
    for (s, subset) in instance.subsets.iter().enumerate() {
        let code = relation.dims()[s]
            .code_of("in")
            .ok_or_else(|| CoreError::InvalidProblem {
                detail: format!("subset {s} is empty — it covers nothing and has no 'in' code"),
            })?;
        let scope = Scope::from_pairs(&[(s, code)])?;
        facts.push(Fact::new(scope, 1.0, subset.len()));
    }
    Ok(Reduction { relation, facts })
}

/// Decision variant: can the universe be covered with `m` subsets?
/// Decided by exhaustively searching speeches over the reduction and
/// checking for deviation zero (the proof's equivalence).
pub fn decide_cover_via_summarization(instance: &SetCoverInstance, m: usize) -> Result<bool> {
    let reduction = reduce(instance)?;
    let n = instance.universe_size as f64;
    // Search all speeches of up to m facts for one with deviation 0,
    // i.e. utility n (base error = n, each row contributing |0 − 1| = 1).
    let best = best_speech_utility(&reduction, m);
    Ok((best - n).abs() < 1e-9)
}

/// Map an optimal speech back to subset indexes.
pub fn speech_to_subsets(reduction: &Reduction, speech: &Speech) -> Vec<usize> {
    speech
        .facts()
        .iter()
        .filter_map(|f| reduction.facts.iter().position(|c| c.scope == f.scope))
        .collect()
}

fn best_speech_utility(reduction: &Reduction, m: usize) -> f64 {
    // Exhaustive search over C(k, ≤m) fact subsets (instances are small).
    let k = reduction.facts.len();
    let mut best = 0.0f64;
    let mut indices: Vec<usize> = Vec::new();
    search(reduction, m.min(k), 0, &mut indices, &mut best);
    best
}

fn search(reduction: &Reduction, m: usize, start: usize, chosen: &mut Vec<usize>, best: &mut f64) {
    let facts: Vec<Fact> = chosen.iter().map(|&i| reduction.facts[i].clone()).collect();
    let u = crate::model::utility::utility(&reduction.relation, &facts);
    if u > *best {
        *best = u;
    }
    if chosen.len() == m {
        return;
    }
    for i in start..reduction.facts.len() {
        chosen.push(i);
        search(reduction, m, i + 1, chosen, best);
        chosen.pop();
    }
}

/// Confirm a catalog built over the reduction's relation contains every
/// reduction fact (the candidate pool of the formal proof is a subset of
/// what [`FactCatalog::build`] enumerates).
pub fn catalog_contains_reduction_facts(catalog: &FactCatalog, reduction: &Reduction) -> bool {
    reduction.facts.iter().all(|f| {
        catalog
            .facts()
            .iter()
            .any(|c| c.scope == f.scope && (c.value - f.value).abs() < 1e-12)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> SetCoverInstance {
        // Universe {0..5}; cover possible with 2 subsets ({0,1,2} ∪ {3,4,5}).
        SetCoverInstance::new(
            6,
            vec![
                vec![0, 1, 2],
                vec![3, 4, 5],
                vec![0, 3],
                vec![1, 4],
                vec![2, 5],
            ],
        )
        .unwrap()
    }

    #[test]
    fn validates_elements() {
        assert!(SetCoverInstance::new(3, vec![vec![0, 5]]).is_err());
    }

    #[test]
    fn is_cover_checks_union() {
        let inst = instance();
        assert!(inst.is_cover(&[0, 1]));
        assert!(inst.is_cover(&[2, 3, 4]));
        assert!(!inst.is_cover(&[0, 2]));
    }

    #[test]
    fn reduction_shape() {
        let inst = instance();
        let red = reduce(&inst).unwrap();
        assert_eq!(red.relation.len(), 6);
        assert_eq!(red.relation.dim_count(), 5);
        assert_eq!(red.facts.len(), 5);
        // Every fact covers exactly its subset's rows.
        for (s, fact) in red.facts.iter().enumerate() {
            for row in 0..red.relation.len() {
                assert_eq!(
                    fact.scope.matches_row(&red.relation, row),
                    inst.subsets[s].contains(&row),
                    "fact {s} row {row}"
                );
            }
        }
    }

    #[test]
    fn zero_deviation_iff_cover() {
        let inst = instance();
        // m = 2: {0,1} covers → decidable.
        assert!(decide_cover_via_summarization(&inst, 2).unwrap());
        // m = 1: no single subset covers.
        assert!(!decide_cover_via_summarization(&inst, 1).unwrap());
        // m = 3: the triple {2,3,4} also covers.
        assert!(decide_cover_via_summarization(&inst, 3).unwrap());
    }

    #[test]
    fn uncoverable_universe_detected() {
        let inst = SetCoverInstance::new(4, vec![vec![0, 1], vec![1, 2]]).unwrap();
        assert!(!decide_cover_via_summarization(&inst, 2).unwrap());
    }

    #[test]
    fn empty_subset_rejected_by_reduction() {
        let inst = SetCoverInstance::new(3, vec![vec![0, 1, 2], vec![]]).unwrap();
        assert!(reduce(&inst).is_err());
    }

    #[test]
    fn speech_maps_back_to_cover() {
        let inst = instance();
        let red = reduce(&inst).unwrap();
        let speech = Speech::new(vec![red.facts[0].clone(), red.facts[1].clone()]);
        let chosen = speech_to_subsets(&red, &speech);
        assert_eq!(chosen, vec![0, 1]);
        assert!(inst.is_cover(&chosen));
    }

    #[test]
    fn catalog_covers_reduction_facts() {
        let inst = instance();
        let red = reduce(&inst).unwrap();
        let dims: Vec<usize> = (0..red.relation.dim_count()).collect();
        let catalog = FactCatalog::build(&red.relation, &dims, 1).unwrap();
        assert!(catalog_contains_reduction_facts(&catalog, &red));
    }
}
