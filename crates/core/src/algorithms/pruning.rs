//! Fact-group pruning (Algorithm 3) and the per-iteration fact selection
//! shared by all greedy variants.

use crate::algorithms::optimizer::{naive_plan, optimal_plan, PlanCandidate, PruneOptimizerConfig};
use crate::algorithms::Problem;
use crate::instrument::Instrumentation;
use crate::model::fact::FactId;
use crate::model::utility::ResidualState;

/// Which fact-pruning strategy a greedy run uses (the G-B / G-P / G-O
/// variants of §VIII-B).
#[derive(Debug, Clone, Default)]
pub enum FactPruning {
    /// G-B: no pruning; every group's gains are computed each iteration.
    #[default]
    Off,
    /// G-P: Algorithm 3 with the naive plan (smallest group as the only
    /// source, all remaining groups as targets in Algorithm 4 order).
    Naive(PruneOptimizerConfig),
    /// G-O: Algorithm 3 with the cost-optimal plan from Algorithm 4.
    Optimized(PruneOptimizerConfig),
}

impl FactPruning {
    /// Default-configured naive pruning.
    pub fn naive() -> Self {
        FactPruning::Naive(PruneOptimizerConfig::default())
    }

    /// Default-configured optimized pruning.
    pub fn optimized() -> Self {
        FactPruning::Optimized(PruneOptimizerConfig::default())
    }
}

/// Build the pruning plan for a problem, or `None` when pruning is off.
///
/// The plan depends only on static group statistics (`M(g)` and the row
/// count), so greedy runs compute it once per problem and reuse it across
/// iterations — the `OPT PRUNE` call of Algorithm 3 with its (constant)
/// result cached.
pub fn plan_for(problem: &Problem<'_>, pruning: &FactPruning) -> Option<PlanCandidate> {
    let groups = problem.catalog.groups();
    match pruning {
        FactPruning::Off => None,
        FactPruning::Naive(config) => Some(naive_plan(groups, config)),
        FactPruning::Optimized(config) => {
            // Cost-based "if": tiny subsets are cheaper to evaluate
            // exhaustively than to plan for.
            if problem.catalog.rows() < config.min_rows {
                return None;
            }
            Some(optimal_plan(groups, problem.catalog.rows(), config))
        }
    }
}

/// Select the fact with the maximum utility gain for the current residuals.
///
/// With pruning off this evaluates every group (the joins of Algorithm 2
/// Line 7); otherwise it runs Algorithm 3: compute source-group gains,
/// check target bounds, skip dominated targets and their specializations,
/// then evaluate the surviving groups.
///
/// Returns `None` when no fact improves utility.
pub fn select_best_fact(
    problem: &Problem<'_>,
    residual: &ResidualState,
    pruning: &FactPruning,
    counters: &mut Instrumentation,
) -> Option<(FactId, f64)> {
    let plan = plan_for(problem, pruning);
    select_best_fact_with_plan(problem, residual, plan.as_ref(), counters)
}

/// [`select_best_fact`] with a pre-computed plan (`None` = no pruning).
pub fn select_best_fact_with_plan(
    problem: &Problem<'_>,
    residual: &ResidualState,
    plan: Option<&PlanCandidate>,
    counters: &mut Instrumentation,
) -> Option<(FactId, f64)> {
    let groups = problem.catalog.groups();
    let mut best: Option<(FactId, f64)> = None;
    let mut consider = |candidate: Option<(FactId, f64)>, best: &mut Option<(FactId, f64)>| {
        if let Some((id, gain)) = candidate {
            if best.is_none_or(|(_, g)| gain > g) {
                *best = Some((id, gain));
            }
        }
    };

    let mut scratch = Vec::new();
    match plan {
        None => {
            for g in 0..groups.len() {
                consider(
                    best_in_group(problem, residual, g, counters, &mut scratch),
                    &mut best,
                );
            }
        }
        Some(plan) => {
            run_plan(
                problem,
                residual,
                plan,
                counters,
                &mut scratch,
                &mut best,
                &mut consider,
            );
        }
    }
    best.filter(|&(_, gain)| gain > 0.0)
}

/// Pruning-off fact selection with the group sweep fanned over
/// `executor`: every group's gain pass is independent, so tasks sweep
/// strided subsets of the groups and the reduction below re-walks the
/// per-group winners in ascending group order. That reduction applies
/// the same strict-maximum rule as the sequential scan, so the selected
/// fact is identical for every worker count.
pub fn select_best_fact_parallel(
    problem: &Problem<'_>,
    residual: &ResidualState,
    executor: &dyn crate::algorithms::exec::SearchExecutor,
    workers: usize,
    counters: &mut Instrumentation,
) -> Option<(FactId, f64)> {
    let groups = problem.catalog.groups().len();
    let fan = workers.min(groups).max(1);
    if fan <= 1 {
        return select_best_fact_with_plan(problem, residual, None, counters);
    }
    let outputs = crate::algorithms::exec::run_collect(executor, fan, |t| {
        let mut local = Instrumentation::default();
        let mut scratch = Vec::new();
        let mut found: Vec<(usize, Option<(FactId, f64)>)> = Vec::new();
        let mut g = t;
        while g < groups {
            found.push((
                g,
                best_in_group(problem, residual, g, &mut local, &mut scratch),
            ));
            g += fan;
        }
        (found, local)
    });
    let mut per_group: Vec<Option<(FactId, f64)>> = vec![None; groups];
    for (_, (found, local)) in outputs {
        // Counter merging is commutative, so collection order is moot.
        counters.merge(&local);
        for (g, candidate) in found {
            per_group[g] = candidate;
        }
    }
    let mut best: Option<(FactId, f64)> = None;
    for (id, gain) in per_group.into_iter().flatten() {
        if best.is_none_or(|(_, g)| gain > g) {
            best = Some((id, gain));
        }
    }
    best.filter(|&(_, gain)| gain > 0.0)
}

fn run_plan(
    problem: &Problem<'_>,
    residual: &ResidualState,
    plan: &PlanCandidate,
    counters: &mut Instrumentation,
    scratch: &mut Vec<f64>,
    best: &mut Option<(FactId, f64)>,
    consider: &mut impl FnMut(Option<(FactId, f64)>, &mut Option<(FactId, f64)>),
) {
    let groups = problem.catalog.groups();
    let mut alive = vec![true; groups.len()];
    let mut evaluated = vec![false; groups.len()];

    // Line 9: utility for the pruning sources; m is their best gain.
    let mut threshold = 0.0f64;
    for &s in &plan.sources {
        let candidate = best_in_group(problem, residual, s, counters, scratch);
        if let Some((_, gain)) = candidate {
            threshold = threshold.max(gain);
        }
        consider(candidate, best);
        evaluated[s] = true;
    }

    // Lines 11–22: check targets, prune dominated groups + specializations.
    // As in the paper's Example 8 ("assume we calculate utility gain of
    // the fact stating average delays in the North *first* — based on its
    // utility gain and the upper bounds we can exclude all other facts"),
    // the threshold grows with every gain actually computed: a target
    // that survives its bound check is evaluated immediately so later
    // targets face the strongest available threshold.
    for &t in &plan.targets {
        if !alive[t] {
            continue; // already pruned as a specialization of an earlier target
        }
        let bound = problem.catalog.group_bound(residual, t, counters);
        if threshold > bound {
            for (g, group) in groups.iter().enumerate() {
                if alive[g] && !evaluated[g] && groups[t].mask & group.mask == groups[t].mask {
                    alive[g] = false;
                    counters.groups_pruned += 1;
                }
            }
        } else {
            let candidate = best_in_group(problem, residual, t, counters, scratch);
            if let Some((_, gain)) = candidate {
                threshold = threshold.max(gain);
            }
            consider(candidate, best);
            evaluated[t] = true;
        }
    }

    // Line 24: utility for the surviving groups.
    for g in 0..groups.len() {
        if alive[g] && !evaluated[g] {
            consider(best_in_group(problem, residual, g, counters, scratch), best);
        }
    }
}

/// Gains of one group; returns its best fact. `scratch` is a reusable
/// gains buffer so a sweep over many groups allocates once.
fn best_in_group(
    problem: &Problem<'_>,
    residual: &ResidualState,
    group: usize,
    counters: &mut Instrumentation,
    scratch: &mut Vec<f64>,
) -> Option<(FactId, f64)> {
    problem
        .catalog
        .group_gains_into(problem.relation, residual, group, counters, scratch);
    let start = problem.catalog.groups()[group].fact_start;
    scratch
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(offset, &gain)| (start + offset, gain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::{fig1_relation, random_relation};
    use crate::enumeration::FactCatalog;

    #[test]
    fn all_strategies_select_a_max_gain_fact() {
        let r = fig1_relation();
        // Example 7 fact pool (no overall-average fact).
        let catalog = FactCatalog::build_with_scope_sizes(&r, &[0, 1], 1, 2).unwrap();
        let problem = Problem::new(&r, &catalog, 3).unwrap();
        let residual = ResidualState::new(&r);
        for pruning in [
            FactPruning::Off,
            FactPruning::naive(),
            FactPruning::optimized(),
        ] {
            let mut counters = Instrumentation::default();
            let (id, gain) =
                select_best_fact(&problem, &residual, &pruning, &mut counters).unwrap();
            // First greedy pick on Fig. 1 has gain 40 (Winter or North).
            assert_eq!(gain, 40.0, "strategy {pruning:?}");
            let fact = catalog.fact(id);
            assert_eq!(fact.value, 15.0);
            assert_eq!(fact.scope.len(), 1);
        }
    }

    #[test]
    fn pruned_selection_matches_unpruned_on_random_data() {
        for seed in 0..10 {
            let r = random_relation(seed, 300, &[("a", 4), ("b", 7), ("c", 3)]);
            let catalog = FactCatalog::build(&r, &[0, 1, 2], 2).unwrap();
            let problem = Problem::new(&r, &catalog, 3).unwrap();
            let residual = ResidualState::new(&r);
            let mut c0 = Instrumentation::default();
            let mut c1 = Instrumentation::default();
            let mut c2 = Instrumentation::default();
            let off = select_best_fact(&problem, &residual, &FactPruning::Off, &mut c0);
            let naive = select_best_fact(&problem, &residual, &FactPruning::naive(), &mut c1);
            let opt = select_best_fact(&problem, &residual, &FactPruning::optimized(), &mut c2);
            let gain = |x: &Option<(FactId, f64)>| x.map(|(_, g)| g).unwrap_or(0.0);
            // Pruning must not change the selected gain (guarantee of §VI-A).
            assert!((gain(&off) - gain(&naive)).abs() < 1e-9, "seed {seed}");
            assert!((gain(&off) - gain(&opt)).abs() < 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn pruning_reduces_gain_passes_on_skewed_data() {
        // Construct data where the coarse fact explains everything, so all
        // fine-grained groups are prunable after the first bound check.
        let r = random_relation(3, 2000, &[("a", 2), ("b", 30), ("c", 30)]);
        let catalog = FactCatalog::build(&r, &[0, 1, 2], 2).unwrap();
        let problem = Problem::new(&r, &catalog, 3).unwrap();
        let residual = ResidualState::new(&r);
        let mut off = Instrumentation::default();
        let mut opt = Instrumentation::default();
        select_best_fact(&problem, &residual, &FactPruning::Off, &mut off);
        select_best_fact(&problem, &residual, &FactPruning::optimized(), &mut opt);
        assert_eq!(off.groups_pruned, 0);
        // The optimized plan must never do more gain passes than no pruning.
        assert!(opt.gain_passes <= off.gain_passes);
    }

    #[test]
    fn returns_none_when_nothing_helps() {
        // Prior already matches the data exactly.
        let r = random_relation(1, 50, &[("a", 3)]);
        let perfect = r
            .clone()
            .with_prior(crate::model::relation::Prior::PerRow(r.targets().to_vec()))
            .unwrap();
        let catalog = FactCatalog::build(&perfect, &[0], 1).unwrap();
        let problem = Problem::new(&perfect, &catalog, 2).unwrap();
        let residual = ResidualState::new(&perfect);
        let mut counters = Instrumentation::default();
        assert!(select_best_fact(&problem, &residual, &FactPruning::Off, &mut counters).is_none());
    }
}
