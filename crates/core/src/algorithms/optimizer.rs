//! The pruning-plan cost model and optimizer of §VI-C/§VI-D.
//!
//! A pruning *plan* is a pair `(S, T)`: utility is computed first for the
//! *source* groups `S`; the best gain found there is then compared against
//! cheap deviation upper bounds of the *target* groups `T`, and dominated
//! targets (with all their specializations) are skipped. The optimizer
//! enumerates the candidate plans of Algorithm 4 and picks the one with the
//! lowest estimated cost under the §VI-C model.

use vqs_relalg::cost::CostModel;

use crate::enumeration::FactGroup;

/// Configuration of the plan optimizer.
#[derive(Debug, Clone)]
pub struct PruneOptimizerConfig {
    /// Operator cost model (join vs group-by asymmetry).
    pub cost_model: CostModel,
    /// Standard deviation `σ` of the per-fact utility distribution
    /// (§VI-C models per-fact utility as `N(1/M(g), σ²)` after normalizing
    /// total utility mass to 1).
    pub sigma: f64,
    /// Below this relation size, cost-based planning skips pruning
    /// entirely: per-pass setup dominates tiny subsets and the planning
    /// effort cannot amortize. This is the "decide *if* … to try
    /// excluding facts" half of §VI-A, and it is what separates G-O from
    /// the naive G-P, which pays pruning overheads unconditionally
    /// ("naive pruning may even increase computational overheads").
    pub min_rows: usize,
}

impl Default for PruneOptimizerConfig {
    fn default() -> Self {
        // σ = 0.1 makes a coarse group (M=1..4) reliably dominate fine
        // groups (M ≥ 50) while keeping mid-size comparisons uncertain,
        // which matches the paper's qualitative description.
        PruneOptimizerConfig {
            cost_model: CostModel::default(),
            sigma: 0.1,
            min_rows: 256,
        }
    }
}

/// A candidate pruning plan over group indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanCandidate {
    /// Source groups: gains computed unconditionally, their maximum is the
    /// pruning threshold.
    pub sources: Vec<usize>,
    /// Target groups, in the order their bounds are checked.
    pub targets: Vec<usize>,
}

/// `Φ`, the standard normal CDF, via the Abramowitz–Stegun erf
/// approximation (maximum absolute error ≈ 1.5e-7 — far below what the
/// cost model needs).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// `Pr(P_{s→t})`: probability that the maximum utility in source group `s`
/// exceeds the bound of target group `t`, comparing `N(1/M(s), σ²)` with
/// `N(1/M(t), σ²)` (§VI-C): `Φ((1/M(s) − 1/M(t)) / (σ√2))`.
pub fn prune_probability(m_source: usize, m_target: usize, sigma: f64) -> f64 {
    let mu_s = 1.0 / m_source.max(1) as f64;
    let mu_t = 1.0 / m_target.max(1) as f64;
    normal_cdf((mu_s - mu_t) / (sigma * std::f64::consts::SQRT_2))
}

/// Dense matrix of `Pr(P_{s→t})` over group pairs, computed once per
/// optimization (the `erf` behind `Φ` is by far the hottest part of plan
/// enumeration).
struct ProbMatrix {
    probs: Vec<f64>,
    n: usize,
}

impl ProbMatrix {
    fn new(groups: &[FactGroup], sigma: f64) -> ProbMatrix {
        let n = groups.len();
        let mut probs = vec![0.0; n * n];
        for s in 0..n {
            for t in 0..n {
                probs[s * n + t] =
                    prune_probability(groups[s].fact_count, groups[t].fact_count, sigma);
            }
        }
        ProbMatrix { probs, n }
    }

    #[inline]
    fn get(&self, s: usize, t: usize) -> f64 {
        self.probs[s * self.n + t]
    }
}

/// `Pr(P_t)` given sources `S`: `1 − Π_s (1 − Pr(P_{s→t}))`.
fn target_prune_probability(matrix: &ProbMatrix, sources: &[usize], t: usize) -> f64 {
    let mut keep = 1.0;
    for &s in sources {
        keep *= 1.0 - matrix.get(s, t);
    }
    1.0 - keep
}

/// The heuristic `H(t, S, L) = Pr(P_t) · |{l ∈ L : t ⊆ l}|`: the expected
/// number of groups removed by checking target `t` (Algorithm 4).
fn target_value(
    groups: &[FactGroup],
    matrix: &ProbMatrix,
    sources: &[usize],
    remaining: &[usize],
    t: usize,
) -> f64 {
    let specializations = remaining
        .iter()
        .filter(|&&l| groups[t].mask & groups[l].mask == groups[t].mask)
        .count();
    target_prune_probability(matrix, sources, t) * specializations as f64
}

/// Enumerate the plan candidates of Algorithm 4.
///
/// Sources are prefixes of the groups sorted by ascending fact count
/// ("prioritizes fact groups with few member facts"); for each source set,
/// targets are added greedily by `H`, each addition yielding one
/// candidate, and every chosen target removes its specializations from
/// further consideration. A no-pruning candidate (all groups are sources,
/// no targets) is always included so the optimizer can decide *whether*
/// to prune at all.
pub fn enumerate_plans(groups: &[FactGroup], config: &PruneOptimizerConfig) -> Vec<PlanCandidate> {
    let mut by_size: Vec<usize> = (0..groups.len()).collect();
    by_size.sort_by_key(|&g| (groups[g].fact_count, groups[g].mask));

    // §VI-D: "To reduce optimization overheads, we use several heuristics
    // to obtain a smaller set of candidate plans." Beyond the paper's
    // prefix restriction we grow prefixes geometrically past 4 — adjacent
    // prefix sizes yield nearly identical costs, so this loses little
    // while keeping per-problem optimization cheap.
    let mut prefixes: Vec<usize> = Vec::new();
    let mut size = 1usize;
    while size < groups.len() {
        prefixes.push(size);
        size = if size < 4 { size + 1 } else { size + size / 2 };
    }

    let matrix = ProbMatrix::new(groups, config.sigma);
    let mut plans = Vec::new();
    for prefix in prefixes {
        let sources: Vec<usize> = by_size[..prefix].to_vec();
        let mut remaining: Vec<usize> = by_size[prefix..].to_vec();
        let mut targets: Vec<usize> = Vec::new();
        while !remaining.is_empty() {
            let &t = remaining
                .iter()
                .max_by(|&&a, &&b| {
                    target_value(groups, &matrix, &sources, &remaining, a)
                        .total_cmp(&target_value(groups, &matrix, &sources, &remaining, b))
                })
                .expect("remaining is non-empty");
            targets.push(t);
            plans.push(PlanCandidate {
                sources: sources.clone(),
                targets: targets.clone(),
            });
            remaining.retain(|&l| groups[t].mask & groups[l].mask != groups[t].mask);
        }
    }
    // Degenerate plan: compute everything, prune nothing.
    plans.push(PlanCandidate {
        sources: by_size,
        targets: Vec::new(),
    });
    plans
}

/// Estimated execution cost of a plan (§VI-C):
/// `Σ_s CU(s) + Σ_t CD(t) + Σ_{g∈G\S} Pr(¬P_g)·CU(g)`.
pub fn plan_cost(
    groups: &[FactGroup],
    rows: usize,
    plan: &PlanCandidate,
    config: &PruneOptimizerConfig,
) -> f64 {
    let matrix = ProbMatrix::new(groups, config.sigma);
    plan_cost_with(groups, rows, plan, config, &matrix)
}

fn plan_cost_with(
    groups: &[FactGroup],
    rows: usize,
    plan: &PlanCandidate,
    config: &PruneOptimizerConfig,
    matrix: &ProbMatrix,
) -> f64 {
    let cu = |g: usize| config.cost_model.utility_cost(rows, groups[g].fact_count);
    let cd = |g: usize| config.cost_model.deviation_cost(rows, groups[g].fact_count);

    let mut cost = 0.0;
    for &s in &plan.sources {
        cost += cu(s);
    }
    for &t in &plan.targets {
        cost += cd(t);
    }
    for g in 0..groups.len() {
        if plan.sources.contains(&g) {
            continue;
        }
        // Pr(¬P_g) = Π_{s∈S} Π_{t∈T: t⊆g} (1 − Pr(P_{s→t})).
        let mut survive = 1.0;
        for &t in &plan.targets {
            if groups[t].mask & groups[g].mask != groups[t].mask {
                continue;
            }
            for &s in &plan.sources {
                survive *= 1.0 - matrix.get(s, t);
            }
        }
        cost += survive * cu(g);
    }
    cost
}

/// `OPTPRUNE`: the minimum-cost candidate plan.
pub fn optimal_plan(
    groups: &[FactGroup],
    rows: usize,
    config: &PruneOptimizerConfig,
) -> PlanCandidate {
    let matrix = ProbMatrix::new(groups, config.sigma);
    let plans = enumerate_plans(groups, config);
    plans
        .into_iter()
        .min_by(|a, b| {
            plan_cost_with(groups, rows, a, config, &matrix)
                .total_cmp(&plan_cost_with(groups, rows, b, config, &matrix))
        })
        .expect("enumerate_plans always yields at least one candidate")
}

/// The naive plan used by the paper's G-P variant: the smallest-source
/// candidate whose target list covers all remaining groups "in the same
/// order in which they are considered by Algorithm 4" — i.e. the last
/// candidate generated for the first source prefix.
pub fn naive_plan(groups: &[FactGroup], config: &PruneOptimizerConfig) -> PlanCandidate {
    let matrix = ProbMatrix::new(groups, config.sigma);
    let mut by_size: Vec<usize> = (0..groups.len()).collect();
    by_size.sort_by_key(|&g| (groups[g].fact_count, groups[g].mask));
    let sources = vec![by_size[0]];
    let mut remaining: Vec<usize> = by_size[1..].to_vec();
    let mut targets = Vec::new();
    while !remaining.is_empty() {
        let &t = remaining
            .iter()
            .max_by(|&&a, &&b| {
                target_value(groups, &matrix, &sources, &remaining, a)
                    .total_cmp(&target_value(groups, &matrix, &sources, &remaining, b))
            })
            .expect("remaining is non-empty");
        targets.push(t);
        remaining.retain(|&l| groups[t].mask & groups[l].mask != groups[t].mask);
    }
    PlanCandidate { sources, targets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::random_relation;
    use crate::enumeration::FactCatalog;

    fn groups() -> Vec<FactGroup> {
        let r = random_relation(7, 200, &[("a", 3), ("b", 8), ("c", 20)]);
        FactCatalog::build(&r, &[0, 1, 2], 2)
            .unwrap()
            .groups()
            .to_vec()
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(normal_cdf(3.0) > 0.998);
        assert!(normal_cdf(-3.0) < 0.002);
        // Symmetry.
        assert!((normal_cdf(1.2) + normal_cdf(-1.2) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn prune_probability_prefers_small_sources() {
        // A coarse source (few facts, high expected utility) should
        // dominate a fine-grained target with high probability.
        let p = prune_probability(1, 100, 0.1);
        assert!(p > 0.99, "p = {p}");
        // Equal sizes: a coin flip.
        assert!((prune_probability(10, 10, 0.1) - 0.5).abs() < 1e-9);
        // Reversed: nearly never.
        assert!(prune_probability(100, 1, 0.1) < 0.01);
    }

    #[test]
    fn enumerate_includes_no_pruning_plan() {
        let groups = groups();
        let config = PruneOptimizerConfig::default();
        let plans = enumerate_plans(&groups, &config);
        assert!(plans
            .iter()
            .any(|p| p.targets.is_empty() && p.sources.len() == groups.len()));
        // Every candidate's sources are disjoint from its targets.
        for plan in &plans {
            for t in &plan.targets {
                assert!(!plan.sources.contains(t));
            }
        }
    }

    #[test]
    fn optimal_plan_beats_or_matches_naive() {
        let groups = groups();
        let config = PruneOptimizerConfig::default();
        let optimal = optimal_plan(&groups, 200, &config);
        let naive = naive_plan(&groups, &config);
        assert!(
            plan_cost(&groups, 200, &optimal, &config)
                <= plan_cost(&groups, 200, &naive, &config) + 1e-9
        );
    }

    #[test]
    fn naive_plan_uses_smallest_group_as_source() {
        let groups = groups();
        let config = PruneOptimizerConfig::default();
        let plan = naive_plan(&groups, &config);
        assert_eq!(plan.sources.len(), 1);
        let min_count = groups.iter().map(|g| g.fact_count).min().unwrap();
        assert_eq!(groups[plan.sources[0]].fact_count, min_count);
        // Targets plus pruned specializations cover everything else.
        assert!(!plan.targets.is_empty());
    }

    #[test]
    fn plan_cost_penalizes_useless_bound_checks() {
        let groups = groups();
        let config = PruneOptimizerConfig::default();
        // A plan whose targets can never be pruned (source = largest group)
        // must cost more than just computing everything.
        let mut by_size: Vec<usize> = (0..groups.len()).collect();
        by_size.sort_by_key(|&g| groups[g].fact_count);
        let worst = PlanCandidate {
            sources: vec![*by_size.last().unwrap()],
            targets: by_size[..by_size.len() - 1].to_vec(),
        };
        let all_sources = PlanCandidate {
            sources: by_size,
            targets: Vec::new(),
        };
        assert!(
            plan_cost(&groups, 200, &worst, &config)
                > plan_cost(&groups, 200, &all_sources, &config) * 0.9
        );
    }
}
