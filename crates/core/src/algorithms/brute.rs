//! Reference brute-force summarizer: evaluates every fact combination.
//!
//! Exponential (`O(n · C(k, m))`, the complexity the paper proves for the
//! un-pruned exhaustive search in Theorem 5) and used only to validate the
//! optimized algorithms on small instances.

use crate::algorithms::{summary_from_ids, Problem, Summarizer, Summary};
use crate::error::Result;
use crate::instrument::Instrumentation;
use crate::model::fact::FactId;
use crate::model::utility::{ResidualState, UndoArena};

/// Exhaustive enumeration without any pruning.
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForceSummarizer;

impl Summarizer for BruteForceSummarizer {
    fn name(&self) -> &'static str {
        "BF"
    }

    fn summarize(&self, problem: &Problem<'_>) -> Result<Summary> {
        let k = problem.catalog.len();
        let m = problem.max_facts.min(k);
        let mut counters = Instrumentation::default();
        let mut best: (f64, Vec<FactId>) = (f64::NEG_INFINITY, Vec::new());
        let mut chosen: Vec<FactId> = Vec::with_capacity(m);
        let mut state = ResidualState::new(problem.relation);
        let mut arena = UndoArena::new();
        recurse(
            problem,
            0,
            m,
            &mut chosen,
            &mut state,
            &mut arena,
            &mut best,
            &mut counters,
        );
        Ok(summary_from_ids(problem, &best.1, counters))
    }
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    problem: &Problem<'_>,
    start: usize,
    m: usize,
    chosen: &mut Vec<FactId>,
    state: &mut ResidualState,
    arena: &mut UndoArena,
    best: &mut (f64, Vec<FactId>),
    counters: &mut Instrumentation,
) {
    // Utility of the current (possibly partial) speech.
    let utility = {
        counters.speeches_evaluated += 1;
        // state.total() is D(F); utility = D(∅) − D(F) is tracked lazily via
        // comparison: smaller total is better, so compare totals directly.
        -state.total()
    };
    if utility > best.0 {
        *best = (utility, chosen.clone());
    }
    if chosen.len() == m {
        return;
    }
    for id in start..problem.catalog.len() {
        counters.nodes_expanded += 1;
        let (rows, devs) = problem.catalog.fact_index(id);
        counters.index_row_touches += rows.len() as u64;
        state.apply_indexed(rows, devs, arena);
        chosen.push(id);
        recurse(problem, id + 1, m, chosen, state, arena, best, counters);
        chosen.pop();
        state.revert_frame(arena);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::testutil::fig1_relation;
    use crate::enumeration::FactCatalog;

    #[test]
    fn finds_optimum_on_fig1() {
        let r = fig1_relation();
        // Example 7's fact pool: specific region or season or both.
        let catalog = FactCatalog::build_with_scope_sizes(&r, &[0, 1], 1, 1).unwrap();
        let problem = Problem::new(&r, &catalog, 2).unwrap();
        let summary = BruteForceSummarizer.summarize(&problem).unwrap();
        // With single-dimension facts only, {Winter, North} (utility 65) is
        // optimal for m = 2.
        assert_eq!(summary.utility, 65.0);
        assert_eq!(summary.speech.len(), 2);
    }

    #[test]
    fn respects_fact_budget() {
        let r = fig1_relation();
        let catalog = FactCatalog::build_with_scope_sizes(&r, &[0, 1], 1, 2).unwrap();
        let problem = Problem::new(&r, &catalog, 1).unwrap();
        let summary = BruteForceSummarizer.summarize(&problem).unwrap();
        assert!(summary.speech.len() <= 1);
        // Best single fact has utility 40 (Winter or North).
        assert_eq!(summary.utility, 40.0);
    }

    #[test]
    fn overall_average_fact_dominates_when_allowed() {
        // With the empty scope included, the overall average (7.5) alone
        // already has utility 60 on the Fig. 1 grid.
        let r = fig1_relation();
        let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
        let problem = Problem::new(&r, &catalog, 1).unwrap();
        let summary = BruteForceSummarizer.summarize(&problem).unwrap();
        assert_eq!(summary.utility, 60.0);
    }

    #[test]
    fn handles_budget_larger_than_catalog() {
        let r = fig1_relation();
        let catalog = FactCatalog::build(&r, &[], 0).unwrap(); // only the overall fact
        let problem = Problem::new(&r, &catalog, 5).unwrap();
        let summary = BruteForceSummarizer.summarize(&problem).unwrap();
        assert_eq!(summary.speech.len(), 1);
    }
}
