//! Executor abstraction for the solver's inner fan-out.
//!
//! The exact search (and optionally the greedy group sweep) fans work
//! units over multiple threads. Where those threads come from is a
//! deployment concern, not an algorithm concern: a standalone experiment
//! is happy spawning scoped threads per search, while the serving engine
//! wants every search to ride its long-lived worker pool so no request
//! pays thread-spawn latency. [`SearchExecutor`] is the seam between the
//! two — `vqs-core` codes against the trait, and the engine implements it
//! for its pool (`vqs-engine`'s `SolverPool`) without `vqs-core` ever
//! depending on the engine.
//!
//! The contract is deliberately minimal: [`SearchExecutor::run`] must
//! invoke `task(i)` exactly once for every `i in 0..tasks` and return
//! only after all invocations finished. Tasks may run on any thread, in
//! any order, with any degree of concurrency — including entirely inline
//! on the calling thread. The solver's determinism never depends on the
//! schedule: worker outputs are reduced with commutative merges and a
//! deterministic second pass (see `exact.rs`).

use std::sync::Mutex;

/// A provider of bounded, blocking fan-out for search workers.
pub trait SearchExecutor: Send + Sync {
    /// Upper bound on useful concurrency (e.g. the pool's worker count).
    /// Used to resolve a "use all available workers" configuration.
    fn max_workers(&self) -> usize;

    /// Invoke `task(i)` exactly once for each `i in 0..tasks`, returning
    /// after every invocation completed. Implementations may run tasks
    /// concurrently on other threads or sequentially on the caller.
    fn run(&self, tasks: usize, task: &(dyn Fn(usize) + Sync));
}

/// The default executor: scoped threads spawned per call.
///
/// Task 0 runs on the calling thread, so `run(n, _)` spawns `n − 1`
/// threads and a single-task fan-out spawns none.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScopedExecutor;

impl SearchExecutor for ScopedExecutor {
    fn max_workers(&self) -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    fn run(&self, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        match tasks {
            0 => {}
            1 => task(0),
            _ => std::thread::scope(|scope| {
                for i in 1..tasks {
                    scope.spawn(move || task(i));
                }
                task(0);
            }),
        }
    }
}

/// Run `tasks` closures on `executor` and collect each one's output.
///
/// The executor contract says nothing about completion *order*, so the
/// outputs come back unordered alongside their task index. Callers that
/// need determinism must either reduce commutatively or sort by index.
pub fn run_collect<T: Send>(
    executor: &dyn SearchExecutor,
    tasks: usize,
    task: impl Fn(usize) -> T + Sync,
) -> Vec<(usize, T)> {
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(tasks));
    executor.run(tasks, &|i| {
        let value = task(i);
        results
            .lock()
            .expect("executor result sink poisoned")
            .push((i, value));
    });
    results.into_inner().expect("executor result sink poisoned")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_executor_runs_each_task_once() {
        let hits = AtomicUsize::new(0);
        ScopedExecutor.run(8, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn scoped_executor_handles_degenerate_widths() {
        let hits = AtomicUsize::new(0);
        ScopedExecutor.run(0, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0);
        ScopedExecutor.run(1, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert!(ScopedExecutor.max_workers() >= 1);
    }

    #[test]
    fn run_collect_returns_every_task_output() {
        let mut out = run_collect(&ScopedExecutor, 6, |i| i * i);
        out.sort_by_key(|&(i, _)| i);
        let values: Vec<usize> = out.into_iter().map(|(_, v)| v).collect();
        assert_eq!(values, vec![0, 1, 4, 9, 16, 25]);
    }
}
