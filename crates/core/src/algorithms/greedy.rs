//! The greedy summarizer (Algorithm 2, §V).
//!
//! Iteratively adds the fact with the highest utility gain. By Theorem 3
//! (submodularity of utility + Nemhauser/Wolsey), the result is within a
//! factor `1 − 1/e ≈ 0.632` of the optimum. The three experimental
//! variants G-B / G-P / G-O differ only in the [`FactPruning`] strategy
//! used to find each iteration's best fact.

use std::sync::Arc;

use crate::algorithms::exec::{ScopedExecutor, SearchExecutor};
use crate::algorithms::pruning::FactPruning;
use crate::algorithms::{summary_from_ids, Problem, Summarizer, Summary};
use crate::error::Result;
use crate::instrument::Instrumentation;
use crate::model::fact::FactId;
use crate::model::utility::{ResidualState, UndoArena};

/// Greedy fact selection with configurable pruning.
#[derive(Clone)]
pub struct GreedySummarizer {
    /// Per-iteration fact pruning strategy.
    pub pruning: FactPruning,
    /// Worker tasks for the unpruned per-iteration group sweep. `1` (the
    /// default) sweeps sequentially; `0` resolves to the executor's
    /// maximum. Only the pruning-off sweep fans out — Algorithm 3's
    /// threshold-growing plan execution is inherently sequential. The
    /// selected facts are identical for every worker count.
    pub workers: usize,
    /// Where the sweep fan-out runs: `None` (the default) spawns scoped
    /// threads; the engine installs its shared solver pool here.
    pub executor: Option<Arc<dyn SearchExecutor>>,
}

impl std::fmt::Debug for GreedySummarizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GreedySummarizer")
            .field("pruning", &self.pruning)
            .field("workers", &self.workers)
            .field("executor", &self.executor.is_some())
            .finish()
    }
}

impl Default for GreedySummarizer {
    fn default() -> Self {
        GreedySummarizer {
            pruning: FactPruning::default(),
            workers: 1,
            executor: None,
        }
    }
}

impl GreedySummarizer {
    /// G-B: the base greedy without pruning.
    pub fn base() -> Self {
        GreedySummarizer {
            pruning: FactPruning::Off,
            ..Self::default()
        }
    }

    /// G-P: greedy with naive fact pruning.
    pub fn with_naive_pruning() -> Self {
        GreedySummarizer {
            pruning: FactPruning::naive(),
            ..Self::default()
        }
    }

    /// G-O: greedy with cost-optimized fact pruning.
    pub fn with_optimized_pruning() -> Self {
        GreedySummarizer {
            pruning: FactPruning::optimized(),
            ..Self::default()
        }
    }

    /// Route this summarizer's sweep fan-out through `executor` (e.g. the
    /// engine's shared solver pool) instead of per-call scoped threads.
    pub fn on_executor(mut self, executor: Arc<dyn SearchExecutor>) -> Self {
        self.executor = Some(executor);
        self
    }
}

impl Summarizer for GreedySummarizer {
    fn name(&self) -> &'static str {
        match self.pruning {
            FactPruning::Off => "G-B",
            FactPruning::Naive(_) => "G-P",
            FactPruning::Optimized(_) => "G-O",
        }
    }

    fn summarize(&self, problem: &Problem<'_>) -> Result<Summary> {
        let mut counters = Instrumentation::default();
        let mut residual = ResidualState::new(problem.relation);
        let mut chosen: Vec<FactId> = Vec::with_capacity(problem.max_facts);
        let mut arena = UndoArena::new();
        // OPT PRUNE depends only on static group statistics: plan once.
        let plan = crate::algorithms::pruning::plan_for(problem, &self.pruning);
        let scoped = ScopedExecutor;
        let executor: &dyn SearchExecutor = match &self.executor {
            Some(executor) => executor.as_ref(),
            None => &scoped,
        };
        let workers = if self.workers == 0 {
            executor.max_workers().max(1)
        } else {
            self.workers
        };
        // Only the pruning-off full sweep fans out: every group's gains
        // are independent there, while the Algorithm 3 plan grows its
        // threshold serially across target groups.
        let fan_sweep = plan.is_none() && workers > 1 && problem.catalog.groups().len() > 1;
        for _ in 0..problem.max_facts {
            // Line 7–9: fact with maximal utility gain.
            let selected = if fan_sweep {
                crate::algorithms::pruning::select_best_fact_parallel(
                    problem,
                    &residual,
                    executor,
                    workers,
                    &mut counters,
                )
            } else {
                crate::algorithms::pruning::select_best_fact_with_plan(
                    problem,
                    &residual,
                    plan.as_ref(),
                    &mut counters,
                )
            };
            let Some((fact_id, _gain)) = selected else {
                break; // no fact improves expectations further
            };
            // Line 11: recalculate user expectations — through the
            // catalog's inverted index, touching only in-scope rows.
            let (rows, devs) = problem.catalog.fact_index(fact_id);
            counters.index_row_touches += rows.len() as u64;
            residual.apply_indexed(rows, devs, &mut arena);
            arena.clear(); // greedy never backtracks
            chosen.push(fact_id);
        }
        Ok(summary_from_ids(problem, &chosen, counters))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::brute::BruteForceSummarizer;
    use crate::algorithms::testutil::{fig1_relation, random_relation};
    use crate::enumeration::FactCatalog;

    #[test]
    fn example7_greedy_selects_winter_then_north() {
        let r = fig1_relation();
        // Example 7 considers "all facts … within a specific region or
        // season or both" — no overall-average fact.
        let catalog = FactCatalog::build_with_scope_sizes(&r, &[0, 1], 1, 2).unwrap();
        let problem = Problem::new(&r, &catalog, 2).unwrap();
        let summary = GreedySummarizer::base().summarize(&problem).unwrap();
        // Example 7: first pick has utility 40 (Winter or North), second
        // adds gain 25 — total 65.
        assert_eq!(summary.utility, 65.0);
        let scopes: Vec<usize> = summary
            .speech
            .facts()
            .iter()
            .map(|f| f.scope.len())
            .collect();
        assert_eq!(scopes, vec![1, 1]);
        assert!(summary.speech.facts().iter().all(|f| f.value == 15.0));
    }

    #[test]
    fn all_variants_agree_on_utility() {
        for seed in 0..8 {
            let r = random_relation(seed, 200, &[("a", 5), ("b", 4), ("c", 6)]);
            let catalog = FactCatalog::build(&r, &[0, 1, 2], 2).unwrap();
            let problem = Problem::new(&r, &catalog, 3).unwrap();
            let base = GreedySummarizer::base().summarize(&problem).unwrap();
            let naive = GreedySummarizer::with_naive_pruning()
                .summarize(&problem)
                .unwrap();
            let optimized = GreedySummarizer::with_optimized_pruning()
                .summarize(&problem)
                .unwrap();
            assert!((base.utility - naive.utility).abs() < 1e-9, "seed {seed}");
            assert!(
                (base.utility - optimized.utility).abs() < 1e-9,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn greedy_within_theoretical_factor_of_optimum() {
        // Theorem 3: greedy ≥ (1 − 1/e) · OPT.
        let factor = 1.0 - 1.0 / std::f64::consts::E;
        for seed in 0..12 {
            let r = random_relation(100 + seed, 60, &[("a", 3), ("b", 3)]);
            let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
            let problem = Problem::new(&r, &catalog, 3).unwrap();
            let greedy = GreedySummarizer::base().summarize(&problem).unwrap();
            let optimal = BruteForceSummarizer.summarize(&problem).unwrap();
            assert!(
                greedy.utility >= factor * optimal.utility - 1e-9,
                "seed {seed}: greedy {} < {} * optimal {}",
                greedy.utility,
                factor,
                optimal.utility
            );
        }
    }

    #[test]
    fn stops_early_when_no_gain_remains() {
        let r = fig1_relation();
        let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
        // Budget far larger than useful facts: greedy stops once residual
        // error hits zero.
        let problem = Problem::new(&r, &catalog, 16).unwrap();
        let summary = GreedySummarizer::base().summarize(&problem).unwrap();
        assert!(summary.speech.len() < 16);
        assert_eq!(summary.error(), 0.0);
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(GreedySummarizer::base().name(), "G-B");
        assert_eq!(GreedySummarizer::with_naive_pruning().name(), "G-P");
        assert_eq!(GreedySummarizer::with_optimized_pruning().name(), "G-O");
    }

    /// The fanned-out group sweep must pick exactly the facts the
    /// sequential sweep picks, for any worker count.
    #[test]
    fn parallel_sweep_matches_sequential_selection() {
        for seed in 40..46 {
            let r = random_relation(seed, 200, &[("a", 5), ("b", 4), ("c", 3)]);
            let catalog = FactCatalog::build(&r, &[0, 1, 2], 2).unwrap();
            let problem = Problem::new(&r, &catalog, 3).unwrap();
            let sequential = GreedySummarizer::base().summarize(&problem).unwrap();
            for workers in [0usize, 2, 8] {
                let parallel = GreedySummarizer {
                    workers,
                    ..GreedySummarizer::base()
                }
                .summarize(&problem)
                .unwrap();
                assert_eq!(
                    parallel.utility.to_bits(),
                    sequential.utility.to_bits(),
                    "seed {seed} workers {workers}"
                );
                assert_eq!(
                    parallel.speech.facts(),
                    sequential.speech.facts(),
                    "seed {seed} workers {workers}"
                );
            }
        }
    }
}
