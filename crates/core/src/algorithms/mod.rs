//! The summarization algorithms of §IV–§VI.
//!
//! * [`BruteForceSummarizer`] — reference enumeration (tests/baselines).
//! * [`ExactSummarizer`] — Algorithm 1: guaranteed-optimal search with
//!   permutation and utility-bound pruning.
//! * [`GreedySummarizer`] — Algorithm 2: the (1−1/e)-approximate greedy,
//!   optionally with Algorithm 3 fact-group pruning in its naive (G-P) or
//!   cost-optimized (G-O) variant.

pub mod brute;
pub mod exact;
pub mod exec;
pub mod greedy;
pub mod optimizer;
pub mod pruning;

pub use brute::BruteForceSummarizer;
pub use exact::{ExactSummarizer, DEFAULT_FAN_OUT_THRESHOLD};
pub use exec::{ScopedExecutor, SearchExecutor};
pub use greedy::GreedySummarizer;
pub use optimizer::{PlanCandidate, PruneOptimizerConfig};
pub use pruning::FactPruning;

use crate::enumeration::FactCatalog;
use crate::error::{CoreError, Result};
use crate::instrument::Instrumentation;
use crate::model::relation::EncodedRelation;
use crate::model::speech::Speech;
use crate::model::utility;

/// One speech summarization problem instance `⟨R, F, m⟩` (Definition 7).
#[derive(Debug, Clone, Copy)]
pub struct Problem<'a> {
    /// The relation to summarize.
    pub relation: &'a EncodedRelation,
    /// The available facts.
    pub catalog: &'a FactCatalog,
    /// Maximum number of facts in the speech (`m`).
    pub max_facts: usize,
}

impl<'a> Problem<'a> {
    /// Build a problem instance; validates that the catalog was built over
    /// this relation and that at least one fact is requested.
    pub fn new(
        relation: &'a EncodedRelation,
        catalog: &'a FactCatalog,
        max_facts: usize,
    ) -> Result<Self> {
        if max_facts == 0 {
            return Err(CoreError::InvalidProblem {
                detail: "a speech must be allowed at least one fact".to_string(),
            });
        }
        if catalog.rows() != relation.len() {
            return Err(CoreError::InvalidProblem {
                detail: format!(
                    "catalog built over {} rows but relation has {}",
                    catalog.rows(),
                    relation.len()
                ),
            });
        }
        Ok(Problem {
            relation,
            catalog,
            max_facts,
        })
    }
}

/// The result of summarizing one problem instance.
#[derive(Debug, Clone)]
pub struct Summary {
    /// The selected speech.
    pub speech: Speech,
    /// Its utility `U(F)`.
    pub utility: f64,
    /// The base error `D(∅)` of the instance.
    pub base_error: f64,
    /// Work counters accumulated by the algorithm.
    pub instrumentation: Instrumentation,
    /// True when a time budget expired before the search completed; the
    /// speech is then the best found so far, with no optimality guarantee
    /// (the paper's Fig. 3 runs with a 48-hour timeout).
    pub timed_out: bool,
}

impl Summary {
    /// Utility scaled into `[0, 1]` by the base error.
    pub fn scaled_utility(&self) -> f64 {
        if self.base_error == 0.0 {
            1.0
        } else {
            self.utility / self.base_error
        }
    }

    /// Residual error `D(F) = D(∅) − U(F)`.
    pub fn error(&self) -> f64 {
        self.base_error - self.utility
    }
}

/// A speech summarization algorithm.
pub trait Summarizer {
    /// Short identifier used in experiment output (e.g. "G-O").
    fn name(&self) -> &'static str;

    /// Solve one problem instance.
    fn summarize(&self, problem: &Problem<'_>) -> Result<Summary>;

    /// Solve one problem instance under an externally imposed wall-clock
    /// deadline (a serving-path request deadline, as opposed to the
    /// algorithm's own configured budget). Anytime algorithms return
    /// their best speech so far with [`Summary::timed_out`] set when the
    /// deadline expires; the default implementation ignores the deadline
    /// entirely, which is correct for polynomial-time algorithms whose
    /// single solve is far below any useful serving deadline.
    fn summarize_by(
        &self,
        problem: &Problem<'_>,
        deadline: Option<std::time::Instant>,
    ) -> Result<Summary> {
        let _ = deadline;
        self.summarize(problem)
    }
}

/// Assemble a [`Summary`] from selected fact ids, recomputing utility from
/// first principles (so algorithm bookkeeping bugs cannot misreport).
pub(crate) fn summary_from_ids(
    problem: &Problem<'_>,
    fact_ids: &[crate::model::fact::FactId],
    instrumentation: Instrumentation,
) -> Summary {
    let facts: Vec<_> = fact_ids
        .iter()
        .map(|&id| problem.catalog.fact(id).clone())
        .collect();
    let speech = Speech::new(facts);
    let base = utility::base_error(problem.relation);
    let u = speech.utility(problem.relation);
    Summary {
        speech,
        utility: u,
        base_error: base,
        instrumentation,
        timed_out: false,
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::model::relation::Prior;

    /// The canonical Fig. 1 grid (see DESIGN.md for the derivation).
    pub fn fig1_relation() -> EncodedRelation {
        EncodedRelation::from_rows(
            &["season", "region"],
            "delay",
            vec![
                (vec!["Spring", "East"], 0.0),
                (vec!["Spring", "South"], 0.0),
                (vec!["Spring", "West"], 0.0),
                (vec!["Spring", "North"], 20.0),
                (vec!["Summer", "East"], 0.0),
                (vec!["Summer", "South"], 20.0),
                (vec!["Summer", "West"], 0.0),
                (vec!["Summer", "North"], 10.0),
                (vec!["Fall", "East"], 0.0),
                (vec!["Fall", "South"], 0.0),
                (vec!["Fall", "West"], 0.0),
                (vec!["Fall", "North"], 10.0),
                (vec!["Winter", "East"], 20.0),
                (vec!["Winter", "South"], 10.0),
                (vec!["Winter", "West"], 10.0),
                (vec!["Winter", "North"], 20.0),
            ],
            Prior::Constant(0.0),
        )
        .unwrap()
    }

    /// A small random relation for cross-checking algorithms.
    pub fn random_relation(seed: u64, rows: usize, dims: &[(&str, usize)]) -> EncodedRelation {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let dim_names: Vec<&str> = dims.iter().map(|&(n, _)| n).collect();
        let mut data = Vec::with_capacity(rows);
        let mut value_pool: Vec<Vec<String>> = Vec::new();
        for &(_, cardinality) in dims {
            value_pool.push((0..cardinality).map(|i| format!("v{i}")).collect());
        }
        for _ in 0..rows {
            let values: Vec<&str> = value_pool
                .iter()
                .map(|pool| pool[rng.gen_range(0..pool.len())].as_str())
                .collect();
            let target = rng.gen_range(0.0..100.0_f64).round();
            data.push((values, target));
        }
        EncodedRelation::from_rows(&dim_names, "y", data, Prior::GlobalMean).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::fig1_relation;
    use super::*;

    #[test]
    fn problem_validation() {
        let r = fig1_relation();
        let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
        assert!(Problem::new(&r, &catalog, 3).is_ok());
        assert!(Problem::new(&r, &catalog, 0).is_err());
        let sub = r.subset(&[0, 1]).unwrap();
        assert!(Problem::new(&sub, &catalog, 3).is_err());
    }

    #[test]
    fn summary_scaling() {
        let r = fig1_relation();
        let catalog = FactCatalog::build(&r, &[0, 1], 2).unwrap();
        let problem = Problem::new(&r, &catalog, 2).unwrap();
        // Find the Winter fact (utility 40).
        let winter = catalog
            .facts()
            .iter()
            .position(|f| f.scope.len() == 1 && f.value == 15.0 && f.scope.restricts(0))
            .unwrap();
        let summary = summary_from_ids(&problem, &[winter], Instrumentation::default());
        assert_eq!(summary.base_error, 120.0);
        assert_eq!(summary.utility, 40.0);
        assert_eq!(summary.error(), 80.0);
        assert!((summary.scaled_utility() - 40.0 / 120.0).abs() < 1e-12);
    }
}
