//! # vqs-core — optimal fact-set summarization for voice output
//!
//! Rust reproduction of *"Optimally Summarizing Data by Small Fact Sets
//! for Concise Answers to Voice Queries"* (Trummer & Anderson, ICDE 2021).
//!
//! Given a relation with dimension columns and one numeric target column,
//! the library selects a bounded set of *facts* — scoped averages such as
//! "the average delay in Winter is 15 minutes" — that minimizes the
//! deviation between a listener's induced expectations and the actual
//! data (§II). Solvers:
//!
//! * [`algorithms::ExactSummarizer`] — guaranteed optimal (Algorithm 1),
//! * [`algorithms::GreedySummarizer`] — `(1−1/e)`-approximate (Algorithm 2)
//!   with optional fact-group pruning (Algorithm 3) and a cost-based
//!   pruning-plan optimizer (Algorithm 4),
//! * [`algorithms::BruteForceSummarizer`] — reference enumeration.
//!
//! ```
//! use vqs_core::prelude::*;
//!
//! // Average flight delays by season and region (the paper's Fig. 1).
//! let relation = EncodedRelation::from_rows(
//!     &["season", "region"],
//!     "delay",
//!     vec![
//!         (vec!["Winter", "East"], 20.0),
//!         (vec!["Winter", "South"], 10.0),
//!         (vec!["Summer", "South"], 20.0),
//!         (vec!["Summer", "East"], 0.0),
//!     ],
//!     Prior::Constant(0.0),
//! ).unwrap();
//!
//! // All facts restricting at most two dimensions.
//! let catalog = FactCatalog::build(&relation, &[0, 1], 2).unwrap();
//! let problem = Problem::new(&relation, &catalog, 2).unwrap();
//!
//! let summary = GreedySummarizer::with_optimized_pruning()
//!     .summarize(&problem)
//!     .unwrap();
//! assert!(summary.utility > 0.0);
//! println!("{}", summary.speech.describe(&relation));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod complexity;
pub mod delta;
pub mod enumeration;
pub mod error;
pub mod instrument;
pub mod model;
pub mod relational;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::algorithms::{
        BruteForceSummarizer, ExactSummarizer, FactPruning, GreedySummarizer, Problem,
        PruneOptimizerConfig, ScopedExecutor, SearchExecutor, Summarizer, Summary,
        DEFAULT_FAN_OUT_THRESHOLD,
    };
    pub use crate::delta::{mask_dims, masked_combo, subset_masks};
    pub use crate::enumeration::{FactCatalog, FactGroup};
    pub use crate::error::{CoreError, Result};
    pub use crate::instrument::Instrumentation;
    pub use crate::model::{
        base_error, speech_error, speech_error_under, utility, Dimension, EncodedRelation,
        ExpectationModel, Fact, FactId, Prior, ResidualState, Scope, Speech, UndoArena,
    };
}
