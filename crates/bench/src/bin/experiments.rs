//! Regenerate the paper's tables and figures: `experiments all` or a
//! single id (`table1 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 ml`).
//!
//! Options:
//!   --scale X         data scale factor (default 0.05)
//!   --queries N       max queries sampled per scenario (default 60)
//!   --timeout-secs N  per-(scenario, algorithm) budget (default 20)
//!   --workers N       pre-processing threads
//!   --seed N          master seed

use vqs_bench::{experiments, RunConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = RunConfig::default();
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        let mut take_value = |name: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scale" => config.scale = take_value("--scale").parse().expect("numeric scale"),
            "--queries" => {
                config.query_limit = take_value("--queries").parse().expect("numeric limit")
            }
            "--timeout-secs" => {
                config.timeout = std::time::Duration::from_secs(
                    take_value("--timeout-secs")
                        .parse()
                        .expect("numeric seconds"),
                )
            }
            "--workers" => {
                config.workers = take_value("--workers").parse().expect("numeric workers")
            }
            "--seed" => config.seed = take_value("--seed").parse().expect("numeric seed"),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|id| id == "all") {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }
    println!(
        "vqs experiments: scale {}, query limit {}, timeout {:?}, {} workers, seed {:#x}",
        config.scale, config.query_limit, config.timeout, config.workers, config.seed
    );
    for id in &ids {
        if !experiments::run(id, &config) {
            eprintln!("unknown experiment '{id}'; known: {:?}", experiments::ALL);
            std::process::exit(2);
        }
    }
}
