//! Service perf trajectory recorder: stands up a multi-tenant
//! [`VoiceService`], measures per-tenant registration and lookup costs
//! plus mixed-tenant respond throughput, and emits `BENCH_service.json`
//! next to `BENCH_solver.json`. CI runs it as a smoke step (the output
//! must be valid JSON; no thresholds are enforced — the committed
//! baselines form the trajectory across PRs).
//!
//! Usage: `bench_service [--out PATH] [--scale X] [--requests N] [--threads T]`

use std::time::Instant;

use vqs_bench::{scenario_dataset, single_target_config, RunConfig};
use vqs_engine::prelude::*;

/// Per-tenant measurements in the emitted JSON.
struct TenantEntry {
    tenant: String,
    speeches: usize,
    queries: usize,
    preprocess_ms: f64,
    solver_ms: f64,
    lookup_requests: usize,
    speech_hits: usize,
    lookup_ms: f64,
    lookup_per_sec: f64,
}

/// The pinned tenants: the flights deployment plus ACS for a second data
/// shape behind the same pool.
const PINNED: [(&str, char, &str); 2] = [("flights", 'F', "cancelled"), ("acs", 'A', "hearing")];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut requests = 2_000usize;
    let mut threads = 4usize;
    let mut config = RunConfig {
        scale: 0.02,
        ..Default::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} requires a value");
                    std::process::exit(2);
                })
                .to_string()
        };
        match arg.as_str() {
            "--out" => out = Some(value("--out")),
            "--scale" => config.scale = value("--scale").parse().expect("numeric scale"),
            "--requests" => requests = value("--requests").parse().expect("numeric count"),
            "--threads" => threads = value("--threads").parse().expect("numeric count"),
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let service = ServiceBuilder::new().build();
    let mut entries: Vec<TenantEntry> = Vec::new();
    let mut logs: Vec<(String, Vec<LogEntry>)> = Vec::new();
    for (tenant, letter, target) in PINNED {
        let dataset = scenario_dataset(letter, &config);
        let engine_config = single_target_config(&dataset, target);
        let relation = target_relation(&dataset, &engine_config, target).expect("pinned target");
        let report = service
            .register_dataset(TenantSpec::new(tenant, dataset, engine_config))
            .expect("registration succeeds");

        // A pure supported-query log drives the lookup benchmark; the
        // spoken target phrase is the column name (underscores as
        // spaces), exactly what the facade's extractor registered.
        let mix = RequestMix {
            name: "bench",
            help: 0,
            repeat: 0,
            s_query: requests,
            u_query: 0,
            other: 0,
        };
        let phrase = target.replace('_', " ");
        let log = generate_log(&relation, &phrase, &mix, 0xBE7C);
        let start = Instant::now();
        let mut speech_hits = 0usize;
        for entry in &log {
            let response = service.respond(&ServiceRequest::new(tenant, &entry.text));
            if response.answer.is_speech() {
                speech_hits += 1;
            }
        }
        let lookup_secs = start.elapsed().as_secs_f64();
        assert!(
            speech_hits * 10 >= log.len() * 9,
            "{tenant}: {speech_hits}/{} supported queries answered with a speech",
            log.len()
        );
        entries.push(TenantEntry {
            tenant: tenant.to_string(),
            speeches: report.speeches,
            queries: report.queries,
            preprocess_ms: report.elapsed.as_secs_f64() * 1e3,
            solver_ms: report.total_solver_time().as_secs_f64() * 1e3,
            lookup_requests: log.len(),
            speech_hits,
            lookup_ms: lookup_secs * 1e3,
            lookup_per_sec: log.len() as f64 / lookup_secs.max(1e-9),
        });
        logs.push((tenant.to_string(), log));
    }

    // Mixed-tenant throughput: `threads` clients interleave both
    // tenants' logs against the shared service.
    let start = Instant::now();
    let mixed_total: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let service = &service;
                let logs = &logs;
                scope.spawn(move || {
                    let mut answered = 0usize;
                    for round in 0..requests {
                        let (tenant, log) = &logs[(worker + round) % logs.len()];
                        let entry = &log[(worker * 7919 + round) % log.len()];
                        let response = service.respond(&ServiceRequest::new(tenant, &entry.text));
                        assert!(!response.text().is_empty());
                        answered += 1;
                    }
                    answered
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let mixed_secs = start.elapsed().as_secs_f64();

    let json = render_json(
        &config,
        &entries,
        threads,
        mixed_total,
        mixed_secs * 1e3,
        mixed_total as f64 / mixed_secs.max(1e-9),
    );
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write BENCH_service.json");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

fn render_json(
    config: &RunConfig,
    entries: &[TenantEntry],
    threads: usize,
    mixed_requests: usize,
    mixed_ms: f64,
    mixed_per_sec: f64,
) -> String {
    let mut lines = Vec::new();
    lines.push("{".to_string());
    lines.push("  \"schema\": \"vqs-bench-service/v1\",".to_string());
    lines.push(format!("  \"scale\": {},", config.scale));
    lines.push("  \"tenants\": [".to_string());
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        lines.push(format!(
            "    {{\"tenant\": \"{}\", \"speeches\": {}, \"queries\": {}, \
             \"preprocess_ms\": {:.3}, \"solver_ms\": {:.3}, \"lookup_requests\": {}, \
             \"speech_hits\": {}, \"lookup_ms\": {:.3}, \"lookup_per_sec\": {:.0}}}{}",
            e.tenant,
            e.speeches,
            e.queries,
            e.preprocess_ms,
            e.solver_ms,
            e.lookup_requests,
            e.speech_hits,
            e.lookup_ms,
            e.lookup_per_sec,
            comma
        ));
    }
    lines.push("  ],".to_string());
    lines.push("  \"mixed\": {".to_string());
    lines.push(format!("    \"threads\": {threads},"));
    lines.push(format!("    \"requests\": {mixed_requests},"));
    lines.push(format!("    \"wall_ms\": {mixed_ms:.3},"));
    lines.push(format!("    \"requests_per_sec\": {mixed_per_sec:.0}"));
    lines.push("  }".to_string());
    lines.push("}".to_string());
    let mut json = lines.join("\n");
    json.push('\n');
    json
}
