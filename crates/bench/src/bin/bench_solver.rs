//! Solver perf trajectory recorder: measures greedy and exact wall-times
//! on pinned scenarios plus the indexed-vs-scan kernel sweeps, and emits
//! `BENCH_solver.json` (schema `vqs-bench-solver/v2`). CI runs it as a
//! smoke step and additionally parses the exact-solver entries for
//! worker parity: with the adaptive fan-out gate, granting eight workers
//! must not make the pinned (µs-scale) scenarios slower than one worker
//! beyond noise. The committed baselines form the trajectory across PRs.
//!
//! Schema v2 changes over v1:
//! - exact entries appear at workers 1, 2, and 8, the multi-worker runs
//!   routed through a long-lived [`SolverPool`] (the service's executor)
//!   instead of per-search scoped threads — each entry carries an
//!   `executor` field (`"scoped"` or `"pool"`);
//! - the kernel section adds the grouped gain sweep
//!   (`FactCatalog::group_gains` with its cached per-row deviations)
//!   next to the per-fact CSR sweep, with speedups for both.
//!
//! Usage: `bench_solver [--out PATH] [--scale X] [--queries N]`

use std::sync::Arc;
use std::time::Instant;

use vqs_bench::{run_batch, sample_items, scenario_dataset, single_target_config, RunConfig};
use vqs_core::prelude::*;
use vqs_engine::prelude::*;

/// One timed measurement in the emitted JSON.
struct Entry {
    scenario: String,
    algorithm: String,
    workers: usize,
    executor: &'static str,
    queries: usize,
    solved: usize,
    wall_ms: f64,
}

/// The pinned (scenario, target) pairs: the flights scenario the ISSUE's
/// acceptance criteria name, plus ACS for a second data shape.
const PINNED: [(&str, char, &str); 3] = [
    ("F-C", 'F', "cancelled"),
    ("F-D", 'F', "delay"),
    ("A-H", 'A', "hearing"),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut config = RunConfig {
        scale: 0.02,
        query_limit: 24,
        ..Default::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} requires a value");
                    std::process::exit(2);
                })
                .to_string()
        };
        match arg.as_str() {
            "--out" => out = Some(value("--out")),
            "--scale" => config.scale = value("--scale").parse().expect("numeric scale"),
            "--queries" => config.query_limit = value("--queries").parse().expect("numeric limit"),
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    // The multi-worker exact runs ride one long-lived pool, exactly like
    // the service: no per-search thread spawns in the measured region.
    let pool: Arc<SolverPool> = Arc::new(SolverPool::new(8));
    let mut entries: Vec<Entry> = Vec::new();
    for (name, letter, target) in PINNED {
        let dataset = scenario_dataset(letter, &config);
        let engine_config = single_target_config(&dataset, target);
        let relation = target_relation(&dataset, &engine_config, target).expect("pinned target");
        let items = sample_items(
            enumerate_queries(&relation, &engine_config, target),
            config.query_limit,
        );
        let algorithms: Vec<(&str, usize, &'static str, Box<dyn Summarizer>)> = vec![
            ("G-B", 1, "scoped", Box::new(GreedySummarizer::base())),
            (
                "G-O",
                1,
                "scoped",
                Box::new(GreedySummarizer::with_optimized_pruning()),
            ),
            ("E", 1, "scoped", Box::new(ExactSummarizer::paper())),
            (
                "E",
                2,
                "pool",
                Box::new(
                    ExactSummarizer::with_workers(2)
                        .on_executor(Arc::clone(&pool) as Arc<dyn SearchExecutor>),
                ),
            ),
            (
                "E",
                8,
                "pool",
                Box::new(
                    ExactSummarizer::with_workers(8)
                        .on_executor(Arc::clone(&pool) as Arc<dyn SearchExecutor>),
                ),
            ),
        ];
        // Best of repeated batches, interleaved round-robin across the
        // algorithm variants: the CI parity gate compares the 1- and
        // 8-worker exact entries at a 1.1× tolerance, and the smallest
        // batches run in the hundreds of microseconds where a single
        // scheduler hiccup would swamp the signal. Interleaving keeps a
        // slow machine period (shared runners throttle in multi-second
        // waves) from landing on one variant's entire sample; repeating
        // until ≥20 ms accumulates per variant (at least 5, at most 40
        // rounds) gives µs-scale scenarios enough samples for the
        // minimum to reach the noise floor.
        let mut best: Vec<Option<(usize, f64)>> = vec![None; algorithms.len()];
        let mut totals = vec![0.0f64; algorithms.len()];
        let mut rounds = 0;
        while rounds < 5 || (totals.iter().any(|&ms| ms < 20.0) && rounds < 40) {
            for (slot, (_, _, _, summarizer)) in algorithms.iter().enumerate() {
                let outcome = run_batch(
                    &relation,
                    &engine_config,
                    summarizer.as_ref(),
                    &items,
                    config.timeout,
                );
                let wall_ms = outcome.elapsed.as_secs_f64() * 1e3;
                totals[slot] += wall_ms;
                if best[slot].is_none_or(|(_, ms)| wall_ms < ms) {
                    best[slot] = Some((outcome.solved(), wall_ms));
                }
            }
            rounds += 1;
        }
        for ((algorithm, workers, executor, _), best) in algorithms.iter().zip(best) {
            let (solved, wall_ms) = best.expect("at least one round ran");
            entries.push(Entry {
                scenario: name.to_string(),
                algorithm: algorithm.to_string(),
                workers: *workers,
                executor,
                queries: items.len(),
                solved,
                wall_ms,
            });
        }
    }

    // Kernel sweeps on the full flights catalog: gains of every
    // candidate fact via (a) the original full scan, (b) the per-fact
    // CSR inverted index, (c) the grouped pass with cached per-row
    // deviations (the greedy sweep's actual inner loop).
    let dataset = scenario_dataset('F', &config);
    let engine_config = single_target_config(&dataset, "cancelled");
    let relation = target_relation(&dataset, &engine_config, "cancelled").expect("flights");
    let catalog = FactCatalog::build(&relation, &(0..relation.dim_count()).collect::<Vec<_>>(), 2)
        .expect("flights catalog");
    let state = ResidualState::new(&relation);
    // Minimum over repetitions — the standard noise floor for µs-scale
    // sweeps (any rep can only be slowed down by interference, never
    // sped up past the true cost).
    let reps = 7;
    let mut scan_ms = f64::INFINITY;
    let mut scan_sum = 0.0;
    for _ in 0..reps {
        let start = Instant::now();
        let mut sum = 0.0;
        for fact in catalog.facts() {
            sum += state.gain_of(&relation, fact);
        }
        scan_ms = scan_ms.min(start.elapsed().as_secs_f64() * 1e3);
        scan_sum = sum;
    }
    let mut indexed_ms = f64::INFINITY;
    let mut indexed_sum = 0.0;
    for _ in 0..reps {
        let start = Instant::now();
        let mut sum = 0.0;
        for id in 0..catalog.len() {
            sum += state.gain_indexed(catalog.fact_rows(id), catalog.fact_devs(id));
        }
        indexed_ms = indexed_ms.min(start.elapsed().as_secs_f64() * 1e3);
        indexed_sum = sum;
    }
    let mut grouped_ms = f64::INFINITY;
    let mut grouped_sum = 0.0;
    let mut counters = Instrumentation::default();
    let mut gains = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        let mut sum = 0.0;
        for group in 0..catalog.groups().len() {
            catalog.group_gains_into(&relation, &state, group, &mut counters, &mut gains);
            sum += gains.iter().sum::<f64>();
        }
        grouped_ms = grouped_ms.min(start.elapsed().as_secs_f64() * 1e3);
        grouped_sum = sum;
    }
    // Relative tolerance: the unrolled kernels reassociate additions, so
    // the agreement bound must scale with the magnitude of the totals.
    let tolerance = 1e-9 * (1.0 + scan_sum.abs());
    assert!(
        (scan_sum - indexed_sum).abs() < tolerance,
        "kernel mismatch: scan {scan_sum} vs indexed {indexed_sum}"
    );
    assert!(
        (scan_sum - grouped_sum).abs() < tolerance,
        "kernel mismatch: scan {scan_sum} vs grouped {grouped_sum}"
    );

    let json = render_json(&config, &entries, &catalog, scan_ms, indexed_ms, grouped_ms);
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write BENCH_solver.json");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

fn render_json(
    config: &RunConfig,
    entries: &[Entry],
    catalog: &FactCatalog,
    scan_ms: f64,
    indexed_ms: f64,
    grouped_ms: f64,
) -> String {
    let speedup = |fast: f64| if fast > 0.0 { scan_ms / fast } else { 9999.0 };
    let mut lines = Vec::new();
    lines.push("{".to_string());
    lines.push("  \"schema\": \"vqs-bench-solver/v2\",".to_string());
    lines.push(format!("  \"scale\": {},", config.scale));
    lines.push(format!("  \"query_limit\": {},", config.query_limit));
    lines.push("  \"entries\": [".to_string());
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        lines.push(format!(
            "    {{\"scenario\": \"{}\", \"algorithm\": \"{}\", \"workers\": {}, \
             \"executor\": \"{}\", \"queries\": {}, \"solved\": {}, \"wall_ms\": {:.3}}}{}",
            e.scenario, e.algorithm, e.workers, e.executor, e.queries, e.solved, e.wall_ms, comma
        ));
    }
    lines.push("  ],".to_string());
    lines.push("  \"kernel\": {".to_string());
    lines.push(format!("    \"facts\": {},", catalog.len()));
    lines.push(format!("    \"rows\": {},", catalog.rows()));
    lines.push(format!("    \"groups\": {},", catalog.groups().len()));
    lines.push(format!("    \"gain_sweep_scan_ms\": {scan_ms:.3},"));
    lines.push(format!("    \"gain_sweep_indexed_ms\": {indexed_ms:.3},"));
    lines.push(format!("    \"gain_sweep_grouped_ms\": {grouped_ms:.3},"));
    lines.push(format!(
        "    \"indexed_speedup\": {:.2},",
        speedup(indexed_ms)
    ));
    lines.push(format!(
        "    \"grouped_speedup\": {:.2}",
        speedup(grouped_ms)
    ));
    lines.push("  }".to_string());
    lines.push("}".to_string());
    let mut json = lines.join("\n");
    json.push('\n');
    json
}
