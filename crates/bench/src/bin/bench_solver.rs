//! Solver perf trajectory recorder: measures greedy and exact wall-times
//! on pinned scenarios plus the indexed-vs-scan kernel sweep, and emits
//! `BENCH_solver.json`. CI runs it as a smoke step (the output must be
//! valid JSON; no thresholds are enforced — the committed baselines form
//! the trajectory across PRs).
//!
//! Usage: `bench_solver [--out PATH] [--scale X] [--queries N]`

use std::time::Instant;

use vqs_bench::{run_batch, sample_items, scenario_dataset, single_target_config, RunConfig};
use vqs_core::prelude::*;
use vqs_engine::prelude::*;

/// One timed measurement in the emitted JSON.
struct Entry {
    scenario: String,
    algorithm: String,
    workers: usize,
    queries: usize,
    solved: usize,
    wall_ms: f64,
}

/// The pinned (scenario, target) pairs: the flights scenario the ISSUE's
/// acceptance criteria name, plus ACS for a second data shape.
const PINNED: [(&str, char, &str); 3] = [
    ("F-C", 'F', "cancelled"),
    ("F-D", 'F', "delay"),
    ("A-H", 'A', "hearing"),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut config = RunConfig {
        scale: 0.02,
        query_limit: 24,
        ..Default::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} requires a value");
                    std::process::exit(2);
                })
                .to_string()
        };
        match arg.as_str() {
            "--out" => out = Some(value("--out")),
            "--scale" => config.scale = value("--scale").parse().expect("numeric scale"),
            "--queries" => config.query_limit = value("--queries").parse().expect("numeric limit"),
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let mut entries: Vec<Entry> = Vec::new();
    for (name, letter, target) in PINNED {
        let dataset = scenario_dataset(letter, &config);
        let engine_config = single_target_config(&dataset, target);
        let relation = target_relation(&dataset, &engine_config, target).expect("pinned target");
        let items = sample_items(
            enumerate_queries(&relation, &engine_config, target),
            config.query_limit,
        );
        let algorithms: Vec<(&str, usize, Box<dyn Summarizer>)> = vec![
            ("G-B", 1, Box::new(GreedySummarizer::base())),
            (
                "G-O",
                1,
                Box::new(GreedySummarizer::with_optimized_pruning()),
            ),
            ("E", 1, Box::new(ExactSummarizer::paper())),
            ("E", 8, Box::new(ExactSummarizer::with_workers(8))),
        ];
        for (algorithm, workers, summarizer) in algorithms {
            let outcome = run_batch(
                &relation,
                &engine_config,
                summarizer.as_ref(),
                &items,
                config.timeout,
            );
            entries.push(Entry {
                scenario: name.to_string(),
                algorithm: algorithm.to_string(),
                workers,
                queries: items.len(),
                solved: outcome.solved(),
                wall_ms: outcome.elapsed.as_secs_f64() * 1e3,
            });
        }
    }

    // Kernel sweep: gains of every candidate fact, scan vs indexed, on
    // the full flights catalog.
    let dataset = scenario_dataset('F', &config);
    let engine_config = single_target_config(&dataset, "cancelled");
    let relation = target_relation(&dataset, &engine_config, "cancelled").expect("flights");
    let catalog = FactCatalog::build(&relation, &(0..relation.dim_count()).collect::<Vec<_>>(), 2)
        .expect("flights catalog");
    let state = ResidualState::new(&relation);
    let reps = 5;
    let start = Instant::now();
    let mut scan_sum = 0.0;
    for _ in 0..reps {
        for fact in catalog.facts() {
            scan_sum += state.gain_of(&relation, fact);
        }
    }
    let scan_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;
    let start = Instant::now();
    let mut indexed_sum = 0.0;
    for _ in 0..reps {
        for id in 0..catalog.len() {
            indexed_sum += state.gain_indexed(catalog.fact_rows(id), catalog.fact_devs(id));
        }
    }
    let indexed_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;
    assert!(
        (scan_sum - indexed_sum).abs() < 1e-6 * reps as f64,
        "kernel mismatch: scan {scan_sum} vs indexed {indexed_sum}"
    );

    let json = render_json(&config, &entries, &catalog, scan_ms, indexed_ms);
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write BENCH_solver.json");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

fn render_json(
    config: &RunConfig,
    entries: &[Entry],
    catalog: &FactCatalog,
    scan_ms: f64,
    indexed_ms: f64,
) -> String {
    let mut lines = Vec::new();
    lines.push("{".to_string());
    lines.push("  \"schema\": \"vqs-bench-solver/v1\",".to_string());
    lines.push(format!("  \"scale\": {},", config.scale));
    lines.push(format!("  \"query_limit\": {},", config.query_limit));
    lines.push("  \"entries\": [".to_string());
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        lines.push(format!(
            "    {{\"scenario\": \"{}\", \"algorithm\": \"{}\", \"workers\": {}, \
             \"queries\": {}, \"solved\": {}, \"wall_ms\": {:.3}}}{}",
            e.scenario, e.algorithm, e.workers, e.queries, e.solved, e.wall_ms, comma
        ));
    }
    lines.push("  ],".to_string());
    lines.push("  \"kernel\": {".to_string());
    lines.push(format!("    \"facts\": {},", catalog.len()));
    lines.push(format!("    \"rows\": {},", catalog.rows()));
    lines.push(format!("    \"gain_sweep_scan_ms\": {scan_ms:.3},"));
    lines.push(format!("    \"gain_sweep_indexed_ms\": {indexed_ms:.3},"));
    lines.push(format!(
        "    \"speedup\": {:.2}",
        if indexed_ms > 0.0 {
            scan_ms / indexed_ms
        } else {
            9999.0
        }
    ));
    lines.push("  }".to_string());
    lines.push("}".to_string());
    let mut json = lines.join("\n");
    json.push('\n');
    json
}
