//! Pipeline trajectory recorder: stands up one tenant behind the
//! staged NL pipeline and measures the three answer tiers separately —
//! summary-store hit latency, live relational-plan latency, and the
//! classification accuracy of the analyzer over a pinned utterance
//! corpus. Emits `BENCH_pipeline.json` next to the other committed
//! baselines. CI runs it as a smoke step (the output must be valid
//! JSON; no thresholds are enforced).
//!
//! Usage: `bench_pipeline [--out PATH] [--requests N] [--rows N]`

use std::time::Instant;

use vqs_data::{DimSpec, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;

const SEASONS: [&str; 4] = ["Winter", "Spring", "Summer", "Fall"];
const REGIONS: [&str; 3] = ["East", "West", "North"];

/// The pinned classification corpus: utterance plus the Table III label
/// the analyzer must assign. Accuracy over this list is the recorded
/// metric; a regression here means the staged analyzer drifted from the
/// legacy classifier's decision order.
const CORPUS: [(&str, &str); 14] = [
    ("help", "Help"),
    ("what can you do", "Help"),
    ("repeat that", "Repeat"),
    ("say that again", "Repeat"),
    ("delay in Winter", "S-Query"),
    ("cancelled in the East", "S-Query"),
    ("delay in Summer in the West", "S-Query"),
    ("which season has the most delay", "U-Query"),
    ("which region has the lowest cancelled", "U-Query"),
    ("compare delay for Winter versus Summer", "U-Query"),
    ("how many delays in Winter", "U-Query"),
    ("the total cancelled in the East", "U-Query"),
    ("delay of flight UA one twenty three", "U-Query"),
    ("tell me a joke", "Other"),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut requests = 2_000usize;
    let mut rows = 240usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} requires a value");
                    std::process::exit(2);
                })
                .to_string()
        };
        match arg.as_str() {
            "--out" => out = Some(value("--out")),
            "--requests" => requests = value("--requests").parse().expect("numeric count"),
            "--rows" => rows = value("--rows").parse().expect("numeric count"),
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    let dataset = SynthSpec {
        name: "air".to_string(),
        dims: vec![
            DimSpec::named("season", &SEASONS),
            DimSpec::named("region", &REGIONS),
        ],
        targets: vec![
            TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0)),
            TargetSpec::new("cancelled", 30.0, 10.0, 4.0, (0.0, 1000.0)),
        ],
        rows,
    }
    .generate(0xA1, 1.0);

    let service = ServiceBuilder::new().workers(2).build();
    let report = service
        .register_dataset(
            TenantSpec::new(
                "air",
                dataset,
                Configuration::new("air", &["season", "region"], &["delay", "cancelled"]),
            )
            .target_synonyms("delay", &["delays"])
            .unavailable_markers(&["flight"]),
        )
        .expect("registration succeeds");

    // Tier-1 pool: every single-predicate question is a store hit.
    let mut store_pool: Vec<String> = Vec::new();
    for target in ["delay", "cancelled"] {
        for season in SEASONS {
            store_pool.push(format!("{target} in {season}?"));
        }
        for region in REGIONS {
            store_pool.push(format!("{target} in the {region}?"));
        }
    }
    let (store_hits, store_secs) = drive(&service, &store_pool, requests, |a| a.is_speech());
    assert!(
        store_hits == requests,
        "{store_hits}/{requests} store-tier questions answered with a speech"
    );

    // Tier-2 pool: extrema, comparisons, and aggregates miss the store
    // and execute a relational plan against the live table.
    let mut live_pool: Vec<String> = Vec::new();
    for target in ["delay", "cancelled"] {
        for dim in ["season", "region"] {
            live_pool.push(format!("which {dim} has the most {target}"));
            live_pool.push(format!("which {dim} has the lowest {target}"));
        }
        for pair in SEASONS.windows(2) {
            live_pool.push(format!(
                "compare {target} for {} versus {}",
                pair[0], pair[1]
            ));
        }
        for season in SEASONS {
            live_pool.push(format!("how many {target} in {season}"));
            live_pool.push(format!("the total {target} in {season}"));
        }
    }
    let (computed, live_secs) = drive(&service, &live_pool, requests, |a| {
        matches!(a, Answer::Computed { .. })
    });
    assert!(
        computed == requests,
        "{computed}/{requests} live-tier questions answered with a computed plan"
    );

    // Classification accuracy over the pinned corpus.
    let correct = CORPUS
        .iter()
        .filter(|(text, expected)| {
            service.respond(&ServiceRequest::new("air", *text)).label() == *expected
        })
        .count();

    let json = render_json(
        rows,
        report.speeches,
        requests,
        store_secs * 1e3,
        requests as f64 / store_secs.max(1e-9),
        live_secs * 1e3,
        requests as f64 / live_secs.max(1e-9),
        correct,
    );
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write BENCH_pipeline.json");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

/// Round-robin `requests` utterances from `pool` through the service,
/// returning how many answers satisfied `accept` and the wall seconds.
fn drive(
    service: &VoiceService,
    pool: &[String],
    requests: usize,
    accept: impl Fn(&Answer) -> bool,
) -> (usize, f64) {
    let start = Instant::now();
    let mut accepted = 0usize;
    for round in 0..requests {
        let text = &pool[round % pool.len()];
        let response = service.respond(&ServiceRequest::new("air", text));
        if accept(&response.answer) {
            accepted += 1;
        }
    }
    (accepted, start.elapsed().as_secs_f64())
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    rows: usize,
    speeches: usize,
    requests: usize,
    store_ms: f64,
    store_per_sec: f64,
    live_ms: f64,
    live_per_sec: f64,
    correct: usize,
) -> String {
    let mut lines = Vec::new();
    lines.push("{".to_string());
    lines.push("  \"schema\": \"vqs-bench-pipeline/v1\",".to_string());
    lines.push(format!("  \"rows\": {rows},"));
    lines.push(format!("  \"speeches\": {speeches},"));
    lines.push("  \"store_hit\": {".to_string());
    lines.push(format!("    \"requests\": {requests},"));
    lines.push(format!("    \"wall_ms\": {store_ms:.3},"));
    lines.push(format!("    \"requests_per_sec\": {store_per_sec:.0}"));
    lines.push("  },".to_string());
    lines.push("  \"live_plan\": {".to_string());
    lines.push(format!("    \"requests\": {requests},"));
    lines.push(format!("    \"wall_ms\": {live_ms:.3},"));
    lines.push(format!("    \"requests_per_sec\": {live_per_sec:.0}"));
    lines.push("  },".to_string());
    lines.push("  \"classification\": {".to_string());
    lines.push(format!("    \"utterances\": {},", CORPUS.len()));
    lines.push(format!("    \"correct\": {correct},"));
    lines.push(format!(
        "    \"accuracy\": {:.3}",
        correct as f64 / CORPUS.len() as f64
    ));
    lines.push("  }".to_string());
    lines.push("}".to_string());
    let mut json = lines.join("\n");
    json.push('\n');
    json
}
