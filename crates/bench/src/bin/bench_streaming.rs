//! Streaming-ingestion perf trajectory recorder: drives live [`RowDelta`]
//! traffic through `VoiceService::ingest` while reader threads keep
//! answering voice queries, and emits `BENCH_streaming.json` with three
//! sections:
//!
//! * `baseline` — respond p50/p99 over the tenant with the ingest log
//!   idle (the no-ingest reference the acceptance bar is measured
//!   against).
//! * `streaming` — the same respond workload racing a writer that
//!   applies dimension-only row updates at maximum rate: sustained
//!   updates/s (deltas applied / writer wall time), the respond
//!   percentiles under ingest, and `p99_ratio_vs_baseline` (the
//!   acceptance bar is ≤ 2.0).
//! * `convergence` — after the log drains, the store must be
//!   byte-identical to a cold pre-processing of the final table; the
//!   bench *asserts* this (CI's smoke run is the convergence proof) and
//!   records the outcome.
//!
//! CI runs it as a smoke step (valid JSON, no perf thresholds); the
//! committed baseline forms the trajectory across PRs.
//!
//! Usage: `bench_streaming [--out PATH] [--rows N] [--requests N]
//! [--threads T] [--workers W] [--deltas N] [--batch N]`

use std::sync::Arc;
use std::time::Instant;

use vqs_data::{DimSpec, GeneratedDataset, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;
use vqs_relalg::prelude::{Table, Value};

const SEASONS: [&str; 4] = ["Winter", "Spring", "Summer", "Autumn"];
const REGIONS: [&str; 4] = ["North", "East", "South", "West"];

fn percentile(sorted_micros: &[u64], p: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let rank = (p * (sorted_micros.len() - 1) as f64).round() as usize;
    sorted_micros[rank.min(sorted_micros.len() - 1)]
}

fn dataset(rows: usize) -> GeneratedDataset {
    SynthSpec {
        name: "stream".to_string(),
        dims: vec![
            DimSpec::named("season", &SEASONS),
            DimSpec::named("region", &REGIONS),
        ],
        targets: vec![TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0))],
        rows,
    }
    .generate(0xBEE5, 1.0)
}

/// The respond workload: every single-dimension slice plus every
/// two-predicate combination, all answerable from the store.
fn utterances() -> Vec<String> {
    let mut texts = Vec::new();
    for season in SEASONS {
        texts.push(format!("delay in {season}?"));
    }
    for region in REGIONS {
        texts.push(format!("delay in the {region}?"));
    }
    for season in SEASONS {
        for region in REGIONS {
            texts.push(format!("delay in {season} in the {region}?"));
        }
    }
    texts
}

/// Run `threads` readers for `requests` responds each; returns the
/// merged, sorted per-request latencies in microseconds.
fn run_readers(
    service: &VoiceService,
    texts: &[String],
    threads: usize,
    requests: usize,
) -> Vec<u64> {
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(requests);
                    for round in 0..requests {
                        let text = &texts[(worker * 7919 + round) % texts.len()];
                        let start = Instant::now();
                        let response = service.respond(&ServiceRequest::new("stream", text));
                        latencies.push(start.elapsed().as_micros() as u64);
                        assert!(response.answer.is_speech(), "reader lost its speech");
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    latencies.sort_unstable();
    latencies
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut rows = 2_000usize;
    let mut requests = 1_500usize;
    let mut threads = 3usize;
    let mut workers = 3usize;
    let mut deltas = 2_000usize;
    let mut batch = 8usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} requires a value");
                    std::process::exit(2);
                })
                .to_string()
        };
        match arg.as_str() {
            "--out" => out = Some(value("--out")),
            "--rows" => rows = value("--rows").parse().expect("numeric count"),
            "--requests" => requests = value("--requests").parse().expect("numeric count"),
            "--threads" => threads = value("--threads").parse().expect("numeric count"),
            "--workers" => workers = value("--workers").parse().expect("numeric count"),
            "--deltas" => deltas = value("--deltas").parse().expect("numeric count"),
            "--batch" => {
                batch = value("--batch")
                    .parse::<usize>()
                    .expect("numeric count")
                    .max(1)
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    // ---- Fixture: one streaming tenant; the mirror row vector drives
    // both delta generation and the convergence reference.
    let base = dataset(rows);
    let mut mirror: Vec<Vec<Value>> = base.table.iter_rows().collect();
    let service = Arc::new(ServiceBuilder::new().workers(workers).build());
    service
        .register_dataset(
            TenantSpec::new(
                "stream",
                base.clone(),
                Configuration::new("stream", &["season", "region"], &["delay"]),
            )
            .ingest(
                IngestBuilder::new()
                    .max_dirty(64)
                    .flush_interval(std::time::Duration::from_millis(2)),
            ),
        )
        .expect("registration succeeds");
    let texts = utterances();

    // ---- Baseline: respond percentiles with the ingest log idle.
    let start = Instant::now();
    let baseline = run_readers(&service, &texts, threads, requests);
    let baseline_secs = start.elapsed().as_secs_f64();
    let baseline_total = threads * requests;
    let baseline_p99 = percentile(&baseline, 0.99);

    // ---- Streaming: the same respond workload racing a full-rate
    // writer. Updates are dimension-only (each flips one row's region,
    // keeping season and delay), so the global target mean is
    // bit-stable and the incremental circuit re-solves only the dirtied
    // subsets.
    let region_index = |value: &Value| -> usize {
        let name = value.as_str().expect("region is a string");
        REGIONS
            .iter()
            .position(|r| *r == name)
            .expect("known region")
    };
    let mut writer_batches: Vec<Vec<RowDelta>> = Vec::with_capacity(deltas / batch + 1);
    let mut pending: Vec<RowDelta> = Vec::with_capacity(batch);
    for j in 0..deltas {
        let row = j % mirror.len();
        let next = REGIONS[(region_index(&mirror[row][1]) + 1) % REGIONS.len()];
        mirror[row][1] = Value::str(next);
        pending.push(RowDelta::Update {
            row,
            values: mirror[row].clone(),
        });
        if pending.len() == batch {
            writer_batches.push(std::mem::take(&mut pending));
        }
    }
    if !pending.is_empty() {
        writer_batches.push(pending);
    }

    let start = Instant::now();
    let (streaming, writer_secs, flushes) = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let begin = Instant::now();
            let mut flushes = 0usize;
            for deltas in &writer_batches {
                let report = service.ingest("stream", deltas).expect("ingest accepted");
                if report.flush.is_some() {
                    flushes += 1;
                }
            }
            (begin.elapsed().as_secs_f64(), flushes)
        });
        let streaming = run_readers(&service, &texts, threads, requests);
        let (writer_secs, flushes) = writer.join().unwrap();
        (streaming, writer_secs, flushes)
    });
    let streaming_secs = start.elapsed().as_secs_f64();
    let streaming_p99 = percentile(&streaming, 0.99);
    let updates_per_sec = deltas as f64 / writer_secs.max(1e-9);

    // ---- Convergence: drain, then the store must hold exactly the
    // bytes a cold pre-processing of the mirror table produces.
    let flush = service.drain_ingest("stream").expect("drain succeeds");
    let final_dataset = GeneratedDataset {
        name: base.name.clone(),
        table: Table::from_rows(base.table.schema().clone(), mirror).expect("mirror stays valid"),
        dims: base.dims.clone(),
        targets: base.targets.clone(),
    };
    let cold = ServiceBuilder::new().workers(workers).build();
    cold.register_dataset(TenantSpec::new(
        "stream",
        final_dataset,
        Configuration::new("stream", &["season", "region"], &["delay"]),
    ))
    .expect("cold registration succeeds");
    let live_snapshot = service.tenant_store("stream").unwrap().snapshot();
    let converged = live_snapshot == cold.tenant_store("stream").unwrap().snapshot();
    assert!(converged, "drained store diverged from cold preprocess");

    let stats = service.stats();
    let tenant = &stats.tenants[0];
    assert_eq!(tenant.deltas_applied, deltas as u64);
    assert_eq!(tenant.ingest_lag, 0);

    let mut lines = Vec::new();
    lines.push("{".to_string());
    lines.push("  \"schema\": \"vqs-bench-streaming/v1\",".to_string());
    lines.push(format!("  \"rows\": {rows},"));
    lines.push(format!("  \"workers\": {workers},"));
    lines.push(format!("  \"threads\": {threads},"));
    lines.push("  \"baseline\": {".to_string());
    lines.push(format!("    \"requests\": {baseline_total},"));
    lines.push(format!("    \"wall_ms\": {:.3},", baseline_secs * 1e3));
    lines.push(format!(
        "    \"requests_per_sec\": {:.0},",
        baseline_total as f64 / baseline_secs.max(1e-9)
    ));
    lines.push(format!(
        "    \"p50_micros\": {},",
        percentile(&baseline, 0.50)
    ));
    lines.push(format!("    \"p99_micros\": {baseline_p99}"));
    lines.push("  },".to_string());
    lines.push("  \"streaming\": {".to_string());
    lines.push(format!("    \"deltas\": {deltas},"));
    lines.push(format!("    \"batch\": {batch},"));
    lines.push(format!("    \"flushes\": {flushes},"));
    lines.push(format!("    \"updates_per_sec\": {updates_per_sec:.0},"));
    lines.push(format!("    \"writer_wall_ms\": {:.3},", writer_secs * 1e3));
    lines.push(format!("    \"requests\": {baseline_total},"));
    lines.push(format!("    \"wall_ms\": {:.3},", streaming_secs * 1e3));
    lines.push(format!(
        "    \"p50_micros\": {},",
        percentile(&streaming, 0.50)
    ));
    lines.push(format!("    \"p99_micros\": {streaming_p99},"));
    lines.push(format!(
        "    \"p99_ratio_vs_baseline\": {:.3},",
        streaming_p99 as f64 / (baseline_p99.max(1)) as f64
    ));
    lines.push(format!(
        "    \"summaries_invalidated\": {},",
        tenant.summaries_invalidated
    ));
    lines.push(format!(
        "    \"summaries_resummarized\": {}",
        tenant.summaries_resummarized
    ));
    lines.push("  },".to_string());
    lines.push("  \"convergence\": {".to_string());
    lines.push(format!("    \"converged\": {converged},"));
    lines.push(format!("    \"drain_deltas\": {},", flush.deltas));
    lines.push(format!("    \"store_entries\": {}", live_snapshot.len()));
    lines.push("  }".to_string());
    lines.push("}".to_string());
    let mut json = lines.join("\n");
    json.push('\n');

    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write BENCH_streaming.json");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
