//! Scale-realism sweep: how far the reproduction actually carries
//! toward the paper's deployment claim ("millions of users", ROADMAP
//! item 2), measured honestly and committed as `BENCH_scale.json`.
//!
//! Four sections:
//!
//! * `smoke_baseline` — a cheap fixed workload (flights @ 0.02 scale:
//!   preprocess, ingest drain, a short open-loop load run). Always
//!   computed; CI re-runs it with `--smoke` and `ci/check_scale.py`
//!   compares against the committed values (1.5× wall-time gate,
//!   exact-match probe counts).
//! * `wide_probes` — store probe counts and lookup latency as query
//!   predicate count crosses [`MAX_ENUMERATED_PREDICATES`] (16): the
//!   secondary index keeps the enumerated path polynomial, and past 16
//!   the per-target scan takes over. Deterministic, always computed.
//! * `scenarios` — the four paper data sets at scale ∈ {0.02, 0.25,
//!   1.0}: preprocess wall time, store footprint
//!   ([`StoreStats::approx_bytes`]), and an open-loop Poisson load run
//!   whose percentiles are measured from the *intended* send time
//!   (coordinated-omission-safe; see `vqs_bench::loadgen`).
//! * `synthetic` — the `ScaleTenant` at ≥ 1M rows (10M with `--deep`):
//!   generation + preprocess wall time, store bytes, ingest flush cost
//!   via a timed drain, and a mixed respond+ingest open-loop run.
//!
//! The numbers are recorded as measured — including the parts that
//! break down at scale; BENCHMARKS.md interprets the trajectory.
//!
//! Usage: `bench_scale [--out PATH] [--smoke] [--deep] [--rows N]
//! [--requests N] [--rate R] [--workers W]`

use std::sync::Arc;
use std::time::{Duration, Instant};

use vqs_bench::loadgen::{self, Arrival, LoadPlan, LoadReport, MixWeights, Schedule};
use vqs_bench::{scenario_dataset, single_target_config, RunConfig};
use vqs_data::{scale_tenant_spec, wide_probe_spec, GeneratedDataset};
use vqs_engine::prelude::*;
use vqs_relalg::prelude::Value;

/// Seed for load-plan schedules and mix draws (distinct from the data
/// seed so the two can vary independently).
const LOAD_SEED: u64 = 0x5CA1E;
/// In-deadline budget for classifying open-loop respond completions,
/// measured from the intended send instant.
const DEADLINE_BUDGET: Duration = Duration::from_millis(50);

struct ScenarioEntry {
    scenario: String,
    target: String,
    scale: f64,
    rows: usize,
    queries: usize,
    speeches: usize,
    preprocess_ms: f64,
    solver_ms: f64,
    store_bytes: u64,
    load: LoadReport,
}

struct ProbeEntry {
    predicates: usize,
    probes_per_lookup: u64,
    lookup_nanos: u64,
    path: &'static str,
}

struct SyntheticEntry {
    rows: usize,
    load_mix: &'static str,
    generate_ms: f64,
    preprocess_ms: f64,
    solver_ms: f64,
    queries: usize,
    speeches: usize,
    store_bytes: u64,
    ingest_deltas: usize,
    ingest_flush_ms: f64,
    load: LoadReport,
    load_ingests: u64,
}

struct SmokeBaseline {
    preprocess_ms: f64,
    store_bytes: u64,
    ingest_deltas: usize,
    ingest_flush_ms: f64,
    wide_probe_16: u64,
    wide_probe_20: u64,
    load: LoadReport,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut smoke = false;
    let mut deep = false;
    let mut rows = 1_000_000usize;
    let mut requests = 400usize;
    let mut rate = 800.0f64;
    let mut workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} requires a value");
                    std::process::exit(2);
                })
                .to_string()
        };
        match arg.as_str() {
            "--out" => out = Some(value("--out")),
            "--smoke" => smoke = true,
            "--deep" => deep = true,
            "--rows" => rows = value("--rows").parse().expect("numeric count"),
            "--requests" => requests = value("--requests").parse().expect("numeric count"),
            "--rate" => rate = value("--rate").parse().expect("numeric rate"),
            "--workers" => workers = value("--workers").parse().expect("numeric count"),
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    eprintln!("bench_scale: smoke baseline");
    let baseline = smoke_baseline(workers, requests.min(240), rate.min(600.0));
    eprintln!("bench_scale: wide-probe sweep");
    let probes = wide_probe_sweep(workers);

    let mut scenarios: Vec<ScenarioEntry> = Vec::new();
    let mut synthetic: Vec<SyntheticEntry> = Vec::new();
    if !smoke {
        for scale in [0.02, 0.25, 1.0] {
            for (letter, tenant, target) in [
                ('F', "flights", "delay"),
                ('A', "acs", "hearing"),
                ('S', "stackoverflow", "competence"),
                ('P', "primaries", "support"),
            ] {
                eprintln!("bench_scale: scenario {tenant} @ scale {scale}");
                scenarios.push(run_scenario(
                    letter, tenant, target, scale, workers, requests, rate,
                ));
            }
        }
        let mut row_points = vec![(rows, true)];
        if deep {
            // The 10x point drops the ingest share from the load mix:
            // at 1M rows a single background flush already takes tens
            // of seconds and blocks serving (see BENCHMARKS.md), so a
            // mixed run at 10M would measure only that collapse again,
            // for hours. Respond-only load decomposes the break
            // instead: lookup latency stays row-count-independent
            // while the recorded flush cost keeps exploding.
            row_points.push((rows * 10, false));
        }
        for (rows, mixed) in row_points {
            eprintln!("bench_scale: synthetic tenant @ {rows} rows");
            synthetic.push(run_synthetic(rows, workers, requests, rate, mixed));
        }
    }

    let json = render_json(
        smoke, workers, requests, rate, &baseline, &probes, &scenarios, &synthetic,
    );
    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write BENCH_scale.json");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}

/// Open-loop Poisson respond plan over a tenant's supported-query log.
fn respond_plan(tenant: &str, texts: &[String], requests: usize, rate: f64) -> LoadPlan {
    let prototypes: Vec<ServiceRequest> = texts
        .iter()
        .map(|text| ServiceRequest::new(tenant, text))
        .collect();
    let mut plan = LoadPlan::respond_only(
        Schedule::new(Arrival::Poisson { rate }, requests, LOAD_SEED),
        prototypes,
        LOAD_SEED,
    );
    plan.deadline_budget = Some(DEADLINE_BUDGET);
    plan
}

/// Supported utterances for a registered tenant, derived from the
/// target's relation exactly like the service benches.
fn supported_texts(
    dataset: &GeneratedDataset,
    config: &Configuration,
    target: &str,
) -> Vec<String> {
    let relation = target_relation(dataset, config, target).expect("known target");
    let mix = RequestMix {
        name: "scale",
        help: 0,
        repeat: 0,
        s_query: 64,
        u_query: 0,
        other: 0,
    };
    generate_log(&relation, &target.replace('_', " "), &mix, LOAD_SEED)
        .into_iter()
        .map(|entry| entry.text)
        .collect()
}

/// Dimension-flip update deltas against the first `count` rows (the
/// same shape the streaming bench applies, cheap to re-solve). The
/// dimension's value universe is read off the column itself.
fn update_deltas(dataset: &GeneratedDataset, dim_index: usize, count: usize) -> Vec<RowDelta> {
    let column = dataset
        .table
        .column_by_name(&dataset.dims[dim_index])
        .expect("known dimension");
    let mut values: Vec<String> = Vec::new();
    for row in 0..dataset.table.len() {
        let value = column.value(row).to_string();
        if !values.contains(&value) {
            values.push(value);
            if values.len() >= 2 {
                break;
            }
        }
    }
    let mut deltas = Vec::with_capacity(count);
    for (row, mut row_values) in dataset.table.iter_rows().take(count).enumerate() {
        let current = row_values[dim_index]
            .as_str()
            .expect("dimension is a string");
        let next = values
            .iter()
            .find(|v| v.as_str() != current)
            .expect("two distinct values");
        row_values[dim_index] = Value::str(next);
        deltas.push(RowDelta::Update {
            row,
            values: row_values,
        });
    }
    deltas
}

/// Feed `deltas` through the ingest log in `batch`-sized calls, then
/// time the drain — the flush (incremental re-solve) cost in isolation.
fn timed_flush(service: &VoiceService, tenant: &str, deltas: Vec<RowDelta>, batch: usize) -> f64 {
    for chunk in deltas.chunks(batch) {
        service.ingest(tenant, chunk).expect("ingest accepted");
    }
    let start = Instant::now();
    service.drain_ingest(tenant).expect("drain succeeds");
    start.elapsed().as_secs_f64() * 1e3
}

fn smoke_baseline(workers: usize, requests: usize, rate: f64) -> SmokeBaseline {
    let config = RunConfig {
        scale: 0.02,
        ..Default::default()
    };
    let dataset = scenario_dataset('F', &config);
    let engine_config = single_target_config(&dataset, "delay");
    let texts = supported_texts(&dataset, &engine_config, "delay");
    let deltas = update_deltas(&dataset, 3, 128);
    let service = Arc::new(ServiceBuilder::new().workers(workers).build());
    let start = Instant::now();
    service
        .register_dataset(
            TenantSpec::new("flights", dataset.clone(), engine_config)
                // Large max_dirty: the explicit drain below is the only
                // flush, so its timing is the full 128-delta cost.
                .ingest(IngestBuilder::new().max_dirty(100_000)),
        )
        .expect("registration succeeds");
    let preprocess_ms = start.elapsed().as_secs_f64() * 1e3;

    let ingest_deltas = deltas.len();
    let ingest_flush_ms = timed_flush(&service, "flights", deltas, 32);

    // Mixed open-loop traffic: mostly responds, a trickle of ingest
    // batches and one-row refreshes, so all three submission paths run.
    let frontend = FrontEnd::builder(Arc::clone(&service)).workers(1).build();
    let mut plan = respond_plan("flights", &texts, requests, rate);
    plan.mix = MixWeights {
        respond: 48,
        ingest: 6,
        refresh: 1,
    };
    plan.ingest_batches = vec![("flights".to_string(), update_deltas(&dataset, 4, 4))];
    plan.refresh = Some(("flights".to_string(), dataset));
    let load = loadgen::run(&frontend, &plan);
    drop(frontend);
    let store_bytes = service
        .tenant_store("flights")
        .expect("registered")
        .stats()
        .approx_bytes;

    // The two probe counts CI pins exactly (deterministic in the seed).
    let (probe_16, probe_20) = {
        let entries = wide_probe_sweep(workers);
        let probe = |n: usize| {
            entries
                .iter()
                .find(|e| e.predicates == n)
                .map(|e| e.probes_per_lookup)
                .unwrap_or(0)
        };
        (probe(16), probe(20))
    };
    SmokeBaseline {
        preprocess_ms,
        store_bytes,
        ingest_deltas,
        ingest_flush_ms,
        wide_probe_16: probe_16,
        wide_probe_20: probe_20,
        load,
    }
}

/// Probe the store's two lookup regimes on a 20-binary-dimension tenant:
/// enumerated generalization (≤ 16 predicates, candidates filtered by
/// the secondary index) vs the per-target scan past 16.
fn wide_probe_sweep(workers: usize) -> Vec<ProbeEntry> {
    let spec = wide_probe_spec(20);
    let dataset = spec.generate(vqs_data::DEFAULT_SEED, 1.0);
    let dims: Vec<&str> = dataset.dims.iter().map(String::as_str).collect();
    let config = Configuration::new(&dataset.name, &dims, &["metric"]);
    let service = ServiceBuilder::new().workers(workers).build();
    service
        .register_dataset(TenantSpec::new("wide", dataset, config))
        .expect("registration succeeds");
    let store = service.tenant_store("wide").expect("registered");

    let mut entries = Vec::new();
    for predicates in [1usize, 2, 4, 8, 12, 16, 17, 18, 20] {
        // Value "b" on every dimension: misses the exact entry on long
        // queries, so the lookup walks its full generalization regime.
        let query = Query::new(
            "metric",
            (0..predicates)
                .map(|d| (format!("d{d:02}"), "b".to_string()))
                .collect::<Vec<_>>(),
        );
        let before = store.stats();
        let rounds = 64u32;
        let start = Instant::now();
        for _ in 0..rounds {
            std::hint::black_box(store.lookup(&query));
        }
        let lookup_nanos = (start.elapsed().as_nanos() / u128::from(rounds)) as u64;
        let after = store.stats();
        entries.push(ProbeEntry {
            predicates,
            probes_per_lookup: (after.probes - before.probes) / u64::from(rounds),
            lookup_nanos,
            path: if predicates > 16 {
                "scan"
            } else {
                "enumerated"
            },
        });
    }
    entries
}

fn run_scenario(
    letter: char,
    tenant: &str,
    target: &str,
    scale: f64,
    workers: usize,
    requests: usize,
    rate: f64,
) -> ScenarioEntry {
    let config = RunConfig {
        scale,
        ..Default::default()
    };
    let dataset = scenario_dataset(letter, &config);
    let rows = dataset.table.len();
    let engine_config = single_target_config(&dataset, target);
    let texts = supported_texts(&dataset, &engine_config, target);
    let service = Arc::new(ServiceBuilder::new().workers(workers).build());
    let start = Instant::now();
    let report = service
        .register_dataset(TenantSpec::new(tenant, dataset, engine_config))
        .expect("registration succeeds");
    let preprocess_ms = start.elapsed().as_secs_f64() * 1e3;

    let frontend = FrontEnd::builder(Arc::clone(&service)).workers(1).build();
    let load = loadgen::run(&frontend, &respond_plan(tenant, &texts, requests, rate));
    drop(frontend);
    let store_bytes = service
        .tenant_store(tenant)
        .expect("registered")
        .stats()
        .approx_bytes;
    ScenarioEntry {
        scenario: tenant.to_string(),
        target: target.to_string(),
        scale,
        rows,
        queries: report.queries,
        speeches: report.speeches,
        preprocess_ms,
        solver_ms: report.total_solver_time().as_secs_f64() * 1e3,
        store_bytes,
        load,
    }
}

fn run_synthetic(
    rows: usize,
    workers: usize,
    requests: usize,
    rate: f64,
    mixed: bool,
) -> SyntheticEntry {
    let spec = scale_tenant_spec();
    let start = Instant::now();
    let dataset = spec.generate_rows(vqs_data::DEFAULT_SEED, rows, workers);
    let generate_ms = start.elapsed().as_secs_f64() * 1e3;

    let dims: Vec<&str> = dataset.dims.iter().map(String::as_str).collect();
    let config = Configuration::new(&dataset.name, &dims, &["engagement", "latency_ms"]);
    let texts = supported_texts(&dataset, &config, "engagement");
    let service = Arc::new(ServiceBuilder::new().workers(workers).build());
    let start = Instant::now();
    let report = service
        .register_dataset(
            TenantSpec::new("scale", dataset.clone(), config)
                .ingest(IngestBuilder::new().max_dirty(100_000)),
        )
        .expect("registration succeeds");
    let preprocess_ms = start.elapsed().as_secs_f64() * 1e3;

    // Flush cost in isolation: 512 dimension-flip updates, one drain.
    let deltas = update_deltas(&dataset, 3, 512);
    let ingest_deltas = deltas.len();
    let ingest_flush_ms = timed_flush(&service, "scale", deltas, 64);

    // Mixed open-loop traffic: responds with an ingest trickle riding
    // the control lane (the background flusher picks the batches up).
    let frontend = FrontEnd::builder(Arc::clone(&service)).workers(1).build();
    let mut plan = respond_plan("scale", &texts, requests, rate);
    if mixed {
        plan.mix = MixWeights {
            respond: 90,
            ingest: 10,
            refresh: 0,
        };
        plan.ingest_batches = vec![("scale".to_string(), update_deltas(&dataset, 2, 4))];
    }
    let load = loadgen::run(&frontend, &plan);
    let load_ingests = load.ingests;
    drop(frontend);
    let store_bytes = service
        .tenant_store("scale")
        .expect("registered")
        .stats()
        .approx_bytes;
    SyntheticEntry {
        rows,
        load_mix: if mixed {
            "respond+ingest"
        } else {
            "respond_only"
        },
        generate_ms,
        preprocess_ms,
        solver_ms: report.total_solver_time().as_secs_f64() * 1e3,
        queries: report.queries,
        speeches: report.speeches,
        store_bytes,
        ingest_deltas,
        ingest_flush_ms,
        load,
        load_ingests,
    }
}

/// One load report as a JSON object on `lines`, at 4-space indent.
fn push_load(lines: &mut Vec<String>, indent: &str, load: &LoadReport, trailing_comma: bool) {
    lines.push(format!("{indent}\"load\": {{"));
    lines.push(format!("{indent}  \"responds\": {},", load.responds));
    lines.push(format!(
        "{indent}  \"p50_intended_micros\": {},",
        load.intended.percentile(50.0)
    ));
    lines.push(format!(
        "{indent}  \"p99_intended_micros\": {},",
        load.intended.percentile(99.0)
    ));
    lines.push(format!(
        "{indent}  \"p99_measured_micros\": {},",
        load.measured.percentile(99.0)
    ));
    lines.push(format!(
        "{indent}  \"max_intended_micros\": {},",
        load.intended.max()
    ));
    lines.push(format!("{indent}  \"answered\": {},", load.answered));
    lines.push(format!("{indent}  \"shed\": {},", load.shed));
    lines.push(format!("{indent}  \"expired\": {},", load.expired));
    lines.push(format!(
        "{indent}  \"in_deadline_rate\": {:.4},",
        load.in_deadline_rate()
    ));
    lines.push(format!(
        "{indent}  \"achieved_rate_per_sec\": {:.0},",
        load.achieved_rate()
    ));
    lines.push(format!(
        "{indent}  \"max_send_lag_micros\": {}",
        load.max_send_lag_micros
    ));
    lines.push(format!(
        "{indent}}}{}",
        if trailing_comma { "," } else { "" }
    ));
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    workers: usize,
    requests: usize,
    rate: f64,
    baseline: &SmokeBaseline,
    probes: &[ProbeEntry],
    scenarios: &[ScenarioEntry],
    synthetic: &[SyntheticEntry],
) -> String {
    let mut lines = Vec::new();
    lines.push("{".to_string());
    lines.push("  \"schema\": \"vqs-bench-scale/v1\",".to_string());
    lines.push(format!(
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    ));
    lines.push(format!("  \"workers\": {workers},"));
    lines.push("  \"loadgen\": {".to_string());
    lines.push("    \"arrival\": \"poisson\",".to_string());
    lines.push(format!("    \"rate_per_sec\": {rate:.0},"));
    lines.push(format!("    \"requests\": {requests},"));
    lines.push(format!(
        "    \"deadline_budget_ms\": {},",
        DEADLINE_BUDGET.as_millis()
    ));
    lines.push("    \"latency_origin\": \"intended_send_time\"".to_string());
    lines.push("  },".to_string());

    lines.push("  \"smoke_baseline\": {".to_string());
    lines.push(format!(
        "    \"preprocess_ms\": {:.3},",
        baseline.preprocess_ms
    ));
    lines.push(format!("    \"store_bytes\": {},", baseline.store_bytes));
    lines.push(format!(
        "    \"ingest_deltas\": {},",
        baseline.ingest_deltas
    ));
    lines.push(format!(
        "    \"ingest_flush_ms\": {:.3},",
        baseline.ingest_flush_ms
    ));
    lines.push(format!(
        "    \"wide_probe_16\": {},",
        baseline.wide_probe_16
    ));
    lines.push(format!(
        "    \"wide_probe_20\": {},",
        baseline.wide_probe_20
    ));
    push_load(&mut lines, "    ", &baseline.load, false);
    lines.push("  },".to_string());

    lines.push("  \"wide_probes\": [".to_string());
    for (i, entry) in probes.iter().enumerate() {
        let comma = if i + 1 == probes.len() { "" } else { "," };
        lines.push(format!(
            "    {{\"predicates\": {}, \"probes_per_lookup\": {}, \"lookup_nanos\": {}, \
             \"path\": \"{}\"}}{}",
            entry.predicates, entry.probes_per_lookup, entry.lookup_nanos, entry.path, comma
        ));
    }
    lines.push("  ],".to_string());

    lines.push("  \"scenarios\": [".to_string());
    for (i, entry) in scenarios.iter().enumerate() {
        lines.push("    {".to_string());
        lines.push(format!("      \"scenario\": \"{}\",", entry.scenario));
        lines.push(format!("      \"target\": \"{}\",", entry.target));
        lines.push(format!("      \"scale\": {},", entry.scale));
        lines.push(format!("      \"rows\": {},", entry.rows));
        lines.push(format!("      \"queries\": {},", entry.queries));
        lines.push(format!("      \"speeches\": {},", entry.speeches));
        lines.push(format!(
            "      \"preprocess_ms\": {:.3},",
            entry.preprocess_ms
        ));
        lines.push(format!("      \"solver_ms\": {:.3},", entry.solver_ms));
        lines.push(format!("      \"store_bytes\": {},", entry.store_bytes));
        push_load(&mut lines, "      ", &entry.load, false);
        lines.push(format!(
            "    }}{}",
            if i + 1 == scenarios.len() { "" } else { "," }
        ));
    }
    lines.push("  ],".to_string());

    lines.push("  \"synthetic\": [".to_string());
    for (i, entry) in synthetic.iter().enumerate() {
        lines.push("    {".to_string());
        lines.push("      \"tenant\": \"ScaleTenant\",".to_string());
        lines.push(format!("      \"rows\": {},", entry.rows));
        lines.push(format!("      \"load_mix\": \"{}\",", entry.load_mix));
        lines.push(format!("      \"generate_ms\": {:.3},", entry.generate_ms));
        lines.push(format!(
            "      \"preprocess_ms\": {:.3},",
            entry.preprocess_ms
        ));
        lines.push(format!("      \"solver_ms\": {:.3},", entry.solver_ms));
        lines.push(format!("      \"queries\": {},", entry.queries));
        lines.push(format!("      \"speeches\": {},", entry.speeches));
        lines.push(format!("      \"store_bytes\": {},", entry.store_bytes));
        lines.push(format!("      \"ingest_deltas\": {},", entry.ingest_deltas));
        lines.push(format!(
            "      \"ingest_flush_ms\": {:.3},",
            entry.ingest_flush_ms
        ));
        lines.push(format!("      \"load_ingests\": {},", entry.load_ingests));
        push_load(&mut lines, "      ", &entry.load, false);
        lines.push(format!(
            "    }}{}",
            if i + 1 == synthetic.len() { "" } else { "," }
        ));
    }
    lines.push("  ]".to_string());
    lines.push("}".to_string());
    let mut json = lines.join("\n");
    json.push('\n');
    json
}
