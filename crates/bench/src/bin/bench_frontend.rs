//! Front-end perf trajectory recorder: drives the mixed-tenant
//! `bench_service` workload through the bounded [`FrontEnd`] queue and
//! emits `BENCH_frontend.json` with three sections:
//!
//! * `direct` — the baseline: the same workload via bare
//!   `VoiceService::respond` calls (what `bench_service` measures).
//! * `frontend` — the workload submitted through the admission queue
//!   with pipelined clients; records saturation throughput and the
//!   ratio against the direct baseline (the acceptance bar is ≥ 0.9).
//! * `burst` — a synchronized thundering herd far past a small
//!   admission cap: explicit-shed rate, peak queue depth (bounded!),
//!   and p50/p99 submit→completion latency of the *served* requests.
//! * `deadline` — the same herd with a per-request deadline budget
//!   against a store whose two-predicate speeches were evicted, so
//!   requests route through the live-solve rung of the degradation
//!   ladder: deadline-hit rate, degraded-answer rate, and latency
//!   percentiles of the in-deadline answers.
//!
//! CI runs it as a smoke step (valid JSON, no thresholds); the
//! committed baseline forms the trajectory across PRs.
//!
//! Usage: `bench_frontend [--out PATH] [--scale X] [--requests N]
//! [--threads T] [--workers W] [--burst N] [--burst-queue N]
//! [--budget-micros N]`

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use vqs_bench::{scenario_dataset, single_target_config, RunConfig};
use vqs_engine::prelude::*;

/// The pinned tenants, identical to `bench_service`.
const PINNED: [(&str, char, &str); 2] = [("flights", 'F', "cancelled"), ("acs", 'A', "hearing")];

/// Requests per [`FrontEnd::submit_all`] chunk in the throughput phase
/// (amortizes the queue-lock handoff, as an aggregating gateway would).
const CHUNK: usize = 64;

fn percentile(sorted_micros: &[u64], p: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let rank = (p * (sorted_micros.len() - 1) as f64).round() as usize;
    sorted_micros[rank.min(sorted_micros.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut requests = 2_000usize;
    let mut threads = 4usize;
    let mut workers = 3usize;
    let mut burst = 4_096usize;
    let mut burst_queue = 128usize;
    let mut budget_micros = 4_000u64;
    let mut config = RunConfig {
        scale: 0.02,
        ..Default::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} requires a value");
                    std::process::exit(2);
                })
                .to_string()
        };
        match arg.as_str() {
            "--out" => out = Some(value("--out")),
            "--scale" => config.scale = value("--scale").parse().expect("numeric scale"),
            "--requests" => requests = value("--requests").parse().expect("numeric count"),
            "--threads" => threads = value("--threads").parse().expect("numeric count"),
            "--workers" => workers = value("--workers").parse().expect("numeric count"),
            "--burst" => burst = value("--burst").parse().expect("numeric count"),
            "--burst-queue" => burst_queue = value("--burst-queue").parse().expect("numeric count"),
            "--budget-micros" => {
                budget_micros = value("--budget-micros").parse().expect("numeric micros")
            }
            other => {
                eprintln!("unknown argument '{other}'");
                std::process::exit(2);
            }
        }
    }

    // ---- Shared fixture: the bench_service mixed-tenant deployment.
    let service = Arc::new(ServiceBuilder::new().build());
    let mut logs: Vec<(String, Vec<LogEntry>)> = Vec::new();
    for (tenant, letter, target) in PINNED {
        let dataset = scenario_dataset(letter, &config);
        let engine_config = single_target_config(&dataset, target);
        let relation = target_relation(&dataset, &engine_config, target).expect("pinned target");
        service
            .register_dataset(TenantSpec::new(tenant, dataset, engine_config))
            .expect("registration succeeds");
        let mix = RequestMix {
            name: "bench",
            help: 0,
            repeat: 0,
            s_query: requests,
            u_query: 0,
            other: 0,
        };
        let phrase = target.replace('_', " ");
        logs.push((
            tenant.to_string(),
            generate_log(&relation, &phrase, &mix, 0xF0E7),
        ));
    }
    let logs = &logs;
    let pick = |worker: usize, round: usize| -> ServiceRequest {
        let (tenant, log) = &logs[(worker + round) % logs.len()];
        let entry = &log[(worker * 7919 + round) % log.len()];
        ServiceRequest::new(tenant, &entry.text)
    };

    // ---- Throughput: direct baseline vs the bounded front-end,
    // interleaved over several rounds with the best round of each kept
    // (the phases are tens of milliseconds; interleaving + best-of-N
    // cancels background machine noise the way criterion's sampling
    // does).
    let mut direct_secs = f64::MAX;
    let mut fe_secs = f64::MAX;
    let direct_total = threads * requests;
    let fe_total = threads * requests;
    // Back-pressured producers: clients fire their whole workload in
    // tenant-homogeneous chunks and rely on the Block policy at the
    // bounded queue — they park while the serving workers drain, so
    // this measures the worker set's saturation throughput through the
    // admission queue (the shed path is exercised by the burst phase).
    let frontend = FrontEnd::builder(Arc::clone(&service))
        .workers(workers)
        .queue_capacity(1024)
        .policy(OverloadPolicy::Block)
        .build();
    for _ in 0..3 {
        let start = Instant::now();
        let round_total: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let service = &service;
                    scope.spawn(move || {
                        for round in 0..requests {
                            let response = service.respond(&pick(worker, round));
                            assert!(!response.text().is_empty());
                        }
                        requests
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(round_total, direct_total);
        direct_secs = direct_secs.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        let round_total: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let frontend = &frontend;
                    scope.spawn(move || {
                        // Tenant-homogeneous chunks, alternating tenants
                        // per chunk — the shape an aggregating gateway
                        // produces, and still a mixed-tenant workload.
                        let mut outstanding: VecDeque<ChunkTicket> =
                            VecDeque::with_capacity(requests / CHUNK + 1);
                        let mut served = 0usize;
                        let mut round = 0usize;
                        while round < requests {
                            let chunk = CHUNK.min(requests - round);
                            let (tenant, log) = &logs[(worker + round / CHUNK) % logs.len()];
                            let batch: Vec<ServiceRequest> = (0..chunk)
                                .map(|i| {
                                    let entry = &log[(worker * 7919 + round + i) % log.len()];
                                    ServiceRequest::new(tenant, &entry.text)
                                })
                                .collect();
                            outstanding.push_back(frontend.submit_chunk(batch));
                            round += chunk;
                        }
                        // Wait for the tail first: per-lane FIFO means the
                        // last submitted chunk completes (nearly) last, so
                        // the rest drain on the lock-free ready path instead
                        // of parking once per ticket.
                        if let Some(last) = outstanding.pop_back() {
                            served += last.into_inner().len();
                        }
                        for ticket in outstanding {
                            let responses = ticket.into_inner();
                            assert!(responses.iter().all(|r| !r.text().is_empty()));
                            served += responses.len();
                        }
                        served
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(round_total, fe_total);
        fe_secs = fe_secs.min(start.elapsed().as_secs_f64());
    }
    let direct_per_sec = direct_total as f64 / direct_secs.max(1e-9);
    let fe_per_sec = fe_total as f64 / fe_secs.max(1e-9);
    let fe_stats = frontend.stats();
    assert_eq!(fe_stats.shed, 0, "throughput phase must not shed");
    assert_eq!(fe_stats.completed as usize, 3 * fe_total);
    frontend.shutdown();

    // ---- Saturation burst: a herd far past a small admission cap.
    // Every request is fired without waiting; the queue must stay
    // bounded and the overflow must come back as explicit overload
    // answers rather than latency.
    let burst_frontend = FrontEnd::builder(Arc::clone(&service))
        .workers(workers)
        .queue_capacity(burst_queue)
        .build();
    let per_thread = burst.div_ceil(threads);
    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(burst);
    let mut shed_answers = 0usize;
    let outcomes: Vec<(Vec<u64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let frontend = &burst_frontend;
                scope.spawn(move || {
                    let mut tickets = Vec::with_capacity(per_thread);
                    for round in 0..per_thread {
                        tickets.push((Instant::now(), frontend.submit(pick(worker, round))));
                    }
                    let mut latencies = Vec::with_capacity(per_thread);
                    let mut shed = 0usize;
                    for (submitted, ticket) in tickets {
                        let response = ticket.into_inner();
                        if matches!(response.answer, Answer::Overloaded { .. }) {
                            shed += 1;
                        } else {
                            latencies.push(submitted.elapsed().as_micros() as u64);
                        }
                    }
                    (latencies, shed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let burst_secs = start.elapsed().as_secs_f64();
    for (lat, shed) in outcomes {
        latencies.extend(lat);
        shed_answers += shed;
    }
    latencies.sort_unstable();
    let burst_stats = burst_frontend.stats();
    assert_eq!(burst_stats.shed as usize, shed_answers);
    assert!(
        burst_stats.peak_queued as usize <= burst_queue,
        "queue depth {} exceeded the admission cap {}",
        burst_stats.peak_queued,
        burst_queue
    );
    burst_frontend.shutdown();
    let offered = per_thread * threads;
    let served = offered - shed_answers;

    // ---- Deadline pressure: the same herd, but every request carries
    // a deadline budget, served by a dedicated deployment that (a) uses
    // the paper's exact summarizer so budgeted live solves can hit real
    // timeouts and rerun greedily (`Degradation::Greedy`), and (b) has
    // its multi-predicate speeches evicted so those requests route
    // through the live-solve rung of the degradation ladder instead of
    // the store-hit fast path. Measures the deadline-hit rate (answers
    // that beat their budget vs `Expired`), the degraded-answer rate
    // among the in-deadline answers, and their submit→completion
    // latency percentiles.
    let deadline_service = Arc::new(
        ServiceBuilder::new()
            .summarizer(vqs_core::prelude::ExactSummarizer::paper())
            .build(),
    );
    // 10× the shared scale: large enough subsets that a budgeted exact
    // search can genuinely run out of time mid-solve (the greedy rung),
    // small enough that exact pre-processing stays in bench territory.
    let deadline_config = RunConfig {
        scale: config.scale * 10.0,
        ..config.clone()
    };
    for (tenant, letter, target) in PINNED {
        let dataset = scenario_dataset(letter, &deadline_config);
        let engine_config = single_target_config(&dataset, target);
        deadline_service
            .register_dataset(TenantSpec::new(tenant, dataset, engine_config))
            .expect("registration succeeds");
        let store = deadline_service
            .tenant_store(tenant)
            .expect("pinned tenant");
        for speech in store.snapshot() {
            if speech.query.predicates().len() >= 2 {
                store.remove(&speech.query);
            }
        }
    }
    let budget = std::time::Duration::from_micros(budget_micros);
    let deadline_frontend = FrontEnd::builder(Arc::clone(&deadline_service))
        .workers(workers)
        .queue_capacity(burst_queue)
        .build();
    let start = Instant::now();
    let outcomes: Vec<(Vec<u64>, usize, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let frontend = &deadline_frontend;
                scope.spawn(move || {
                    let mut tickets = Vec::with_capacity(per_thread);
                    for round in 0..per_thread {
                        let request = pick(worker, round).with_budget(budget);
                        tickets.push((Instant::now(), frontend.submit(request)));
                    }
                    let mut latencies = Vec::with_capacity(per_thread);
                    let (mut shed, mut expired, mut degraded) = (0usize, 0usize, 0usize);
                    for (submitted, ticket) in tickets {
                        let response = ticket.into_inner();
                        match response.answer {
                            Answer::Overloaded { .. } => shed += 1,
                            Answer::Expired { .. } => expired += 1,
                            _ => {
                                if response.degradation != Degradation::None {
                                    degraded += 1;
                                }
                                latencies.push(submitted.elapsed().as_micros() as u64);
                            }
                        }
                    }
                    (latencies, shed, expired, degraded)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let deadline_secs = start.elapsed().as_secs_f64();
    let mut deadline_latencies: Vec<u64> = Vec::with_capacity(burst);
    let (mut deadline_shed, mut deadline_expired, mut deadline_degraded) = (0usize, 0usize, 0usize);
    for (lat, shed, expired, degraded) in outcomes {
        deadline_latencies.extend(lat);
        deadline_shed += shed;
        deadline_expired += expired;
        deadline_degraded += degraded;
    }
    deadline_latencies.sort_unstable();
    let deadline_stats = deadline_frontend.stats();
    assert_eq!(deadline_stats.expired as usize, deadline_expired);
    assert_eq!(deadline_stats.degraded as usize, deadline_degraded);
    assert_eq!(
        deadline_stats.submitted,
        deadline_stats.completed + deadline_stats.shed + deadline_stats.expired,
        "front-end counters must reconcile"
    );
    deadline_frontend.shutdown();
    let deadline_offered = per_thread * threads;
    let deadline_admitted = deadline_offered - deadline_shed;
    let deadline_completed = deadline_admitted - deadline_expired;
    let deadline_hit_rate = deadline_completed as f64 / deadline_admitted.max(1) as f64;
    let degraded_rate = deadline_degraded as f64 / deadline_completed.max(1) as f64;

    let mut lines = Vec::new();
    lines.push("{".to_string());
    lines.push("  \"schema\": \"vqs-bench-frontend/v2\",".to_string());
    lines.push(format!("  \"scale\": {},", config.scale));
    lines.push("  \"direct\": {".to_string());
    lines.push(format!("    \"threads\": {threads},"));
    lines.push(format!("    \"requests\": {direct_total},"));
    lines.push(format!("    \"wall_ms\": {:.3},", direct_secs * 1e3));
    lines.push(format!("    \"requests_per_sec\": {direct_per_sec:.0}"));
    lines.push("  },".to_string());
    lines.push("  \"frontend\": {".to_string());
    lines.push(format!("    \"workers\": {workers},"));
    lines.push(format!("    \"threads\": {threads},"));
    lines.push("    \"queue_capacity\": 1024,".to_string());
    lines.push(format!("    \"requests\": {fe_total},"));
    lines.push(format!("    \"wall_ms\": {:.3},", fe_secs * 1e3));
    lines.push(format!("    \"requests_per_sec\": {fe_per_sec:.0},"));
    lines.push(format!(
        "    \"ratio_vs_direct\": {:.3}",
        fe_per_sec / direct_per_sec.max(1e-9)
    ));
    lines.push("  },".to_string());
    lines.push("  \"burst\": {".to_string());
    lines.push(format!("    \"queue_capacity\": {burst_queue},"));
    lines.push(format!("    \"offered\": {offered},"));
    lines.push(format!("    \"served\": {served},"));
    lines.push(format!("    \"shed\": {shed_answers},"));
    lines.push(format!(
        "    \"shed_rate\": {:.3},",
        shed_answers as f64 / offered.max(1) as f64
    ));
    lines.push(format!("    \"peak_queued\": {},", burst_stats.peak_queued));
    lines.push(format!("    \"wall_ms\": {:.3},", burst_secs * 1e3));
    lines.push(format!(
        "    \"p50_micros\": {},",
        percentile(&latencies, 0.50)
    ));
    lines.push(format!(
        "    \"p99_micros\": {}",
        percentile(&latencies, 0.99)
    ));
    lines.push("  },".to_string());
    lines.push("  \"deadline\": {".to_string());
    lines.push(format!("    \"budget_micros\": {budget_micros},"));
    lines.push(format!("    \"queue_capacity\": {burst_queue},"));
    lines.push(format!("    \"offered\": {deadline_offered},"));
    lines.push(format!("    \"shed\": {deadline_shed},"));
    lines.push(format!("    \"expired\": {deadline_expired},"));
    lines.push(format!("    \"completed\": {deadline_completed},"));
    lines.push(format!(
        "    \"deadline_hit_rate\": {deadline_hit_rate:.3},"
    ));
    lines.push(format!("    \"degraded\": {deadline_degraded},"));
    lines.push(format!("    \"degraded_answer_rate\": {degraded_rate:.3},"));
    lines.push(format!("    \"wall_ms\": {:.3},", deadline_secs * 1e3));
    lines.push(format!(
        "    \"p50_micros\": {},",
        percentile(&deadline_latencies, 0.50)
    ));
    lines.push(format!(
        "    \"p99_micros\": {}",
        percentile(&deadline_latencies, 0.99)
    ));
    lines.push("  }".to_string());
    lines.push("}".to_string());
    let mut json = lines.join("\n");
    json.push('\n');

    match out {
        Some(path) => {
            std::fs::write(&path, &json).expect("write BENCH_frontend.json");
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }
}
