//! Open-loop, coordinated-omission-safe load generation for the
//! serving front-end.
//!
//! The committed service benches before ISSUE 10 were *closed-loop*:
//! the driver sent a request, waited for the response, then sent the
//! next. Under that protocol a server stall silently pauses the load
//! generator too — the requests that *would* have arrived during the
//! stall are never sent, so their (large) latencies are never measured.
//! That is coordinated omission, and it makes recorded p99s
//! systematically optimistic (see Gil Tene's HdrHistogram work).
//!
//! This module fixes the methodology:
//!
//! * **[`Schedule`]** — requests live on a fixed arrival timeline
//!   (constant-rate or Poisson), generated up front from a seed.
//!   The timeline never reacts to the server.
//! * **Open-loop driving** — [`run`] submits each request at its
//!   scheduled instant through the non-blocking [`FrontEnd::submit`]
//!   family and *never* waits in the submission path; a collector
//!   thread waits tickets in FIFO order and stamps completions.
//! * **Intended-time latency** — each sample is
//!   `completion − intended send time`, so queueing delay a stalled
//!   server causes is charged to the server, not silently dropped.
//!   The from-actual-send sketch is kept alongside: its divergence
//!   from the intended-time sketch is exactly the omission bias (and
//!   [`Pacing::ClosedLoop`] is retained to *quantify* the bias — see
//!   the probe test).
//! * **[`LatencySketch`]** — HdrHistogram-style log-bucketed
//!   percentiles implemented in-crate: power-of-two ranges with
//!   [`SUB_BUCKET_BITS`] sub-buckets each, bounded relative error
//!   (≤ 1/32), deterministic, dependency-free, and reported from the
//!   bucket's *upper* bound so sketch percentiles are never optimistic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vqs_data::GeneratedDataset;
use vqs_engine::prelude::{
    Answer, Degradation, FrontEnd, IngestTicket, RefreshTicket, ResponseTicket, RowDelta,
    ServiceRequest,
};

/// Sub-bucket resolution bits of [`LatencySketch`]: each power-of-two
/// value range splits into `2^SUB_BUCKET_BITS` equal sub-buckets, so
/// the relative quantization error is at most `2^-SUB_BUCKET_BITS`
/// (1/32 ≈ 3.1%).
pub const SUB_BUCKET_BITS: u32 = 5;

const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;
/// Bucket count covering the full `u64` range: one exact bucket per
/// value below [`SUB_BUCKETS`], then `SUB_BUCKETS` buckets per octave.
const BUCKET_COUNT: usize = ((64 - SUB_BUCKET_BITS as usize) + 1) * SUB_BUCKETS as usize;

/// A deterministic, dependency-free log-bucketed latency histogram
/// (HdrHistogram-style). Values are microseconds.
#[derive(Clone)]
pub struct LatencySketch {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencySketch {
    fn default() -> LatencySketch {
        LatencySketch::new()
    }
}

impl std::fmt::Debug for LatencySketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencySketch")
            .field("count", &self.count)
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .field("max", &self.max)
            .finish()
    }
}

/// Index of the bucket holding `value`.
fn bucket_of(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - u64::from(value.leading_zeros());
    let shift = msb - u64::from(SUB_BUCKET_BITS);
    let sub = (value >> shift) & (SUB_BUCKETS - 1);
    ((msb - u64::from(SUB_BUCKET_BITS) + 1) * SUB_BUCKETS + sub) as usize
}

/// Largest value mapping into bucket `index` — the conservative
/// (never-optimistic) representative reported by percentiles.
fn bucket_high(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let block = index / SUB_BUCKETS; // ≥ 1
    let sub = index % SUB_BUCKETS;
    let shift = block - 1;
    ((SUB_BUCKETS + sub + 1) << shift) - 1
}

impl LatencySketch {
    /// An empty sketch.
    pub fn new() -> LatencySketch {
        LatencySketch {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one latency sample (microseconds).
    pub fn record(&mut self, micros: u64) {
        self.buckets[bucket_of(micros)] += 1;
        self.count += 1;
        self.sum += micros;
        self.min = self.min.min(micros);
        self.max = self.max.max(micros);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded samples (tracked outside the buckets).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact minimum sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-th percentile (0 < p ≤ 100) as the containing bucket's
    /// upper bound: within `1/2^SUB_BUCKET_BITS` relative error above
    /// the exact order statistic, never below it.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The true sample can't exceed the tracked max.
                return bucket_high(index).min(self.max);
            }
        }
        self.max
    }

    /// Fold another sketch into this one.
    pub fn merge(&mut self, other: &LatencySketch) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Arrival process of the request timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Evenly spaced arrivals at `rate` requests per second.
    Constant {
        /// Offered requests per second.
        rate: f64,
    },
    /// Poisson arrivals (exponential inter-arrival gaps) averaging
    /// `rate` requests per second — the memoryless process real
    /// independent voice sessions approximate.
    Poisson {
        /// Mean offered requests per second.
        rate: f64,
    },
}

/// A fixed arrival timeline: offsets from the run's origin at which
/// request 0, 1, 2, … are *intended* to be sent. Pure in
/// `(arrival, n, seed)` — the server never influences it.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Intended send offset of each request.
    pub offsets: Vec<Duration>,
}

impl Schedule {
    /// Generate the timeline for `n` requests.
    pub fn new(arrival: Arrival, n: usize, seed: u64) -> Schedule {
        let mut offsets = Vec::with_capacity(n);
        match arrival {
            Arrival::Constant { rate } => {
                let gap = 1.0 / rate.max(f64::MIN_POSITIVE);
                for i in 0..n {
                    offsets.push(Duration::from_secs_f64(gap * i as f64));
                }
            }
            Arrival::Poisson { rate } => {
                let rate = rate.max(f64::MIN_POSITIVE);
                let mut rng = StdRng::seed_from_u64(seed);
                let mut at = 0.0f64;
                for _ in 0..n {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    at += -u.ln() / rate;
                    offsets.push(Duration::from_secs_f64(at));
                }
            }
        }
        Schedule { offsets }
    }

    /// Number of scheduled requests.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }
}

/// How the driver paces itself against the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pacing {
    /// Submit at the intended instant regardless of outstanding work;
    /// latency is measured from the *intended* send time. The honest
    /// mode — always use this for recorded numbers.
    #[default]
    OpenLoop,
    /// Wait for each response before submitting the next request (the
    /// pre-ISSUE-10 protocol). Kept to *measure* the coordinated
    /// omission bias: under a server stall this mode's p99 stays
    /// small because the stalled-out arrivals are simply never sent.
    ClosedLoop,
}

/// Relative weights of the traffic mix (zero disables an op kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixWeights {
    /// Interactive `respond` requests.
    pub respond: u32,
    /// Streaming delta batches via `submit_ingest`.
    pub ingest: u32,
    /// Full-dataset refreshes via `submit_refresh`.
    pub refresh: u32,
}

impl MixWeights {
    /// Interactive-only traffic.
    pub fn respond_only() -> MixWeights {
        MixWeights {
            respond: 1,
            ingest: 0,
            refresh: 0,
        }
    }
}

/// One load-generation run: the timeline, the traffic mix, and the
/// request material cycled through it.
pub struct LoadPlan {
    /// The fixed arrival timeline.
    pub schedule: Schedule,
    /// Traffic mix weights; the op of event `i` is drawn from `seed`.
    pub mix: MixWeights,
    /// Prototype interactive requests, cycled (cloned per send).
    pub requests: Vec<ServiceRequest>,
    /// Prototype `(tenant, deltas)` ingest batches, cycled.
    pub ingest_batches: Vec<(String, Vec<RowDelta>)>,
    /// Refresh material: `(tenant, dataset)` resubmitted per refresh op.
    pub refresh: Option<(String, GeneratedDataset)>,
    /// Open- vs closed-loop driving.
    pub pacing: Pacing,
    /// Budget used to classify a respond completion as in-deadline
    /// (measured from the intended send time).
    pub deadline_budget: Option<Duration>,
    /// Seed for the mix draws.
    pub seed: u64,
}

impl LoadPlan {
    /// An interactive-only open-loop plan over `requests`.
    pub fn respond_only(schedule: Schedule, requests: Vec<ServiceRequest>, seed: u64) -> LoadPlan {
        LoadPlan {
            schedule,
            mix: MixWeights::respond_only(),
            requests,
            ingest_batches: Vec::new(),
            refresh: None,
            pacing: Pacing::OpenLoop,
            deadline_budget: None,
            seed,
        }
    }
}

/// Outcome of one [`run`].
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Respond latencies from the *intended* send time — the honest,
    /// coordinated-omission-safe distribution.
    pub intended: LatencySketch,
    /// Respond latencies from the *actual* send time — what a
    /// closed-loop driver would have reported; kept to expose the
    /// omission bias (`intended` − `measured` divergence).
    pub measured: LatencySketch,
    /// Ingest/refresh completion latencies from intended send time.
    pub control: LatencySketch,
    /// Events submitted, by kind.
    pub responds: u64,
    /// Ingest batches submitted.
    pub ingests: u64,
    /// Refreshes submitted.
    pub refreshes: u64,
    /// Respond completions with a served answer (speech, extension,
    /// computed, help, unsupported, no-summary).
    pub answered: u64,
    /// Respond completions shed with [`Answer::Overloaded`].
    pub shed: u64,
    /// Respond completions expired past their deadline.
    pub expired: u64,
    /// Respond completions with [`Answer::Internal`] (bug signal).
    pub internal: u64,
    /// Answered completions that stepped down the degradation ladder.
    pub degraded: u64,
    /// Answered completions within [`LoadPlan::deadline_budget`] of
    /// their intended send time (equals `answered` when no budget set).
    pub in_deadline: u64,
    /// Ingest/refresh tickets resolving `Ok`.
    pub control_ok: u64,
    /// Ingest/refresh tickets resolving `Err` (overload included).
    pub control_err: u64,
    /// Worst submission slip: how far an actual send lagged its
    /// intended instant (µs). Large values mean the *generator*
    /// saturated and even intended-time numbers understate the server.
    pub max_send_lag_micros: u64,
    /// Wall-clock span from first intended send to last completion.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Offered rate actually achieved, in events per second.
    pub fn achieved_rate(&self) -> f64 {
        let total = self.responds + self.ingests + self.refreshes;
        if self.elapsed.is_zero() {
            0.0
        } else {
            total as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// In-deadline fraction of respond submissions (sheds and expiries
    /// count against it).
    pub fn in_deadline_rate(&self) -> f64 {
        if self.responds == 0 {
            1.0
        } else {
            self.in_deadline as f64 / self.responds as f64
        }
    }
}

/// A submitted event awaiting completion, in submission order.
enum Pending {
    Respond {
        intended: Instant,
        sent: Instant,
        ticket: ResponseTicket,
    },
    Ingest {
        intended: Instant,
        ticket: IngestTicket,
    },
    Refresh {
        intended: Instant,
        ticket: RefreshTicket,
    },
}

/// Sleep (coarse) then spin (fine) until `target`. Plain `sleep` alone
/// overshoots by a scheduler quantum, which at thousands of requests
/// per second would smear the whole timeline.
fn pace_until(target: Instant) {
    loop {
        let now = Instant::now();
        if now >= target {
            return;
        }
        let remaining = target - now;
        if remaining > Duration::from_micros(500) {
            std::thread::sleep(remaining - Duration::from_micros(400));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Execute `plan` against `frontend`.
///
/// The calling thread is the submitter: it walks the schedule and, in
/// open-loop mode, never blocks on the server. A collector thread waits
/// tickets in FIFO submission order and stamps completion times; since
/// a ready ticket's wait returns immediately, FIFO stamping can only
/// *overstate* a completion time (never understate — conservative in
/// the same direction as the bucket bounds).
pub fn run(frontend: &FrontEnd, plan: &LoadPlan) -> LoadReport {
    let total_weight = plan.mix.respond + plan.mix.ingest + plan.mix.refresh;
    assert!(total_weight > 0, "empty traffic mix");
    assert!(
        plan.mix.respond == 0 || !plan.requests.is_empty(),
        "respond weight with no prototype requests"
    );
    assert!(
        plan.mix.ingest == 0 || !plan.ingest_batches.is_empty(),
        "ingest weight with no prototype batches"
    );
    assert!(
        plan.mix.refresh == 0 || plan.refresh.is_some(),
        "refresh weight with no refresh material"
    );

    let (tx, rx) = mpsc::channel::<Pending>();
    let max_send_lag = AtomicU64::new(0);
    let mut report = LoadReport {
        intended: LatencySketch::new(),
        measured: LatencySketch::new(),
        control: LatencySketch::new(),
        responds: 0,
        ingests: 0,
        refreshes: 0,
        answered: 0,
        shed: 0,
        expired: 0,
        internal: 0,
        degraded: 0,
        in_deadline: 0,
        control_ok: 0,
        control_err: 0,
        max_send_lag_micros: 0,
        elapsed: Duration::ZERO,
    };
    // Give the submitter a head start so request 0 is not already late.
    let origin = Instant::now() + Duration::from_millis(2);
    let mut rng = StdRng::seed_from_u64(plan.seed);
    let mut respond_cursor = 0usize;
    let mut ingest_cursor = 0usize;

    std::thread::scope(|scope| {
        let collector = scope.spawn(move || {
            let mut intended_sketch = LatencySketch::new();
            let mut measured_sketch = LatencySketch::new();
            let mut control_sketch = LatencySketch::new();
            let mut counts = [0u64; 8]; // answered, shed, expired, internal, degraded, in_deadline, control_ok, control_err
            let mut last_completion = origin;
            for pending in rx.iter() {
                match pending {
                    Pending::Respond {
                        intended,
                        sent,
                        ticket,
                    } => {
                        let response = ticket.into_inner();
                        let done = Instant::now();
                        last_completion = last_completion.max(done);
                        let from_intended = done.saturating_duration_since(intended);
                        let from_sent = done.saturating_duration_since(sent);
                        intended_sketch.record(from_intended.as_micros() as u64);
                        measured_sketch.record(from_sent.as_micros() as u64);
                        match &response.answer {
                            Answer::Overloaded { .. } => counts[1] += 1,
                            Answer::Expired { .. } => counts[2] += 1,
                            Answer::Internal { .. } => counts[3] += 1,
                            _ => {
                                counts[0] += 1;
                                if response.degradation != Degradation::None {
                                    counts[4] += 1;
                                }
                                if plan
                                    .deadline_budget
                                    .is_none_or(|budget| from_intended <= budget)
                                {
                                    counts[5] += 1;
                                }
                            }
                        }
                    }
                    Pending::Ingest { intended, ticket } => {
                        let outcome = ticket.into_inner();
                        let done = Instant::now();
                        last_completion = last_completion.max(done);
                        control_sketch
                            .record(done.saturating_duration_since(intended).as_micros() as u64);
                        match outcome {
                            Ok(_) => counts[6] += 1,
                            Err(_) => counts[7] += 1,
                        }
                    }
                    Pending::Refresh { intended, ticket } => {
                        let outcome = ticket.into_inner();
                        let done = Instant::now();
                        last_completion = last_completion.max(done);
                        control_sketch
                            .record(done.saturating_duration_since(intended).as_micros() as u64);
                        match outcome {
                            Ok(_) => counts[6] += 1,
                            Err(_) => counts[7] += 1,
                        }
                    }
                }
            }
            (
                intended_sketch,
                measured_sketch,
                control_sketch,
                counts,
                last_completion,
            )
        });

        for offset in &plan.schedule.offsets {
            let intended = origin + *offset;
            pace_until(intended);
            let sent = Instant::now();
            let lag = sent.saturating_duration_since(intended).as_micros() as u64;
            max_send_lag.fetch_max(lag, Ordering::Relaxed);
            let pick = rng.gen_range(0..total_weight);
            if pick < plan.mix.respond {
                let request = plan.requests[respond_cursor % plan.requests.len()].clone();
                respond_cursor += 1;
                report.responds += 1;
                let ticket = frontend.submit(request);
                if plan.pacing == Pacing::ClosedLoop {
                    // The omission under measurement: wait here, so a
                    // stall pauses the generator itself.
                    let _ = ticket.wait();
                }
                tx.send(Pending::Respond {
                    intended,
                    sent,
                    ticket,
                })
                .expect("collector alive");
            } else if pick < plan.mix.respond + plan.mix.ingest {
                let (tenant, deltas) =
                    plan.ingest_batches[ingest_cursor % plan.ingest_batches.len()].clone();
                ingest_cursor += 1;
                report.ingests += 1;
                let ticket = frontend.submit_ingest(tenant, deltas);
                if plan.pacing == Pacing::ClosedLoop {
                    let _ = ticket.wait();
                }
                tx.send(Pending::Ingest { intended, ticket })
                    .expect("collector alive");
            } else {
                let (tenant, dataset) = plan.refresh.as_ref().expect("refresh material checked");
                report.refreshes += 1;
                let ticket = frontend.submit_refresh(tenant.clone(), dataset.clone(), Vec::new());
                if plan.pacing == Pacing::ClosedLoop {
                    let _ = ticket.wait();
                }
                tx.send(Pending::Refresh { intended, ticket })
                    .expect("collector alive");
            }
        }
        drop(tx);
        let (intended_sketch, measured_sketch, control_sketch, counts, last_completion) =
            collector.join().expect("collector panicked");
        report.intended = intended_sketch;
        report.measured = measured_sketch;
        report.control = control_sketch;
        report.answered = counts[0];
        report.shed = counts[1];
        report.expired = counts[2];
        report.internal = counts[3];
        report.degraded = counts[4];
        report.in_deadline = counts[5];
        report.control_ok = counts[6];
        report.control_err = counts[7];
        report.elapsed = last_completion.saturating_duration_since(origin);
    });
    report.max_send_lag_micros = max_send_lag.load(Ordering::Relaxed);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vqs_data::{DimSpec, SynthSpec, TargetSpec};
    use vqs_engine::prelude::{
        Configuration, Fault, FaultPlan, FaultSite, ServiceBuilder, TenantSpec, VoiceService,
    };

    #[test]
    fn schedules_are_reproducible_per_seed() {
        let a = Schedule::new(Arrival::Poisson { rate: 500.0 }, 200, 9);
        let b = Schedule::new(Arrival::Poisson { rate: 500.0 }, 200, 9);
        assert_eq!(a, b);
        let c = Schedule::new(Arrival::Poisson { rate: 500.0 }, 200, 10);
        assert_ne!(a, c);
        // Offsets are sorted and strictly increasing in expectation.
        assert!(a.offsets.windows(2).all(|w| w[0] <= w[1]));

        let constant = Schedule::new(Arrival::Constant { rate: 1000.0 }, 5, 0);
        let gaps: Vec<u64> = constant
            .offsets
            .windows(2)
            .map(|w| (w[1] - w[0]).as_micros() as u64)
            .collect();
        assert_eq!(gaps, vec![1000; 4]);
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        let schedule = Schedule::new(Arrival::Poisson { rate: 1000.0 }, 4000, 42);
        let span = schedule.offsets.last().unwrap().as_secs_f64();
        let rate = 4000.0 / span;
        assert!(
            (800.0..1200.0).contains(&rate),
            "poisson mean rate off: {rate}"
        );
    }

    #[test]
    fn sketch_matches_exact_percentiles_within_bucket_error() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut sketch = LatencySketch::new();
        let mut exact: Vec<u64> = Vec::new();
        for _ in 0..5_000 {
            // Log-uniform over µs..10s so every octave is exercised.
            let log: f64 = rng.gen_range(0.0..7.0);
            let v = 10f64.powf(log) as u64;
            sketch.record(v);
            exact.push(v);
        }
        exact.sort_unstable();
        for p in [10.0, 50.0, 90.0, 99.0, 99.9] {
            let rank = ((p / 100.0) * exact.len() as f64).ceil().max(1.0) as usize;
            let truth = exact[rank.min(exact.len()) - 1];
            let estimate = sketch.percentile(p);
            assert!(
                estimate >= truth,
                "p{p}: sketch {estimate} below exact {truth}"
            );
            let bound = truth + truth / 16 + 1;
            assert!(
                estimate <= bound,
                "p{p}: sketch {estimate} above error bound {bound} (exact {truth})"
            );
        }
        assert_eq!(sketch.min(), exact[0]);
        assert_eq!(sketch.max(), *exact.last().unwrap());
        let exact_mean = exact.iter().sum::<u64>() as f64 / exact.len() as f64;
        assert!((sketch.mean() - exact_mean).abs() < 1e-6);
    }

    #[test]
    fn sketch_buckets_are_exact_below_resolution() {
        let mut sketch = LatencySketch::new();
        for v in 0..32u64 {
            sketch.record(v);
        }
        assert_eq!(sketch.percentile(50.0), 15);
        assert_eq!(sketch.percentile(100.0), 31);
    }

    fn service_with_tenant(fault_plan: Option<Arc<FaultPlan>>) -> Arc<VoiceService> {
        let data = SynthSpec {
            name: "lg".to_string(),
            dims: vec![
                DimSpec::named("season", &["Winter", "Summer"]),
                DimSpec::named("region", &["East", "West"]),
            ],
            targets: vec![TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0))],
            rows: 200,
        }
        .generate(3, 1.0);
        let config = Configuration::new("lg", &["season", "region"], &["delay"]);
        let mut builder = ServiceBuilder::new().workers(1);
        if let Some(plan) = fault_plan {
            builder = builder.fault_plan(plan);
        }
        let service = Arc::new(builder.build());
        service
            .register_dataset(TenantSpec::new("lg", data, config))
            .unwrap();
        service
    }

    fn respond_plan(n: usize, rate: f64, pacing: Pacing) -> LoadPlan {
        let requests = vec![
            ServiceRequest::new("lg", "delay in Winter?"),
            ServiceRequest::new("lg", "delay in Summer in the East?"),
        ];
        LoadPlan {
            pacing,
            ..LoadPlan::respond_only(Schedule::new(Arrival::Constant { rate }, n, 5), requests, 5)
        }
    }

    /// The coordinated-omission probe: a deterministic 50 ms stall
    /// every 150th respond. Open-loop intended-time p99 must charge the
    /// queue the stall builds (hundreds of affected arrivals); the
    /// closed-loop driver pauses itself during the stall, so only
    /// 1-in-150 of its samples (< 1%) even sees it and its p99 stays
    /// small. This asymmetry *is* the bias the open-loop harness fixes.
    #[test]
    fn coordinated_omission_probe() {
        let stall = Duration::from_millis(50);
        let open = {
            let plan = Arc::new(FaultPlan::new(1).rule_every(
                FaultSite::Respond,
                Fault::Latency(stall),
                150,
            ));
            let service = service_with_tenant(Some(Arc::clone(&plan)));
            let frontend = FrontEnd::builder(service)
                .workers(1)
                .queue_capacity(4096)
                .no_flush_tick()
                .build();
            plan.arm();
            let report = run(&frontend, &respond_plan(600, 1200.0, Pacing::OpenLoop));
            plan.disarm();
            report
        };
        let closed = {
            let plan = Arc::new(FaultPlan::new(1).rule_every(
                FaultSite::Respond,
                Fault::Latency(stall),
                150,
            ));
            let service = service_with_tenant(Some(Arc::clone(&plan)));
            let frontend = FrontEnd::builder(service)
                .workers(1)
                .queue_capacity(4096)
                .no_flush_tick()
                .build();
            plan.arm();
            let report = run(&frontend, &respond_plan(600, 1200.0, Pacing::ClosedLoop));
            plan.disarm();
            report
        };
        assert_eq!(open.responds, 600);
        assert_eq!(closed.responds, 600);
        let open_p99 = open.intended.percentile(99.0);
        let closed_p99 = closed.measured.percentile(99.0);
        // Open loop: each stall queues ~60 arrivals (1200/s × 50 ms),
        // so ≥ 1/3 of samples carry queueing delay and p99 lands well
        // above 20 ms. Closed loop: 4 of 600 samples (0.67%) see the
        // stall — below the 99th percentile, which stays µs-scale.
        assert!(
            open_p99 >= 20_000,
            "open-loop intended-time p99 must reflect the stall: {open_p99}µs"
        );
        assert!(
            closed_p99 < open_p99 / 2,
            "closed-loop p99 {closed_p99}µs should understate open-loop p99 {open_p99}µs"
        );
    }

    #[test]
    fn open_loop_report_accounts_every_event() {
        let service = service_with_tenant(None);
        let frontend = FrontEnd::builder(service).workers(1).build();
        let mut plan = respond_plan(200, 2000.0, Pacing::OpenLoop);
        plan.deadline_budget = Some(Duration::from_secs(5));
        let report = run(&frontend, &plan);
        assert_eq!(report.responds, 200);
        assert_eq!(report.intended.count(), 200);
        assert_eq!(
            report.answered + report.shed + report.expired + report.internal,
            200
        );
        assert_eq!(report.internal, 0);
        assert!(report.in_deadline_rate() > 0.0);
        assert!(report.achieved_rate() > 0.0);
    }
}
