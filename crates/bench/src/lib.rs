//! # vqs-bench — experiment harness for every table and figure
//!
//! The `experiments` binary regenerates each table/figure of the paper's
//! evaluation (§VIII): run `experiments all` or a single id such as
//! `experiments fig3`. Results print as aligned text tables with the
//! paper's reported values alongside, and EXPERIMENTS.md records a
//! captured run. Criterion micro-benchmarks for the performance-critical
//! paths live in `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod loadgen;

use std::time::Duration;

use vqs_core::prelude::*;
use vqs_data::GeneratedDataset;
use vqs_engine::prelude::*;

/// Global knobs shared by all experiments.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Data scale factor applied to every generator (1.0 = the crate's
    /// laptop-scale defaults; the paper's raw data is orders of magnitude
    /// larger — see EXPERIMENTS.md).
    pub scale: f64,
    /// Maximum queries sampled per scenario in the batch experiments
    /// (`usize::MAX` = the full pre-processing workload).
    pub query_limit: usize,
    /// Per-(scenario, algorithm) wall-clock budget, the analogue of the
    /// paper's 48-hour timeout.
    pub timeout: Duration,
    /// Pre-processing worker threads.
    pub workers: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            scale: 0.05,
            query_limit: 60,
            timeout: Duration::from_secs(20),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            seed: vqs_data::DEFAULT_SEED,
        }
    }
}

/// Format a duration compactly for tables.
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 100.0 {
        format!("{secs:.0}s")
    } else if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

/// Print an aligned text table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:w$}"))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

/// The scenario letter → data set mapping of Fig. 3.
pub fn scenario_dataset(letter: char, config: &RunConfig) -> GeneratedDataset {
    vqs_data::by_letter(&letter.to_string(), config.scale).expect("known scenario letter")
}

/// Default engine configuration for a generated data set, restricted to
/// one target column.
pub fn single_target_config(dataset: &GeneratedDataset, target: &str) -> Configuration {
    let dims: Vec<&str> = dataset.dims.iter().map(String::as_str).collect();
    Configuration::new(&dataset.name, &dims, &[target])
}

/// Evenly sample at most `limit` work items (deterministic).
pub fn sample_items(items: Vec<WorkItem>, limit: usize) -> Vec<WorkItem> {
    if items.len() <= limit {
        return items;
    }
    let step = items.len() as f64 / limit as f64;
    (0..limit)
        .map(|i| items[(i as f64 * step) as usize].clone())
        .collect()
}

/// Outcome of solving a batch of work items with one algorithm.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Per-item utility (aligned with the input items); `None` when the
    /// budget expired before the item was solved.
    pub utilities: Vec<Option<f64>>,
    /// Whether the batch hit the timeout.
    pub timed_out: bool,
    /// Summed work counters.
    pub instrumentation: Instrumentation,
}

impl BatchOutcome {
    /// Number of items solved.
    pub fn solved(&self) -> usize {
        self.utilities.iter().flatten().count()
    }
}

/// Solve `items` sequentially with `summarizer` under a wall-clock
/// budget, recording per-item utility (the Fig. 3/4 inner loop).
pub fn run_batch<S: Summarizer + ?Sized>(
    relation: &EncodedRelation,
    config: &Configuration,
    summarizer: &S,
    items: &[WorkItem],
    budget: Duration,
) -> BatchOutcome {
    let template = SpeechTemplate::plain("target");
    let start = std::time::Instant::now();
    let mut utilities = Vec::with_capacity(items.len());
    let mut instrumentation = Instrumentation::default();
    let mut timed_out = false;
    for item in items {
        if start.elapsed() >= budget {
            timed_out = true;
            utilities.push(None);
            continue;
        }
        match solve_item(relation, config, summarizer, &template, item) {
            Ok((speech, counters)) => {
                instrumentation.merge(&counters);
                let scaled = if speech.base_error == 0.0 {
                    1.0
                } else {
                    speech.utility / speech.base_error
                };
                utilities.push(Some(scaled));
            }
            Err(_) => utilities.push(None),
        }
    }
    BatchOutcome {
        elapsed: start.elapsed(),
        utilities,
        timed_out,
        instrumentation,
    }
}

/// Average of the utilities each algorithm achieved, scaled per instance
/// by the best utility any algorithm achieved on that instance (the
/// paper's "utility (scaled) … scale to one for each summarization
/// problem instance").
pub fn scale_per_instance(outcomes: &[&BatchOutcome]) -> Vec<f64> {
    if outcomes.is_empty() {
        return Vec::new();
    }
    let n = outcomes[0].utilities.len();
    let mut scaled_sums = vec![0.0f64; outcomes.len()];
    let mut counts = vec![0usize; outcomes.len()];
    for i in 0..n {
        let best = outcomes
            .iter()
            .filter_map(|o| o.utilities[i])
            .fold(f64::NEG_INFINITY, f64::max);
        if !best.is_finite() || best <= 0.0 {
            continue;
        }
        for (a, outcome) in outcomes.iter().enumerate() {
            if let Some(u) = outcome.utilities[i] {
                scaled_sums[a] += (u / best).min(1.0);
                counts[a] += 1;
            }
        }
    }
    scaled_sums
        .into_iter()
        .zip(counts)
        .map(|(sum, count)| if count == 0 { 0.0 } else { sum / count as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.0us");
        assert_eq!(fmt_duration(Duration::from_millis(25)), "25.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
        assert_eq!(fmt_duration(Duration::from_secs(240)), "240s");
    }

    #[test]
    fn sampling_keeps_order_and_limit() {
        let dataset = scenario_dataset(
            'A',
            &RunConfig {
                scale: 0.02,
                ..Default::default()
            },
        );
        let config = single_target_config(&dataset, "hearing");
        let relation = target_relation(&dataset, &config, "hearing").unwrap();
        let items = enumerate_queries(&relation, &config, "hearing");
        let sampled = sample_items(items.clone(), 10);
        assert_eq!(sampled.len(), 10);
        let all = sample_items(items.clone(), usize::MAX);
        assert_eq!(all.len(), items.len());
    }

    #[test]
    fn batch_and_scaling() {
        let dataset = scenario_dataset(
            'A',
            &RunConfig {
                scale: 0.02,
                ..Default::default()
            },
        );
        let config = single_target_config(&dataset, "hearing");
        let relation = target_relation(&dataset, &config, "hearing").unwrap();
        let items = sample_items(enumerate_queries(&relation, &config, "hearing"), 8);
        let greedy = run_batch(
            &relation,
            &config,
            &GreedySummarizer::base(),
            &items,
            Duration::from_secs(30),
        );
        assert_eq!(greedy.solved(), items.len());
        assert!(!greedy.timed_out);
        let scaled = scale_per_instance(&[&greedy]);
        assert!((scaled[0] - 1.0).abs() < 1e-9); // alone, it is the best
    }

    #[test]
    fn zero_budget_times_out() {
        let dataset = scenario_dataset(
            'A',
            &RunConfig {
                scale: 0.02,
                ..Default::default()
            },
        );
        let config = single_target_config(&dataset, "hearing");
        let relation = target_relation(&dataset, &config, "hearing").unwrap();
        let items = sample_items(enumerate_queries(&relation, &config, "hearing"), 5);
        let outcome = run_batch(
            &relation,
            &config,
            &GreedySummarizer::base(),
            &items,
            Duration::ZERO,
        );
        assert!(outcome.timed_out);
        assert_eq!(outcome.solved(), 0);
    }
}
