//! Table I: overview of the evaluation data sets.

use crate::{print_table, RunConfig};

/// Paper-reported rows: (name, size, #dims, #targets).
const PAPER: [(&str, &str, usize, usize); 4] = [
    ("ACS NY", "2 MB", 3, 6),
    ("Stack Overflow", "197 MB", 7, 6),
    ("Flights", "565 MB", 6, 1),
    ("Primaries", "6 MB", 5, 1),
];

/// Generate every data set at the configured scale and print its shape
/// next to the paper's Table I.
pub fn run(config: &RunConfig) {
    let mut rows = Vec::new();
    for spec in vqs_data::all_specs() {
        let dataset = spec.generate(config.seed, config.scale);
        let paper = PAPER.iter().find(|(name, ..)| *name == dataset.name);
        let facts = vqs_data::nominal_fact_count(&spec, 2);
        rows.push(vec![
            dataset.name.clone(),
            format!(
                "{} rows (~{} KB)",
                dataset.table.len(),
                dataset.approx_bytes() / 1024
            ),
            dataset.dims.len().to_string(),
            dataset.targets.len().to_string(),
            facts.to_string(),
            paper
                .map(|(_, size, d, t)| format!("{size}, {d} dims, {t} targets"))
                .unwrap_or_default(),
        ]);
    }
    print_table(
        "Table I — data sets (ours vs paper)",
        &[
            "Data Set",
            "Size (ours)",
            "#Dims",
            "#Targets",
            "Facts (≤2 dims)",
            "Paper",
        ],
        &rows,
    );
    println!(
        "note: generators are seeded synthetic stand-ins for the public data sets \
         (see DESIGN.md); scale factor {}",
        config.scale
    );
}
