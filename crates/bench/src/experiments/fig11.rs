//! Fig. 11: AMT preferences — our precise pre-generated speeches vs the
//! sampling baseline's range-valued speeches, on three flight queries.
//!
//! Paper shape: ours wins on every adjective, with the largest gaps on
//! "Precise" and "Informative" ("reporting precise values … likely leads
//! to gains for properties like Precise and Informative").

use vqs_baseline::sampling::{vocalize, SamplingConfig, SamplingResult};
use vqs_core::prelude::*;
use vqs_engine::prelude::*;
use vqs_usersim::{compare_profiles, SpeechProfile};

use crate::{print_table, scenario_dataset, single_target_config, RunConfig};

/// Convert a named-scope fact back into a core [`Fact`] over `relation`.
pub fn named_to_fact(relation: &EncodedRelation, named: &NamedFact) -> Option<Fact> {
    let pairs: Vec<(usize, u32)> = named
        .scope
        .iter()
        .map(|(dim, value)| {
            let d = relation.dim_index(dim)?;
            let code = relation.dims()[d].code_of(value)?;
            Some((d, code))
        })
        .collect::<Option<Vec<_>>>()?;
    let scope = Scope::from_pairs(&pairs).ok()?;
    Some(Fact::new(scope, named.value, named.support))
}

fn baseline_profile(relation: &EncodedRelation, result: &SamplingResult) -> SpeechProfile {
    let facts: Vec<Fact> = result
        .facts
        .iter()
        .filter_map(|rf| named_to_fact(relation, &rf.to_named()))
        .collect();
    let base = base_error(relation).max(f64::EPSILON);
    let quality = (utility(relation, &facts) / base).clamp(0.0, 1.0);
    // Perceived imprecision: range width relative to the spoken value
    // ("between 5 and 10" around an estimate of 7 reads as very vague).
    let range_width = if result.facts.is_empty() {
        0.0
    } else {
        result
            .facts
            .iter()
            .map(|f| ((f.hi - f.lo) / f.estimate.abs().max(1.0)).min(1.0))
            .sum::<f64>()
            / result.facts.len() as f64
    };
    SpeechProfile {
        quality,
        range_width: range_width.min(1.0),
        redundancy: 0.0,
        words: result.text.split_whitespace().count(),
    }
}

/// Run the preference comparison.
pub fn run(config: &RunConfig) {
    let dataset = scenario_dataset('F', config);
    let engine_config = single_target_config(&dataset, "cancelled");
    let relation =
        target_relation(&dataset, &engine_config, "cancelled").expect("cancelled target");
    let region =
        relation.dims()[relation.dim_index("origin_region").unwrap()].values[0].to_string();

    // The paper's three queries: flights in general, flights in the
    // Northeast, flights in the Northeast in Winter.
    let queries = [
        Query::of("cancelled", &[]),
        Query::of("cancelled", &[("origin_region", region.as_str())]),
        Query::of(
            "cancelled",
            &[("origin_region", region.as_str()), ("season", "Winter")],
        ),
    ];

    let template = SpeechTemplate::per_mille("cancellation probability", "flights");
    let summarizer = GreedySummarizer::with_optimized_pruning();
    let mut rows = Vec::new();
    let mut rating_sums = vec![(0.0f64, 0.0f64, 0usize, 0usize); 6];
    for (qi, query) in queries.iter().enumerate() {
        // Our speech.
        let rows_of: Vec<usize> = (0..relation.len())
            .filter(|&row| {
                query.predicates().iter().all(|(dim, value)| {
                    let d = relation.dim_index(dim).unwrap();
                    relation.value_str(d, row) == value
                })
            })
            .collect();
        let item = WorkItem {
            query: query.clone(),
            rows: rows_of.clone(),
        };
        let (ours, _) = solve_item(&relation, &engine_config, &summarizer, &template, &item)
            .expect("solve succeeds");
        let ours_profile =
            SpeechProfile::precise(ours.scaled_utility(), ours.text.split_whitespace().count());

        // Baseline speech on the same subset.
        let subset = relation.subset(&rows_of).expect("subset valid");
        let free: Vec<usize> = (0..subset.dim_count())
            .filter(|&d| {
                !query
                    .predicates()
                    .iter()
                    .any(|(n, _)| *n == subset.dims()[d].name)
            })
            .collect();
        let baseline = vocalize(
            &subset,
            &free,
            engine_config.max_fact_dimensions,
            &SamplingConfig {
                seed: config.seed + qi as u64,
                ..Default::default()
            },
        )
        .expect("baseline runs");
        let base_profile = baseline_profile(&subset, &baseline);

        // 150 workers per query × 6 adjectives ≈ the paper's 900 HITs.
        let comparison = compare_profiles(
            &ours_profile,
            &base_profile,
            150,
            config.seed + 40 + qi as u64,
        );
        for (i, row) in comparison.iter().enumerate() {
            rating_sums[i].0 += row.ours_rating;
            rating_sums[i].1 += row.baseline_rating;
            rating_sums[i].2 += row.ours_wins;
            rating_sums[i].3 += row.baseline_wins;
        }
        if qi == 0 {
            for row in &comparison {
                rows.push(vec![row.adjective.to_string()]);
            }
        }
    }
    for (cells, sums) in rows.iter_mut().zip(&rating_sums) {
        cells.push(format!("{:.2}", sums.0 / queries.len() as f64));
        cells.push(format!("{:.2}", sums.1 / queries.len() as f64));
        cells.push(sums.2.to_string());
        cells.push(sums.3.to_string());
    }
    print_table(
        "Fig. 11 — ours vs sampling baseline (3 flight queries, 900 HITs)",
        &[
            "Adjective",
            "Ours rating",
            "Baseline rating",
            "Ours wins",
            "Baseline wins",
        ],
        &rows,
    );
    println!(
        "paper shape: ours ahead on every adjective, biggest gaps on Precise and \
         Informative (ranges vs exact averages)."
    );
}
