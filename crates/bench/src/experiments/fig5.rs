//! Fig. 5 + Table II: AMT preferences correlate with the speech quality
//! model.
//!
//! 100 random speeches are ranked by the quality model; the worst,
//! median and best are rated by 50 workers on four adjectives and
//! compared pairwise. Paper shape: ratings ~6.2–6.8, best > medium >
//! worst on every adjective, and the win counts order the same way.
//! Table II prints the worst/best speech texts for the ACS scenario.

use vqs_engine::prelude::*;
use vqs_usersim as usersim;

use crate::experiments::fig6::{borough_age_relation, ranked_speeches};
use crate::{print_table, scenario_dataset, RunConfig};

/// Run the Fig. 5 study (and print Table II).
pub fn run(config: &RunConfig) {
    // The paper runs the study for the flights and ACS data; the rating
    // pipeline is identical, so we report ACS (whose Table II speeches we
    // also print) and flights.
    for letter in ['A', 'F'] {
        let dataset = scenario_dataset(letter, config);
        let target = if letter == 'A' { "visual" } else { "cancelled" };
        let relation = if letter == 'A' {
            borough_age_relation(&dataset, target)
        } else {
            let engine_config = crate::single_target_config(&dataset, target);
            target_relation(&dataset, &engine_config, target).expect("target exists")
        };
        let (_, ranked) = if letter == 'A' {
            ranked_speeches(&relation, config.seed)
        } else {
            let catalog = vqs_core::prelude::FactCatalog::build(
                &relation,
                &(0..relation.dim_count()).collect::<Vec<_>>(),
                2,
            )
            .expect("catalog");
            (
                catalog.clone(),
                usersim::rank_random_speeches(&relation, &catalog, 3, 100, config.seed),
            )
        };

        let cells = usersim::fig5(&ranked, 50, config.seed + letter as u64);
        let rows: Vec<Vec<String>> = cells
            .iter()
            .map(|c| {
                vec![
                    c.adjective.to_string(),
                    c.speech.to_string(),
                    format!("{:.2}", c.rating),
                    c.wins.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 5 — ratings and pairwise wins ({})", dataset.name),
            &["Adjective", "Speech", "Avg rating", "Wins"],
            &rows,
        );

        if letter == 'A' {
            // Table II: the worst and best ranked speech texts.
            let template = SpeechTemplate::per_mille("visual impairment rate", "persons");
            let query = Query::of(target, &[]);
            let render = |speech: &usersim::RankedSpeech| {
                let facts: Vec<NamedFact> = speech
                    .facts
                    .iter()
                    .map(|f| NamedFact {
                        scope: f
                            .scope
                            .pairs()
                            .into_iter()
                            .map(|(d, code)| {
                                let dim = &relation.dims()[d];
                                (dim.name.clone(), dim.values[code as usize].to_string())
                            })
                            .collect(),
                        value: f.value,
                        support: f.support,
                    })
                    .collect();
                template.render(&query, &facts)
            };
            print_table(
                "Table II — worst vs best speech (ACS visual impairment)",
                &["Speech", "Text"],
                &[
                    vec!["Worst".to_string(), render(&ranked[0])],
                    vec!["Best".to_string(), render(&ranked[2])],
                ],
            );
        }
    }
    println!("paper shape: quality rank orders both ratings and wins on every adjective.");
}
