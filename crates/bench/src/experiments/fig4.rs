//! Fig. 4: scalability of G-O vs G-P in speech length (number of
//! selected facts) and in the maximal dimensions per fact.
//!
//! Paper shape: time grows gracefully with speech length and much more
//! steeply with fact dimensions (the candidate-fact space explodes);
//! G-O stays below G-P throughout.

use std::time::Duration;

use vqs_core::prelude::*;
use vqs_engine::prelude::*;

use crate::{
    fmt_duration, print_table, run_batch, sample_items, scenario_dataset, single_target_config,
    RunConfig,
};

const SCENARIOS: [(&str, &str); 3] = [
    ("A-H", "hearing"),
    ("F-C", "cancelled"),
    ("S-O", "optimism"),
];

/// Run both Fig. 4 sweeps.
pub fn run(config: &RunConfig) {
    length_sweep(config);
    dims_sweep(config);
}

fn length_sweep(config: &RunConfig) {
    let mut rows = Vec::new();
    for (scenario, target) in SCENARIOS {
        let dataset = scenario_dataset(scenario.chars().next().unwrap(), config);
        let mut engine_config = single_target_config(&dataset, target);
        let relation = target_relation(&dataset, &engine_config, target).expect("target exists");
        let items = sample_items(
            enumerate_queries(&relation, &engine_config, target),
            config.query_limit / 2,
        );
        for speech_length in [2usize, 3, 4, 5] {
            engine_config.speech_length = speech_length;
            let mut cells = vec![scenario.to_string(), speech_length.to_string()];
            for algo in [
                GreedySummarizer::with_naive_pruning(),
                GreedySummarizer::with_optimized_pruning(),
            ] {
                let outcome = run_batch(
                    &relation,
                    &engine_config,
                    &algo,
                    &items,
                    Duration::from_secs(120),
                );
                cells.push(fmt_duration(outcome.elapsed));
            }
            rows.push(cells);
        }
    }
    print_table(
        "Fig. 4 (top) — scaling speech length (G-P vs G-O)",
        &["Scenario", "Speech length", "G-P time", "G-O time"],
        &rows,
    );
}

fn dims_sweep(config: &RunConfig) {
    let mut rows = Vec::new();
    for (scenario, target) in SCENARIOS {
        let dataset = scenario_dataset(scenario.chars().next().unwrap(), config);
        let mut engine_config = single_target_config(&dataset, target);
        let relation = target_relation(&dataset, &engine_config, target).expect("target exists");
        let items = sample_items(
            enumerate_queries(&relation, &engine_config, target),
            config.query_limit / 2,
        );
        for fact_dims in [1usize, 2, 3] {
            engine_config.max_fact_dimensions = fact_dims;
            let mut cells = vec![scenario.to_string(), fact_dims.to_string()];
            for algo in [
                GreedySummarizer::with_naive_pruning(),
                GreedySummarizer::with_optimized_pruning(),
            ] {
                let outcome = run_batch(
                    &relation,
                    &engine_config,
                    &algo,
                    &items,
                    Duration::from_secs(240),
                );
                cells.push(fmt_duration(outcome.elapsed));
            }
            rows.push(cells);
        }
    }
    print_table(
        "Fig. 4 (bottom) — scaling dimensions per fact (G-P vs G-O)",
        &["Scenario", "Fact dims", "G-P time", "G-O time"],
        &rows,
    );
    println!(
        "paper shape: graceful growth in speech length, steep growth in fact \
         dimensions; G-O below G-P."
    );
}
