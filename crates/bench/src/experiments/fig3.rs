//! Fig. 3: computation time and scaled utility of the four algorithms
//! (E, G-B, G-P, G-O) across the eight scenario–target pairs.
//!
//! Paper shape to reproduce: exact optimization is orders of magnitude
//! slower than greedy and times out on the Stack Overflow scenario (the
//! red line in the plot); the greedy variants achieve ≥ 98% of the exact
//! utility; optimized pruning (G-O) beats the base greedy (G-B), naive
//! pruning (G-P) roughly ties it.

use vqs_core::prelude::*;
use vqs_engine::prelude::*;

use crate::{
    fmt_duration, print_table, run_batch, sample_items, scale_per_instance, scenario_dataset,
    single_target_config, BatchOutcome, RunConfig,
};

/// Run the Fig. 3 sweep.
pub fn run(config: &RunConfig) {
    let mut rows = Vec::new();
    for (scenario, target) in vqs_data::FIG3_SCENARIOS {
        let letter = scenario.chars().next().unwrap();
        let dataset = scenario_dataset(letter, config);
        let engine_config = single_target_config(&dataset, target);
        let relation =
            target_relation(&dataset, &engine_config, target).expect("scenario targets exist");
        let items = sample_items(
            enumerate_queries(&relation, &engine_config, target),
            config.query_limit,
        );

        // The exact algorithm gets a per-problem slice of the budget so a
        // single huge instance cannot absorb the whole batch.
        let per_problem = config.timeout / (items.len().max(1) as u32);
        let exact = ExactSummarizer {
            time_budget: Some(per_problem.max(std::time::Duration::from_millis(50))),
            ..ExactSummarizer::paper()
        };
        let algorithms: Vec<(&str, Box<dyn Summarizer>)> = vec![
            ("E", Box::new(exact)),
            ("G-B", Box::new(GreedySummarizer::base())),
            ("G-P", Box::new(GreedySummarizer::with_naive_pruning())),
            ("G-O", Box::new(GreedySummarizer::with_optimized_pruning())),
        ];

        let outcomes: Vec<BatchOutcome> = algorithms
            .iter()
            .map(|(_, algo)| {
                run_batch(
                    &relation,
                    &engine_config,
                    algo.as_ref(),
                    &items,
                    config.timeout,
                )
            })
            .collect();
        let refs: Vec<&BatchOutcome> = outcomes.iter().collect();
        let scaled = scale_per_instance(&refs);

        for ((name, _), (outcome, utility)) in algorithms.iter().zip(outcomes.iter().zip(&scaled)) {
            rows.push(vec![
                scenario.to_string(),
                name.to_string(),
                if outcome.timed_out {
                    format!("TIMEOUT (>{})", fmt_duration(config.timeout))
                } else {
                    fmt_duration(outcome.elapsed)
                },
                format!("{utility:.3}"),
                format!("{}/{}", outcome.solved(), items.len()),
                format!("{}", outcome.instrumentation.total_row_touches()),
            ]);
        }
    }
    print_table(
        "Fig. 3 — pre-processing time and scaled utility per algorithm",
        &[
            "Scenario",
            "Algo",
            "Time",
            "Utility (scaled)",
            "Solved",
            "Row touches",
        ],
        &rows,
    );
    println!(
        "paper shape: E orders of magnitude slower (timeout on S-*); greedy ≥ 0.98 of \
         exact utility; G-O < G-B ≈ G-P in total time \
         (paper totals: G-B 3107s, G-P 3088s, G-O 1456s)."
    );
}
