//! Table III + Fig. 9: classification of the last 50 voice requests of
//! each public deployment, and the shape of the data-access queries.
//!
//! The private Google-Assistant logs are replaced by seeded utterance
//! streams with the observed mix (see `vqs_engine::logsim`); the
//! classifier that tabulates them is the production-path code.

use vqs_core::prelude::*;
use vqs_engine::prelude::*;

use crate::{print_table, scenario_dataset, single_target_config, RunConfig};

fn deployment_relation(letter: char, target: &str, config: &RunConfig) -> EncodedRelation {
    let dataset = scenario_dataset(letter, config);
    let engine_config = single_target_config(&dataset, target);
    target_relation(&dataset, &engine_config, target).expect("target exists")
}

/// Run the log classification.
pub fn run(config: &RunConfig) {
    let deployments: [(char, &str, &str, &[&str]); 3] = [
        (
            'P',
            "support",
            "polling support",
            &["support", "polling", "polls"],
        ),
        (
            'F',
            "cancelled",
            "cancellations",
            &["cancellations", "cancellation probability"],
        ),
        (
            'S',
            "job_satisfaction",
            "job satisfaction",
            &["job satisfaction", "satisfaction", "how satisfied"],
        ),
    ];

    let mut table3_rows = Vec::new();
    let mut complexity = [0usize; 3];
    let mut type_counts = [0usize; 3]; // retrieval, comparison, extremum
    for ((letter, target, phrase, synonyms), mix) in deployments.iter().zip(TABLE3.iter()) {
        let relation = deployment_relation(*letter, target, config);
        let extractor = Extractor::from_relation(&relation, 2)
            .with_target_synonyms(target, synonyms)
            .with_unavailable_markers(&["flight"]);
        let log = generate_log(&relation, phrase, mix, config.seed + *letter as u64);
        let counts = tabulate(&extractor, &log);
        table3_rows.push(vec![
            mix.name.to_string(),
            format!("{} (paper {})", counts[0], mix.help),
            format!("{} (paper {})", counts[1], mix.repeat),
            format!("{} (paper {})", counts[2], mix.s_query),
            format!("{} (paper {})", counts[3], mix.u_query),
            format!("{} (paper {})", counts[4], mix.other),
        ]);
        let histogram = complexity_histogram(&extractor, &log);
        for (total, h) in complexity.iter_mut().zip(histogram) {
            *total += h;
        }
        for entry in &log {
            match extractor.classify(&entry.text) {
                Request::Query(_) => type_counts[0] += 1,
                Request::Unsupported(Unsupported::UnavailableData) => type_counts[0] += 1,
                Request::Unsupported(Unsupported::Comparison) => type_counts[1] += 1,
                Request::Unsupported(Unsupported::Extremum) => type_counts[2] += 1,
                _ => {}
            }
        }
    }
    print_table(
        "Table III — request classification per deployment",
        &[
            "Deployment",
            "Help",
            "Repeat",
            "S-Query",
            "U-Query",
            "Other",
        ],
        &table3_rows,
    );

    print_table(
        "Fig. 9(a) — supported-query complexity (predicates)",
        &["Predicates", "Ours", "Paper"],
        &[
            vec![
                "0".into(),
                complexity[0].to_string(),
                FIG9_COMPLEXITY[0].to_string(),
            ],
            vec![
                "1".into(),
                complexity[1].to_string(),
                FIG9_COMPLEXITY[1].to_string(),
            ],
            vec![
                "2".into(),
                complexity[2].to_string(),
                FIG9_COMPLEXITY[2].to_string(),
            ],
        ],
    );
    print_table(
        "Fig. 9(b) — data-access query types",
        &["Type", "Ours", "Paper"],
        &[
            vec![
                "Retrieval".into(),
                type_counts[0].to_string(),
                FIG9_TYPES[0].to_string(),
            ],
            vec![
                "Comparison".into(),
                type_counts[1].to_string(),
                FIG9_TYPES[1].to_string(),
            ],
            vec![
                "Extremum".into(),
                type_counts[2].to_string(),
                FIG9_TYPES[2].to_string(),
            ],
        ],
    );
    println!(
        "note: Fig. 9(a) counts only queries the classifier accepted as supported; \
         the paper's pie also includes unsupported retrievals."
    );
}
