//! §VIII-E ML experiment: can a learned text generator replace the
//! optimizing summarizer given a small seed set of summaries?
//!
//! The paper trains a seq2seq model on 49 (facts, summary) pairs for
//! queries placing one predicate on the flights dimension with the most
//! distinct values (52 airport regions), tests on 3, and finds the
//! generated speeches syntactically plausible but redundant and overly
//! narrow — rated below 5.92 on every adjective vs above 7.28 for ours.

use vqs_baseline::mlgen::{MlGenerator, TrainExample};
use vqs_core::prelude::*;
use vqs_data::{DimSpec, SynthSpec, TargetSpec};
use vqs_engine::prelude::*;
use vqs_usersim::{compare_profiles, SpeechProfile};

use crate::experiments::fig11::named_to_fact;
use crate::{print_table, RunConfig};

/// Flights variant with a 52-value region dimension, matching the
/// paper's "start airport region with 52 values".
fn ml_flights_spec() -> SynthSpec {
    SynthSpec {
        name: "Flights-ML".to_string(),
        dims: vec![
            DimSpec::synthetic("start_region", "region", 52, 0.5),
            DimSpec::named("season", &["Spring", "Summer", "Fall", "Winter"]),
            DimSpec::synthetic("airline", "airline", 10, 0.6),
        ],
        targets: vec![TargetSpec::new("cancelled", 25.0, 12.0, 6.0, (0.0, 1000.0))],
        rows: 20_000,
    }
}

/// Run the ML comparison.
pub fn run(config: &RunConfig) {
    let dataset = ml_flights_spec().generate(config.seed, config.scale.max(0.2));
    let dims: Vec<&str> = dataset.dims.iter().map(String::as_str).collect();
    let engine_config = Configuration::new(&dataset.name, &dims, &["cancelled"]);
    let relation =
        target_relation(&dataset, &engine_config, "cancelled").expect("cancelled target");
    let template = SpeechTemplate::per_mille("cancellation probability", "flights");
    let summarizer = GreedySummarizer::with_optimized_pruning();

    // All queries with one predicate on the 52-value dimension.
    let items: Vec<WorkItem> = enumerate_queries(&relation, &engine_config, "cancelled")
        .into_iter()
        .filter(|item| item.query.len() == 1 && item.query.predicates()[0].0 == "start_region")
        .collect();
    let (train_items, test_items) = items.split_at(items.len().saturating_sub(3));

    // Training pairs from the optimizing approach's own summaries.
    let train_start = std::time::Instant::now();
    let examples: Vec<TrainExample> = train_items
        .iter()
        .map(|item| {
            let (speech, _) = solve_item(&relation, &engine_config, &summarizer, &template, item)
                .expect("solve succeeds");
            TrainExample {
                facts: speech.facts,
                summary: speech.text,
            }
        })
        .collect();
    let model = MlGenerator::train(&examples);
    let train_time = train_start.elapsed();

    // Generate for the test queries and compare against ours.
    let mut rows = Vec::new();
    let mut rating_sums = vec![(0.0f64, 0.0f64); 6];
    let mut generation_time = std::time::Duration::ZERO;
    for (ti, item) in test_items.iter().enumerate() {
        let (ours, _) = solve_item(&relation, &engine_config, &summarizer, &template, item)
            .expect("solve succeeds");
        let subset = relation.subset(&item.rows).expect("subset valid");

        // The ML model selects from the same candidate pool.
        let free: Vec<usize> = (0..subset.dim_count())
            .filter(|&d| subset.dims()[d].name != "start_region")
            .collect();
        let catalog =
            FactCatalog::build(&subset, &free, engine_config.max_fact_dimensions).expect("catalog");
        let candidates: Vec<NamedFact> = catalog
            .facts()
            .iter()
            .map(|f| NamedFact {
                scope: f
                    .scope
                    .pairs()
                    .into_iter()
                    .map(|(d, code)| {
                        let dim = &subset.dims()[d];
                        (dim.name.clone(), dim.values[code as usize].to_string())
                    })
                    .collect(),
                value: f.value,
                support: f.support,
            })
            .collect();
        let gen_start = std::time::Instant::now();
        let ml_text = model.generate(&candidates);
        generation_time += gen_start.elapsed();

        // Profile the ML selection: quality of its chosen facts under the
        // utility model, plus its redundancy.
        let mut ranked = candidates.clone();
        ranked.sort_by(|a, b| {
            b.scope
                .len()
                .cmp(&a.scope.len())
                .then(b.value.abs().total_cmp(&a.value.abs()))
        });
        let ml_facts: Vec<NamedFact> = ranked.into_iter().take(3).collect();
        let core_facts: Vec<Fact> = ml_facts
            .iter()
            .filter_map(|f| named_to_fact(&subset, f))
            .collect();
        let base = base_error(&subset).max(f64::EPSILON);
        let ml_profile = SpeechProfile {
            quality: (utility(&subset, &core_facts) / base).clamp(0.0, 1.0),
            range_width: 0.0,
            redundancy: MlGenerator::redundancy(&ml_facts),
            words: ml_text.split_whitespace().count().max(10),
        };
        let ours_profile =
            SpeechProfile::precise(ours.scaled_utility(), ours.text.split_whitespace().count());
        let comparison = compare_profiles(
            &ours_profile,
            &ml_profile,
            150,
            config.seed + 60 + ti as u64,
        );
        for (i, row) in comparison.iter().enumerate() {
            rating_sums[i].0 += row.ours_rating;
            rating_sums[i].1 += row.baseline_rating;
            if ti == 0 {
                rows.push(vec![row.adjective.to_string()]);
            }
        }
    }
    let tests = test_items.len().max(1) as f64;
    for (cells, sums) in rows.iter_mut().zip(&rating_sums) {
        cells.push(format!("{:.2}", sums.0 / tests));
        cells.push(format!("{:.2}", sums.1 / tests));
    }
    print_table(
        "§VIII-E ML comparison — ratings (ours vs ML-generated)",
        &["Adjective", "Ours", "ML"],
        &rows,
    );
    println!(
        "{} training pairs in {:?}; generation {:?} per sample \
         (paper: 49 pairs, 30 s training, 24 ms/sample; ratings ours > 7.28, ML < 5.92).",
        train_items.len(),
        train_time,
        generation_time / test_items.len().max(1) as u32,
    );
}
