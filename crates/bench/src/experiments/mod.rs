//! One module per table/figure of the paper's evaluation (§VIII).

pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod ml;
pub mod table1;

use crate::RunConfig;

/// Experiment ids in paper order.
pub const ALL: [&str; 11] = [
    "table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "ml",
];

/// Run one experiment by id. Returns false for unknown ids.
pub fn run(id: &str, config: &RunConfig) -> bool {
    match id {
        "table1" => table1::run(config),
        "fig3" => fig3::run(config),
        "fig4" => fig4::run(config),
        "fig5" | "table2" => fig5::run(config),
        "fig6" => fig6::run(config),
        "fig7" => fig7::run(config),
        "fig8" => fig8::run(config),
        "fig9" | "table3" => fig9::run(config),
        "fig10" => fig10::run(config),
        "fig11" => fig11::run(config),
        "ml" => ml::run(config),
        _ => return false,
    }
    true
}
