//! Fig. 7: which expectation model predicts how workers resolve
//! conflicting facts?
//!
//! Workers hear four facts over two dimensions (borough and age group for
//! ACS; season and daypart for flights) and estimate the four value
//! combinations. Paper shape: "using the closest value that appears in
//! relevant facts yields the best approximation".

use vqs_core::prelude::*;
use vqs_usersim as usersim;

use crate::experiments::fig6::borough_age_relation;
use crate::{print_table, scenario_dataset, single_target_config, RunConfig};

/// Aggregate a data set to the four combinations of two dimension values
/// (dim names with two chosen values each).
fn four_combo_relation(
    relation: &EncodedRelation,
    dim_a: (&str, [&str; 2]),
    dim_b: (&str, [&str; 2]),
) -> EncodedRelation {
    let a = relation.dim_index(dim_a.0).expect("dimension exists");
    let b = relation.dim_index(dim_b.0).expect("dimension exists");
    let mut rows = Vec::new();
    for &va in &dim_a.1 {
        for &vb in &dim_b.1 {
            let code_a = relation.dims()[a].code_of(va).expect("value exists");
            let code_b = relation.dims()[b].code_of(vb).expect("value exists");
            let mut sum = 0.0;
            let mut count = 0usize;
            for row in 0..relation.len() {
                if relation.code(a, row) == code_a && relation.code(b, row) == code_b {
                    sum += relation.target(row);
                    count += 1;
                }
            }
            rows.push((vec![va, vb], sum / count.max(1) as f64));
        }
    }
    let result = EncodedRelation::from_rows(
        &[dim_a.0, dim_b.0],
        relation.target_name(),
        rows,
        Prior::Constant(0.0),
    )
    .expect("combos are well-formed");
    let mean = result.target_mean();
    result
        .with_prior(Prior::Constant(mean))
        .expect("constant prior")
}

/// The study's fact set: one fact per mentioned dimension value.
fn marginal_facts(relation: &EncodedRelation) -> Vec<Fact> {
    let mut facts = Vec::new();
    for d in 0..relation.dim_count() {
        for code in 0..relation.dims()[d].cardinality() as u32 {
            let scope = Scope::from_pairs(&[(d, code)]).expect("valid scope");
            if let Some(fact) = Fact::for_scope(relation, scope) {
                facts.push(fact);
            }
        }
    }
    facts
}

/// Run the Fig. 7 model comparison for both scenarios.
pub fn run(config: &RunConfig) {
    let mut rows = Vec::new();

    // ACS: borough × age group (the paper used Staten Island/Bronx and
    // children/elders).
    let acs = scenario_dataset('A', config);
    let acs_relation = borough_age_relation(&acs, "visual");
    let acs_combos = four_combo_relation(
        &acs_relation,
        ("borough", ["St. Island", "Bronx"]),
        ("age_group", ["Teenagers", "Elders"]),
    );
    for row in usersim::fig7(&acs_combos, &marginal_facts(&acs_combos), 20, config.seed) {
        rows.push(vec![
            "ACS".to_string(),
            row.model.to_string(),
            format!("{:.2}", row.error),
        ]);
    }

    // Flights: season × airline (the two strongest flight dimensions),
    // picking the airlines with the most contrasting average delays so the
    // four facts genuinely conflict — the premise of the study.
    let flights = scenario_dataset('F', config);
    let engine_config = single_target_config(&flights, "delay");
    let flights_relation = vqs_engine::prelude::target_relation(&flights, &engine_config, "delay")
        .expect("delay target");
    let airline_dim = flights_relation.dim_index("airline").unwrap();
    let mut airline_means: Vec<(String, f64)> = flights_relation.dims()[airline_dim]
        .values
        .iter()
        .filter_map(|value| {
            let code = flights_relation.dims()[airline_dim].code_of(value)?;
            let scope = Scope::from_pairs(&[(airline_dim, code)]).ok()?;
            Fact::for_scope(&flights_relation, scope).map(|f| (value.to_string(), f.value))
        })
        .collect();
    airline_means.sort_by(|a, b| a.1.total_cmp(&b.1));
    let lowest = airline_means.first().unwrap().0.clone();
    let highest = airline_means.last().unwrap().0.clone();
    let flight_combos = four_combo_relation(
        &flights_relation,
        ("season", ["Winter", "Summer"]),
        ("airline", [lowest.as_str(), highest.as_str()]),
    );
    for row in usersim::fig7(
        &flight_combos,
        &marginal_facts(&flight_combos),
        20,
        config.seed + 1,
    ) {
        rows.push(vec![
            "Flights".to_string(),
            row.model.to_string(),
            format!("{:.2}", row.error),
        ]);
    }

    print_table(
        "Fig. 7 — median error of conflict-resolution models vs workers",
        &["Scenario", "Model", "Median error"],
        &rows,
    );
    println!("paper shape: 'Closest' has the lowest error in both scenarios.");
}
