//! Fig. 8: voice vs visual interface user study (10 participants,
//! timed questions plus usability ratings).
//!
//! Paper shape: "the majority of users were slightly faster using the
//! voice interface"; usability evaluations scatter without a clear
//! winner.

use vqs_usersim as usersim;

use crate::{print_table, RunConfig};

/// Run the interface study.
pub fn run(config: &RunConfig) {
    // A typical pre-generated answer is ~30 words ≈ 11 s of speech.
    let points = usersim::fig8(10, 11.0, config.seed);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("P{}", p.participant + 1),
                format!("{:.1}s", p.vocal_time),
                format!("{:.1}s", p.visual_time),
                format!("{:.1}", p.vocal_eval),
                format!("{:.1}", p.visual_eval),
            ]
        })
        .collect();
    print_table(
        "Fig. 8 — per-participant median answer times and usability ratings",
        &[
            "Participant",
            "Vocal time",
            "Visual time",
            "Vocal eval",
            "Visual eval",
        ],
        &rows,
    );
    let faster = points
        .iter()
        .filter(|p| p.vocal_time < p.visual_time)
        .count();
    println!("{faster}/10 participants faster with voice (paper shape: a majority, not all).");
}
