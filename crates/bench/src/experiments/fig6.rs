//! Fig. 6: worker estimates of visual-impairment prevalence per New York
//! borough and age group, after hearing the worst vs best ranked speech.
//!
//! Paper shape: estimates under the best speech track the correct values
//! closely; under the worst speech they are far off — "deviation between
//! estimates and accurate values correlates with speech quality".

use vqs_core::prelude::*;
use vqs_data::GeneratedDataset;
use vqs_usersim as usersim;

use crate::{print_table, scenario_dataset, RunConfig};

/// The three age groups of the study.
pub const AGE_GROUPS: [(&str, &[&str]); 3] = [
    ("Teenagers", &["0-9", "10-19"]),
    ("Adults", &["20-29", "30-39", "40-49", "50-59", "60-69"]),
    ("Elders", &["70-79", "80+"]),
];

/// Aggregate the ACS data set into the study's 15 data points: average
/// `target` per (borough, coarse age group).
pub fn borough_age_relation(dataset: &GeneratedDataset, target: &str) -> EncodedRelation {
    let schema = dataset.table.schema();
    let borough_col = schema.index_of("borough").expect("ACS has boroughs");
    let age_col = schema.index_of("age_group").expect("ACS has age groups");
    let target_col = schema.index_of(target).expect("target exists");

    let mut sums: std::collections::BTreeMap<(String, &str), (f64, usize)> = Default::default();
    for row in 0..dataset.table.len() {
        let borough = dataset.table.value(row, borough_col).to_string();
        let age = dataset.table.value(row, age_col).to_string();
        let Some((group, _)) = AGE_GROUPS
            .iter()
            .find(|(_, fine)| fine.contains(&age.as_str()))
        else {
            continue;
        };
        let value = dataset.table.value(row, target_col).as_f64().unwrap_or(0.0);
        let entry = sums.entry((borough, group)).or_insert((0.0, 0));
        entry.0 += value;
        entry.1 += 1;
    }
    let rows: Vec<(Vec<&str>, f64)> = sums
        .iter()
        .map(|((borough, group), (sum, count))| {
            (vec![borough.as_str(), *group], sum / (*count).max(1) as f64)
        })
        .collect();
    let relation = EncodedRelation::from_rows(
        &["borough", "age_group"],
        target,
        rows,
        Prior::Constant(0.0),
    )
    .expect("aggregation is well-formed");
    let mean = relation.target_mean();
    relation
        .with_prior(Prior::Constant(mean))
        .expect("constant prior")
}

/// Pick the worst/median/best of 100 random 3-fact speeches on the
/// borough×age relation (the §VIII-C procedure shared by Figs. 5/6 and
/// Table II).
pub fn ranked_speeches(
    relation: &EncodedRelation,
    seed: u64,
) -> (FactCatalog, [usersim::RankedSpeech; 3]) {
    let catalog = FactCatalog::build(relation, &[0, 1], 2).expect("borough/age catalog");
    let ranked = usersim::rank_random_speeches(relation, &catalog, 3, 100, seed);
    (catalog, ranked)
}

/// Run the Fig. 6 study.
pub fn run(config: &RunConfig) {
    let dataset = scenario_dataset('A', config);
    let relation = borough_age_relation(&dataset, "visual");
    let (_, ranked) = ranked_speeches(&relation, config.seed);
    let rows = usersim::fig6(
        &relation,
        &ranked[0].facts,
        &ranked[2].facts,
        20,
        config.seed,
    );

    let mut cells = Vec::new();
    for (group, _) in AGE_GROUPS {
        for row in rows.iter().filter(|r| r.point[1] == group) {
            cells.push(vec![
                group.to_string(),
                row.point[0].clone(),
                format!("{:.1}", row.worst_estimate),
                format!("{:.1}", row.best_estimate),
                format!("{:.1}", row.correct),
            ]);
        }
    }
    print_table(
        "Fig. 6 — median worker estimates vs correct values (visual impairment)",
        &[
            "Age group",
            "Borough",
            "Worst speech",
            "Best speech",
            "Correct",
        ],
        &cells,
    );
    println!(
        "mean abs. deviation from truth: worst speech {:.1}, best speech {:.1} \
         (paper shape: best ≪ worst)",
        usersim::estimate_error(&rows, false),
        usersim::estimate_error(&rows, true),
    );
}
