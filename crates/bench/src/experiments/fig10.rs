//! Fig. 10: average latency and per-query processing time — our
//! pre-processing approach vs the sampling baseline.
//!
//! Paper shape: our run-time cost is a hash lookup (microseconds to
//! ~1 ms), orders of magnitude below the baseline's sampling latency;
//! pre-processing cost per query is paid once offline (the paper spends
//! 25 minutes for 28,720 queries ≈ 52 ms/query).

use std::time::{Duration, Instant};

use vqs_baseline::sampling::{vocalize, SamplingConfig};
use vqs_engine::prelude::*;

use crate::{fmt_duration, print_table, scenario_dataset, single_target_config, RunConfig};

/// Run the latency/processing-time comparison for the three deployments
/// (Stack Overflow, Flights, Primaries).
pub fn run(config: &RunConfig) {
    let deployments: [(char, &str); 3] = [
        ('S', "job_satisfaction"),
        ('F', "cancelled"),
        ('P', "support"),
    ];
    let mut rows = Vec::new();
    for (letter, target) in deployments {
        let dataset = scenario_dataset(letter, config);
        let engine_config = single_target_config(&dataset, target);
        let service = ServiceBuilder::new().workers(config.workers).build();
        let report = service
            .register_dataset(TenantSpec::new(
                "fig10",
                dataset.clone(),
                engine_config.clone(),
            ))
            .expect("pre-processing succeeds");
        let store = service.tenant_store("fig10").expect("tenant registered");

        // Run-time latency: look up a sample of supported queries.
        let relation = target_relation(&dataset, &engine_config, target).expect("target exists");
        let mut queries = store.queries();
        queries.sort_by_key(|q| q.to_string());
        let probe: Vec<Query> = queries
            .iter()
            .filter(|q| q.len() <= 2)
            .step_by((queries.len() / 20).max(1))
            .cloned()
            .collect();
        let start = Instant::now();
        let mut hits = 0usize;
        for query in &probe {
            if store.lookup(query).speech().is_some() {
                hits += 1;
            }
        }
        let lookup_avg = start.elapsed() / probe.len().max(1) as u32;
        assert_eq!(hits, probe.len(), "all probes are stored");

        // Baseline: sampling-based vocalization on the same subsets.
        let items = enumerate_queries(&relation, &engine_config, target);
        let mut baseline_latency = Duration::ZERO;
        let mut baseline_total = Duration::ZERO;
        let sample_queries: Vec<&WorkItem> = items
            .iter()
            .step_by((items.len() / 10).max(1))
            .take(10)
            .collect();
        for item in &sample_queries {
            let subset = relation.subset(&item.rows).expect("subset rows valid");
            let free: Vec<usize> = (0..subset.dim_count())
                .filter(|&d| {
                    !item
                        .query
                        .predicates()
                        .iter()
                        .any(|(n, _)| *n == subset.dims()[d].name)
                })
                .collect();
            let result = vocalize(
                &subset,
                &free,
                engine_config.max_fact_dimensions,
                &SamplingConfig {
                    seed: config.seed,
                    ..Default::default()
                },
            )
            .expect("baseline runs");
            baseline_latency += result.latency;
            baseline_total += result.total;
        }
        let n = sample_queries.len().max(1) as u32;

        rows.push(vec![
            dataset.name.clone(),
            format!("{} speeches", report.speeches),
            fmt_duration(lookup_avg),
            fmt_duration(baseline_latency / n),
            fmt_duration(report.per_query()),
            fmt_duration(baseline_total / n),
        ]);
    }
    print_table(
        "Fig. 10 — latency and per-query processing time",
        &[
            "Data set",
            "Pre-generated",
            "Ours: run-time lookup",
            "Baseline: latency",
            "Ours: pre-proc / query",
            "Baseline: total / query",
        ],
        &rows,
    );
    println!(
        "paper shape: run-time lookup ≪ baseline latency ≪ baseline total; \
         pre-processing amortizes offline (paper: 25 min for 28,720 queries)."
    );
}
