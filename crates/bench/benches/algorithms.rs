//! Micro-benchmarks of the summarization algorithms, including the
//! ablations DESIGN.md calls out: exact-search bound pruning on/off/tight
//! and incremental residual maintenance vs recomputation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use vqs_core::prelude::*;
use vqs_data::{scenarios, DEFAULT_SEED};
use vqs_engine::prelude::*;

fn flights_problem() -> (EncodedRelation, FactCatalog) {
    let dataset = scenarios::flights_spec().generate(DEFAULT_SEED, 0.02);
    let dims: Vec<&str> = dataset.dims.iter().map(String::as_str).collect();
    let config = Configuration::new("flights", &dims, &["cancelled"]);
    let relation = target_relation(&dataset, &config, "cancelled").unwrap();
    let catalog =
        FactCatalog::build(&relation, &(0..relation.dim_count()).collect::<Vec<_>>(), 2).unwrap();
    (relation, catalog)
}

fn bench_greedy(c: &mut Criterion) {
    let (relation, catalog) = flights_problem();
    let problem = Problem::new(&relation, &catalog, 3).unwrap();
    let mut group = c.benchmark_group("greedy");
    group.bench_function("g_b", |b| {
        b.iter(|| {
            GreedySummarizer::base()
                .summarize(&problem)
                .unwrap()
                .utility
        })
    });
    group.bench_function("g_p", |b| {
        b.iter(|| {
            GreedySummarizer::with_naive_pruning()
                .summarize(&problem)
                .unwrap()
                .utility
        })
    });
    group.bench_function("g_o", |b| {
        b.iter(|| {
            GreedySummarizer::with_optimized_pruning()
                .summarize(&problem)
                .unwrap()
                .utility
        })
    });
    group.finish();
}

fn bench_exact_ablation(c: &mut Criterion) {
    // Smaller instance so the unpruned search stays tractable.
    let dataset = scenarios::acs_spec().generate(DEFAULT_SEED, 0.02);
    let dims: Vec<&str> = dataset.dims.iter().map(String::as_str).collect();
    let config = Configuration::new("acs", &dims, &["hearing"]);
    let relation = target_relation(&dataset, &config, "hearing").unwrap();
    let catalog = FactCatalog::build(&relation, &[0, 1], 2).unwrap();
    let problem = Problem::new(&relation, &catalog, 3).unwrap();
    let mut group = c.benchmark_group("exact");
    group.sample_size(10);
    group.bench_function("paper_bounds", |b| {
        b.iter(|| {
            ExactSummarizer::paper()
                .summarize(&problem)
                .unwrap()
                .utility
        })
    });
    group.bench_function("tight_bounds", |b| {
        b.iter(|| {
            ExactSummarizer::with_tight_bounds()
                .summarize(&problem)
                .unwrap()
                .utility
        })
    });
    group.bench_function("no_bound_pruning", |b| {
        b.iter(|| {
            ExactSummarizer::without_bound_pruning()
                .summarize(&problem)
                .unwrap()
                .utility
        })
    });
    group.finish();
}

fn bench_residual_maintenance(c: &mut Criterion) {
    // Ablation: incremental residual updates vs full recomputation after
    // each fact — the reason Algorithm 2 carries expectations in a column.
    let (relation, catalog) = flights_problem();
    let facts: Vec<Fact> = catalog.facts().iter().take(16).cloned().collect();
    let mut group = c.benchmark_group("residuals");
    group.bench_function("incremental", |b| {
        b.iter_batched(
            || ResidualState::new(&relation),
            |mut state| {
                for fact in &facts {
                    state.apply_fact(&relation, fact);
                }
                state.total()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("recompute", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for i in 1..=facts.len() {
                total = speech_error(&relation, &facts[..i]);
            }
            total
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy,
    bench_exact_ablation,
    bench_residual_maintenance
);
criterion_main!(benches);
