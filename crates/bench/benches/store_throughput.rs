//! Mixed read/write throughput of the sharded speech store versus a
//! single-`RwLock` baseline (the pre-ISSUE-2 design), at 1, 8 and 16
//! threads. The sharded store must win on the ≥ 8-thread mixed workloads:
//! readers only contend with writers that hash to the same shard, while
//! the single lock serializes every write against all readers.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vqs_engine::prelude::*;
use vqs_relalg::hash::FxHashMap;

const TARGETS: [&str; 2] = ["delay", "cancelled"];
const DIMS: [&str; 3] = ["season", "region", "airline"];
const VALUES_PER_DIM: usize = 8;
/// Operations per thread per measured iteration; large enough that the
/// scoped-thread spawn cost is noise.
const OPS_PER_THREAD: usize = 2_000;

/// The store interface the workload drives, so the sharded store and the
/// single-lock baseline run byte-for-byte the same benchmark loop.
trait Store: Sync {
    fn insert(&self, speech: StoredSpeech);
    /// Returns true when the lookup produced a speech.
    fn lookup_hit(&self, query: &Query) -> bool;
}

impl Store for SpeechStore {
    fn insert(&self, speech: StoredSpeech) {
        SpeechStore::insert(self, speech);
    }

    fn lookup_hit(&self, query: &Query) -> bool {
        self.lookup(query).speech().is_some()
    }
}

/// The old design: one global reader-writer lock around one hash map,
/// with the unindexed subset-walk fallback.
#[derive(Default)]
struct SingleLockStore {
    speeches: std::sync::RwLock<FxHashMap<Query, Arc<StoredSpeech>>>,
}

impl Store for SingleLockStore {
    fn insert(&self, speech: StoredSpeech) {
        self.speeches
            .write()
            .unwrap()
            .insert(speech.query.clone(), Arc::new(speech));
    }

    fn lookup_hit(&self, query: &Query) -> bool {
        let map = self.speeches.read().unwrap();
        if map.contains_key(query) {
            return true;
        }
        query
            .generalizations()
            .into_iter()
            .skip(1)
            .any(|candidate| map.contains_key(&candidate))
    }
}

fn value(v: usize) -> String {
    format!("v{v}")
}

fn speech_for(query: Query) -> StoredSpeech {
    StoredSpeech {
        text: format!("speech::{query}"),
        facts: vec![],
        utility: 1.0,
        base_error: 2.0,
        rows: 1 + query.len(),
        query,
    }
}

/// Every 0-, 1- and 2-predicate query over the grid (the stored set).
fn query_universe() -> Vec<Query> {
    let mut queries = Vec::new();
    for target in TARGETS {
        queries.push(Query::of(target, &[]));
        for (d, dim) in DIMS.iter().enumerate() {
            for v in 0..VALUES_PER_DIM {
                queries.push(Query::new(target, [(dim.to_string(), value(v))]));
                for dim2 in &DIMS[d + 1..] {
                    for v2 in 0..VALUES_PER_DIM {
                        queries.push(Query::new(
                            target,
                            [(dim.to_string(), value(v)), (dim2.to_string(), value(v2))],
                        ));
                    }
                }
            }
        }
    }
    queries
}

/// 3-predicate probes that always exercise the generalization fallback.
fn fallback_probes() -> Vec<Query> {
    (0..64)
        .map(|i| {
            Query::new(
                TARGETS[i % 2],
                DIMS.iter()
                    .enumerate()
                    .map(|(d, dim)| (dim.to_string(), value((i + d) % VALUES_PER_DIM))),
            )
        })
        .collect()
}

/// Mixed workload: per thread, 60% exact lookups, 30% fallback lookups
/// (the §VIII-D deployment log is dominated by user queries longer than
/// the pre-processed length), 10% (re-)inserts, over disjoint per-thread
/// traversal orders.
fn run_mixed<S: Store>(store: &S, universe: &[Query], fallbacks: &[Query], threads: usize) -> u64 {
    let hits = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let hits = &hits;
            scope.spawn(move || {
                let mut local = 0u64;
                // Deterministic per-thread stride so threads spread over
                // the key space instead of marching in lockstep.
                let stride = 2 * t + 1;
                for i in 0..OPS_PER_THREAD {
                    let k = (i * stride + t) % universe.len();
                    match i % 10 {
                        0 => store.insert(speech_for(universe[k].clone())),
                        1..=3 => {
                            if store.lookup_hit(&fallbacks[k % fallbacks.len()]) {
                                local += 1;
                            }
                        }
                        _ => {
                            if store.lookup_hit(&universe[k]) {
                                local += 1;
                            }
                        }
                    }
                }
                hits.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    hits.load(std::sync::atomic::Ordering::Relaxed)
}

fn bench_throughput(c: &mut Criterion) {
    let universe = query_universe();
    let fallbacks = fallback_probes();

    let mut group = c.benchmark_group("store_throughput");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(150));
    for threads in [1usize, 8, 16] {
        let sharded = SpeechStore::new();
        let single = SingleLockStore::default();
        for query in &universe {
            sharded.insert(speech_for(query.clone()));
            Store::insert(&single, speech_for(query.clone()));
        }
        group.bench_function(&format!("sharded/{threads}t"), |b| {
            b.iter(|| black_box(run_mixed(&sharded, &universe, &fallbacks, threads)))
        });
        group.bench_function(&format!("single_lock/{threads}t"), |b| {
            b.iter(|| black_box(run_mixed(&single, &universe, &fallbacks, threads)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
