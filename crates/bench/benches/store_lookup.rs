//! Run-time speech-store lookups (the Fig. 10 "our latency" path).

use criterion::{criterion_group, criterion_main, Criterion};
use vqs_data::{scenarios, DEFAULT_SEED};
use vqs_engine::prelude::*;

fn bench_lookup(c: &mut Criterion) {
    let dataset = scenarios::flights_spec().generate(DEFAULT_SEED, 0.02);
    let dims: Vec<&str> = dataset.dims.iter().map(String::as_str).collect();
    let config = Configuration::new("flights", &dims, &["cancelled"]);
    let service = ServiceBuilder::new().build();
    service
        .register_dataset(TenantSpec::new("flights", dataset, config))
        .unwrap();
    let store = service.tenant_store("flights").unwrap();
    let queries = store.queries();
    let exact = queries.iter().find(|q| q.len() == 1).unwrap().clone();
    // A query whose exact combination is absent: exercises the fallback.
    let fallback = Query::of(
        "cancelled",
        &[
            ("season", "Winter"),
            ("weekday", "Mon"),
            ("daypart", "night"),
        ],
    );

    // A query on a target that was never pre-processed: the secondary
    // index rejects it after a single probe.
    let miss = Query::of("satisfaction", &[("season", "Winter")]);

    let mut group = c.benchmark_group("store_lookup");
    group.bench_function("exact_hit", |b| b.iter(|| store.lookup(&exact)));
    group.bench_function("generalization_fallback", |b| {
        b.iter(|| store.lookup(&fallback))
    });
    group.bench_function("miss_unknown_target", |b| b.iter(|| store.lookup(&miss)));
    group.finish();

    // Directional evidence that the fallback is index-driven, not a
    // subset walk: report probes-per-lookup for the fallback query.
    store.reset_stats();
    let _ = store.lookup(&fallback);
    let stats = store.stats();
    println!(
        "store_lookup/fallback_probes            {} probes over {} stored speeches \
         ({} subsets would be walked unindexed)",
        stats.probes,
        store.len(),
        1u64 << fallback.len()
    );
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
