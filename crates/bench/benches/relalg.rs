//! Relational-engine micro-benchmarks, including the scope-join strategy
//! ablation (partitioned hash buckets vs nested loop).

use criterion::{criterion_group, criterion_main, Criterion};
use vqs_core::prelude::*;
use vqs_core::relational::{data_table, fact_table};
use vqs_data::{scenarios, DEFAULT_SEED};
use vqs_engine::prelude::*;
use vqs_relalg::ops::aggregate::{aggregate, AggFunc, AggItem};
use vqs_relalg::ops::join::{scope_join, scope_join_nested_loop};
use vqs_relalg::prelude::*;

fn tables() -> (Table, Table, usize) {
    let dataset = scenarios::acs_spec().generate(DEFAULT_SEED, 0.05);
    let dims: Vec<&str> = dataset.dims.iter().map(String::as_str).collect();
    let config = Configuration::new("acs", &dims, &["visual"]);
    let relation = target_relation(&dataset, &config, "visual").unwrap();
    let catalog = FactCatalog::build(&relation, &[0, 1], 2).unwrap();
    let facts = fact_table(&relation, &catalog).unwrap();
    let data = data_table(&relation).unwrap();
    (facts, data, relation.dim_count())
}

fn bench_scope_join(c: &mut Criterion) {
    let (facts, data, dim_count) = tables();
    let dims: Vec<(usize, usize)> = (0..dim_count).map(|d| (1 + d, 1 + d)).collect();
    let mut group = c.benchmark_group("scope_join");
    group.sample_size(20);
    group.bench_function("partitioned", |b| {
        b.iter(|| scope_join(&facts, &data, &dims).unwrap().len())
    });
    group.bench_function("nested_loop", |b| {
        b.iter(|| scope_join_nested_loop(&facts, &data, &dims).unwrap().len())
    });
    group.finish();
}

fn bench_aggregate(c: &mut Criterion) {
    let (_, data, _) = tables();
    c.bench_function("aggregate_group_by", |b| {
        b.iter(|| {
            aggregate(
                &data,
                &[Expr::col(1)],
                &["k"],
                &[AggItem::new(AggFunc::Avg, Expr::col(4), "avg")],
            )
            .unwrap()
            .len()
        })
    });
}

criterion_group!(benches, bench_scope_join, bench_aggregate);
criterion_main!(benches);
