//! Fact-group pruning ablation: per-iteration fact selection under the
//! three strategies, plus the plan optimizer itself.

use criterion::{criterion_group, criterion_main, Criterion};
use vqs_core::algorithms::optimizer::{enumerate_plans, optimal_plan, PruneOptimizerConfig};
use vqs_core::algorithms::pruning::{plan_for, select_best_fact_with_plan};
use vqs_core::prelude::*;
use vqs_data::{scenarios, DEFAULT_SEED};
use vqs_engine::prelude::*;

fn setup() -> (EncodedRelation, FactCatalog) {
    let dataset = scenarios::stackoverflow_spec().generate(DEFAULT_SEED, 0.04);
    let dims: Vec<&str> = dataset.dims.iter().map(String::as_str).collect();
    let config = Configuration::new("so", &dims, &["optimism"]);
    let relation = target_relation(&dataset, &config, "optimism").unwrap();
    let catalog =
        FactCatalog::build(&relation, &(0..relation.dim_count()).collect::<Vec<_>>(), 2).unwrap();
    (relation, catalog)
}

fn bench_selection(c: &mut Criterion) {
    let (relation, catalog) = setup();
    let problem = Problem::new(&relation, &catalog, 3).unwrap();
    let residual = ResidualState::new(&relation);
    let mut group = c.benchmark_group("select_best_fact");
    for pruning in [
        FactPruning::Off,
        FactPruning::naive(),
        FactPruning::optimized(),
    ] {
        let name = match &pruning {
            FactPruning::Off => "off",
            FactPruning::Naive(_) => "naive",
            FactPruning::Optimized(_) => "optimized",
        };
        let plan = plan_for(&problem, &pruning);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut counters = Instrumentation::default();
                select_best_fact_with_plan(&problem, &residual, plan.as_ref(), &mut counters)
            })
        });
    }
    group.finish();
}

fn bench_plan_optimizer(c: &mut Criterion) {
    let (_, catalog) = setup();
    let config = PruneOptimizerConfig::default();
    let mut group = c.benchmark_group("plan_optimizer");
    group.bench_function("enumerate", |b| {
        b.iter(|| enumerate_plans(catalog.groups(), &config))
    });
    group.bench_function("optimal", |b| {
        b.iter(|| optimal_plan(catalog.groups(), catalog.rows(), &config))
    });
    group.finish();
}

criterion_group!(benches, bench_selection, bench_plan_optimizer);
criterion_main!(benches);
