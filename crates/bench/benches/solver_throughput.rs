//! ISSUE-3 solver hot-path benchmarks on the flights scenario.
//!
//! * `kernel/*` — per-fact utility gains and apply/revert cycles through
//!   the catalog's CSR inverted index versus the original full row scan
//!   with per-row scope matching. The indexed kernel must win by ≥ 3×
//!   (it touches `rows × groups` entries per sweep instead of
//!   `rows × facts` rows, each with scope decoding).
//! * `exact/*` — the parallel branch-and-bound exact search at 1, 4 and
//!   8 workers on one flights instance; the setup asserts that every
//!   worker count returns a byte-identical speech before timing anything.
//!   Two instances are timed: the paper configuration (greedy seed +
//!   bound pruning — the search is tiny, so this measures fan-out
//!   overhead) and the pruning-free ablation whose ~2.4M-node search is
//!   what actually fans out. Worker scaling needs cores: on a single-CPU
//!   machine expect parity, on `n` cores an up-to-`n×` win on the
//!   search-dominated instance.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use vqs_core::prelude::*;
use vqs_data::{scenarios, DEFAULT_SEED};
use vqs_engine::prelude::*;

fn flights_relation() -> EncodedRelation {
    let dataset = scenarios::flights_spec().generate(DEFAULT_SEED, 0.02);
    let dims: Vec<&str> = dataset.dims.iter().map(String::as_str).collect();
    let config = Configuration::new("flights", &dims, &["cancelled"]);
    target_relation(&dataset, &config, "cancelled").unwrap()
}

/// One full sweep: the gain of every candidate fact against `state`.
fn sweep_scan(relation: &EncodedRelation, catalog: &FactCatalog, state: &ResidualState) -> f64 {
    catalog
        .facts()
        .iter()
        .map(|fact| state.gain_of(relation, fact))
        .sum()
}

fn sweep_indexed(catalog: &FactCatalog, state: &ResidualState) -> f64 {
    (0..catalog.len())
        .map(|id| state.gain_indexed(catalog.fact_rows(id), catalog.fact_devs(id)))
        .sum()
}

fn bench_kernel(c: &mut Criterion) {
    let relation = flights_relation();
    let catalog =
        FactCatalog::build(&relation, &(0..relation.dim_count()).collect::<Vec<_>>(), 2).unwrap();
    let state = ResidualState::new(&relation);

    let mut group = c.benchmark_group("kernel");
    group.sample_size(10);
    group.bench_function("gain_scan", |b| {
        b.iter(|| black_box(sweep_scan(&relation, &catalog, &state)))
    });
    group.bench_function("gain_indexed", |b| {
        b.iter(|| black_box(sweep_indexed(&catalog, &state)))
    });

    // Apply + revert cycles over the first facts of every group — the
    // exact search's per-node work.
    let picks: Vec<FactId> = catalog.groups().iter().map(|g| g.fact_start).collect();
    group.bench_function("apply_revert_scan", |b| {
        b.iter_batched(
            || ResidualState::new(&relation),
            |mut state| {
                for &id in &picks {
                    let fact = catalog.fact(id).clone();
                    let (_, undo) = state.apply_fact(&relation, &fact);
                    state.revert(&undo);
                }
                state.total()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("apply_revert_indexed", |b| {
        b.iter_batched(
            || (ResidualState::new(&relation), UndoArena::new()),
            |(mut state, mut arena)| {
                for &id in &picks {
                    let (rows, devs) = catalog.fact_index(id);
                    state.apply_indexed(rows, devs, &mut arena);
                    state.revert_frame(&mut arena);
                }
                state.total()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_parallel_exact(c: &mut Criterion) {
    let relation = flights_relation();
    // Airline × origin × season: enough candidates that the DFS dominates.
    let catalog = FactCatalog::build(&relation, &[0, 1, 3], 2).unwrap();
    let problem = Problem::new(&relation, &catalog, 3).unwrap();

    let configs: [(&str, ExactSummarizer); 2] = [
        ("paper", ExactSummarizer::paper()),
        ("no_bounds", ExactSummarizer::without_bound_pruning()),
    ];
    for (label, base) in configs {
        // The parallel search must return the sequential speech
        // byte-for-byte before its timings mean anything.
        let reference = base.summarize(&problem).unwrap();
        for workers in [4usize, 8] {
            let parallel = ExactSummarizer {
                workers,
                ..base.clone()
            }
            .summarize(&problem)
            .unwrap();
            assert_eq!(parallel.utility.to_bits(), reference.utility.to_bits());
            assert_eq!(parallel.speech.facts(), reference.speech.facts());
        }

        let mut group = c.benchmark_group(&format!("exact_{label}"));
        group.sample_size(10);
        for workers in [1usize, 4, 8] {
            let summarizer = ExactSummarizer {
                workers,
                ..base.clone()
            };
            group.bench_function(&format!("{workers}w"), |b| {
                b.iter(|| summarizer.summarize(&problem).unwrap().utility)
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_kernel, bench_parallel_exact);
criterion_main!(benches);
