//! # vqs-baseline — comparison systems for the evaluation
//!
//! Two baselines the paper compares against in §VIII-E:
//!
//! * [`sampling`] — the prior data-vocalization approach (refs. 25, 28):
//!   query-time fact selection on incremental row samples, anytime first
//!   sentence, range-valued output. Drives the latency/processing-time
//!   comparison of Fig. 10 and the preference study of Fig. 11.
//! * [`mlgen`] — the learned text-generation baseline: a template-
//!   retrieval substitute for the paper's Simpletransformers seq2seq
//!   model, reproducing its reported failure modes (redundant facts,
//!   overly narrow scopes).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod mlgen;
pub mod sampling;

pub use mlgen::{MlGenerator, TrainExample};
pub use sampling::{vocalize, RangeFact, SamplingConfig, SamplingResult};
