//! The machine-learning summarization baseline of §VIII-E.
//!
//! The paper trains a Simpletransformers seq2seq model on 49 (facts,
//! summary) pairs and reports that the generated speeches "use similar
//! syntactic patterns" but "are often redundant (multiple facts in the
//! same speech referencing the same dimension) and tend to focus on
//! overly narrow data subsets". No pretrained language model is available
//! offline, so this module substitutes a template-retrieval learner with
//! the same observable behaviour: it learns sentence templates by slot
//! abstraction from the training pairs (so its output is syntactically
//! faithful), but selects *content* like a sequence model without the
//! utility objective — preferring salient (extreme-valued, specific)
//! facts, which reproduces exactly the redundancy and narrowness flaws
//! the paper measures. DESIGN.md documents the substitution.

use vqs_engine::prelude::{format_value, NamedFact};

/// One training pair: the candidate facts shown to the model and the
/// reference summary produced by the optimizing approach.
#[derive(Debug, Clone)]
pub struct TrainExample {
    /// Candidate facts (the "input text" of the seq2seq pair).
    pub facts: Vec<NamedFact>,
    /// Reference summary.
    pub summary: String,
}

/// A learned sentence template with `{value}` and `{scope}` slots.
#[derive(Debug, Clone, PartialEq)]
struct SentenceTemplate {
    pattern: String,
}

/// The template-retrieval "seq2seq" substitute.
#[derive(Debug, Clone, Default)]
pub struct MlGenerator {
    lead_templates: Vec<SentenceTemplate>,
    follow_templates: Vec<SentenceTemplate>,
    facts_per_summary: usize,
}

impl MlGenerator {
    /// Train on (facts, summary) pairs: splits summaries into sentences,
    /// abstracts numbers into `{value}` slots and learned scope phrases
    /// into `{scope}` slots.
    pub fn train(examples: &[TrainExample]) -> MlGenerator {
        let mut lead = Vec::new();
        let mut follow = Vec::new();
        let mut fact_counts = Vec::new();
        for example in examples {
            fact_counts.push(example.facts.len().max(1));
            for (i, sentence) in split_sentences(&example.summary).into_iter().enumerate() {
                let template = SentenceTemplate {
                    pattern: abstract_sentence(&sentence, example),
                };
                let bucket = if i == 0 { &mut lead } else { &mut follow };
                if !bucket.contains(&template) {
                    bucket.push(template);
                }
            }
        }
        let facts_per_summary = if fact_counts.is_empty() {
            3
        } else {
            fact_counts.iter().sum::<usize>() / fact_counts.len()
        };
        MlGenerator {
            lead_templates: lead,
            follow_templates: follow,
            facts_per_summary,
        }
    }

    /// Number of distinct sentence templates learned.
    pub fn template_count(&self) -> usize {
        self.lead_templates.len() + self.follow_templates.len()
    }

    /// Generate a summary for a set of candidate facts.
    ///
    /// Content selection is salience-driven (most specific scopes, most
    /// extreme values) with no redundancy penalty — the failure mode the
    /// paper reports for the learned model.
    pub fn generate(&self, candidates: &[NamedFact]) -> String {
        if candidates.is_empty() || self.lead_templates.is_empty() {
            return String::new();
        }
        let mut ranked: Vec<&NamedFact> = candidates.iter().collect();
        // Salience: specificity first (narrow scopes), then extreme values.
        ranked.sort_by(|a, b| {
            b.scope
                .len()
                .cmp(&a.scope.len())
                .then(b.value.abs().total_cmp(&a.value.abs()))
        });
        let chosen: Vec<&NamedFact> = ranked
            .into_iter()
            .take(self.facts_per_summary.max(1))
            .collect();

        let mut out = String::new();
        for (i, fact) in chosen.iter().enumerate() {
            let template = if i == 0 {
                &self.lead_templates[0]
            } else {
                self.follow_templates
                    .get((i - 1) % self.follow_templates.len().max(1))
                    .unwrap_or(&self.lead_templates[0])
            };
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&fill(template, fact));
        }
        out
    }

    /// Fraction of generated facts sharing a dimension with an earlier
    /// fact — the redundancy measure discussed in §VIII-E.
    pub fn redundancy(facts: &[NamedFact]) -> f64 {
        if facts.len() <= 1 {
            return 0.0;
        }
        let mut redundant = 0usize;
        for (i, fact) in facts.iter().enumerate() {
            let repeats = fact.scope.iter().any(|(dim, _)| {
                facts[..i]
                    .iter()
                    .any(|prev| prev.scope.iter().any(|(d, _)| d == dim))
            });
            if repeats {
                redundant += 1;
            }
        }
        redundant as f64 / (facts.len() - 1) as f64
    }

    /// Average scope size of a fact list — the narrowness measure.
    pub fn narrowness(facts: &[NamedFact]) -> f64 {
        if facts.is_empty() {
            return 0.0;
        }
        facts.iter().map(|f| f.scope.len() as f64).sum::<f64>() / facts.len() as f64
    }
}

fn split_sentences(text: &str) -> Vec<String> {
    text.split('.')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| format!("{s}."))
        .collect()
}

/// Replace the example's fact values and scope phrases with slots.
fn abstract_sentence(sentence: &str, example: &TrainExample) -> String {
    let mut out = sentence.to_string();
    for fact in &example.facts {
        let value_text = format_value(fact.value);
        if out.contains(&value_text) {
            out = out.replacen(&value_text, "{value}", 1);
        }
        let scope_text = fact.scope_phrase();
        if out.contains(&scope_text) {
            out = out.replacen(&scope_text, "{scope}", 1);
        }
    }
    out
}

fn fill(template: &SentenceTemplate, fact: &NamedFact) -> String {
    template
        .pattern
        .replace("{value}", &format_value(fact.value))
        .replace("{scope}", &fact.scope_phrase())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact(scope: &[(&str, &str)], value: f64) -> NamedFact {
        NamedFact {
            scope: scope
                .iter()
                .map(|&(d, v)| (d.to_string(), v.to_string()))
                .collect(),
            value,
            support: 10,
        }
    }

    fn training_set() -> Vec<TrainExample> {
        (0..8)
            .map(|i| {
                let f1 = fact(&[], 30.0 + i as f64);
                let f2 = fact(&[("region", "East")], 12.0);
                TrainExample {
                    summary: format!(
                        "The cancellation rate overall is about {}. It is 12 for region East.",
                        format_value(f1.value)
                    ),
                    facts: vec![f1, f2],
                }
            })
            .collect()
    }

    #[test]
    fn learns_slot_templates() {
        let model = MlGenerator::train(&training_set());
        assert!(model.template_count() >= 2);
        // The lead template should have abstracted the value slot.
        assert!(model.lead_templates[0].pattern.contains("{value}"));
        assert!(model.follow_templates[0].pattern.contains("{scope}"));
    }

    #[test]
    fn generates_syntactically_similar_text() {
        let model = MlGenerator::train(&training_set());
        let candidates = vec![
            fact(&[], 25.0),
            fact(&[("region", "West")], 40.0),
            fact(&[("region", "West"), ("season", "Winter")], 55.0),
        ];
        let text = model.generate(&candidates);
        assert!(text.contains("cancellation rate"));
        assert!(text.contains("55"));
    }

    #[test]
    fn exhibits_narrowness_flaw() {
        // Given a broad and a narrow fact, the generator prefers narrow —
        // unlike the utility-optimal selection.
        let model = MlGenerator::train(&training_set());
        let broad = fact(&[], 30.0);
        let narrow = fact(&[("region", "West"), ("season", "Winter")], 31.0);
        let text = model.generate(&[broad.clone(), narrow.clone()]);
        let first_sentence = text.split('.').next().unwrap().to_string();
        assert!(
            first_sentence.contains("region West"),
            "expected narrow fact first: {text}"
        );
    }

    #[test]
    fn redundancy_metric() {
        let redundant = vec![
            fact(&[("month", "Feb")], 10.0),
            fact(&[("month", "Mar")], 12.0),
            fact(&[("month", "Apr")], 14.0),
        ];
        assert_eq!(MlGenerator::redundancy(&redundant), 1.0);
        let diverse = vec![
            fact(&[("month", "Feb")], 10.0),
            fact(&[("region", "East")], 12.0),
        ];
        assert_eq!(MlGenerator::redundancy(&diverse), 0.0);
        assert_eq!(MlGenerator::redundancy(&[]), 0.0);
    }

    #[test]
    fn narrowness_metric() {
        let narrow = vec![fact(&[("a", "x"), ("b", "y")], 1.0)];
        let broad = vec![fact(&[], 1.0)];
        assert!(MlGenerator::narrowness(&narrow) > MlGenerator::narrowness(&broad));
    }

    #[test]
    fn empty_inputs_degrade_gracefully() {
        let model = MlGenerator::train(&[]);
        assert_eq!(model.generate(&[fact(&[], 1.0)]), "");
        let trained = MlGenerator::train(&training_set());
        assert_eq!(trained.generate(&[]), "");
    }
}
