//! The sampling-based vocalization baseline of §VIII-E.
//!
//! Prior work (CiceroDB, ref. 25; voice-based OLAP, ref. 28) selects speech facts
//! *at query time* by evaluating candidates on progressively larger row
//! samples: the first sentence can be spoken once its estimate is
//! confident (low latency), while the remaining facts keep refining in
//! the background (higher total processing time). Because estimates come
//! from samples, spoken values are *ranges* ("between 5 and 10 percent")
//! rather than precise averages — the property driving the Fig. 11
//! preference gap.
//!
//! This is a faithful reimplementation of that execution model, not of
//! any private codebase: incremental uniform row sampling, confidence
//! intervals via the normal approximation, greedy fact selection on the
//! sample, anytime emission.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vqs_core::prelude::*;
use vqs_engine::prelude::{format_value, NamedFact};

/// Tuning knobs of the sampling vocalizer.
#[derive(Debug, Clone)]
pub struct SamplingConfig {
    /// Rows drawn per sampling round.
    pub batch_size: usize,
    /// Emit a fact once its 95% CI half-width falls below this fraction
    /// of the observed target range.
    pub precision: f64,
    /// Hard cap on sampling rounds.
    pub max_rounds: usize,
    /// Facts to select.
    pub max_facts: usize,
    /// Spoken ranges are widened to multiples of this step ("the
    /// cancellation probability is between 5 and 10%" — the prior work
    /// reports coarse ranges "to account for imprecision of sampling").
    pub round_step: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            batch_size: 256,
            precision: 0.05,
            max_rounds: 64,
            max_facts: 3,
            round_step: 5.0,
            seed: 7,
        }
    }
}

/// A fact estimated from samples: a scope plus a value *range*.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeFact {
    /// Scope as named pairs.
    pub scope: Vec<(String, String)>,
    /// Lower bound of the 95% CI.
    pub lo: f64,
    /// Upper bound of the 95% CI.
    pub hi: f64,
    /// Point estimate (sample mean).
    pub estimate: f64,
}

impl RangeFact {
    /// Range phrasing used for voice output.
    pub fn phrase(&self) -> String {
        format!(
            "between {} and {}",
            format_value(self.lo),
            format_value(self.hi)
        )
    }

    /// Convert to a [`NamedFact`] (point estimate) for rating studies.
    pub fn to_named(&self) -> NamedFact {
        NamedFact {
            scope: self.scope.clone(),
            value: self.estimate,
            support: 0,
        }
    }
}

/// Result of one sampling-based vocalization.
#[derive(Debug, Clone)]
pub struct SamplingResult {
    /// Selected facts with their ranges, in emission order.
    pub facts: Vec<RangeFact>,
    /// Time until the first sentence could be spoken.
    pub latency: Duration,
    /// Total processing time for the full speech.
    pub total: Duration,
    /// Rows sampled overall (with replacement).
    pub rows_sampled: usize,
    /// Rendered speech text.
    pub text: String,
}

/// Run the baseline on a (query-filtered) relation.
///
/// `free_dims`/`max_dims` describe the candidate-fact space exactly as
/// for the pre-processing approach, so the two systems answer the same
/// query with the same fact vocabulary.
pub fn vocalize(
    relation: &EncodedRelation,
    free_dims: &[usize],
    max_dims: usize,
    config: &SamplingConfig,
) -> Result<SamplingResult> {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = relation.len();
    if n == 0 {
        return Ok(SamplingResult {
            facts: Vec::new(),
            latency: Duration::ZERO,
            total: start.elapsed(),
            rows_sampled: 0,
            text: "No data available.".to_string(),
        });
    }

    let range = target_range(relation);
    let mut sampled_rows: Vec<usize> = Vec::new();
    let mut facts: Vec<RangeFact> = Vec::new();
    let mut latency: Option<Duration> = None;

    for _ in 0..config.max_rounds {
        // Draw one more batch (uniform with replacement, as in [28]).
        sampled_rows.extend((0..config.batch_size).map(|_| rng.gen_range(0..n)));
        let sample = relation.subset(&sampled_rows)?;

        // Greedy selection on the sample.
        let catalog = FactCatalog::build(&sample, free_dims, max_dims.min(free_dims.len()))?;
        let problem = Problem::new(&sample, &catalog, config.max_facts)?;
        let summary = GreedySummarizer::base().summarize(&problem)?;

        // Confidence intervals of the selected facts on the sample,
        // widened outward to the spoken range grid.
        let estimated: Vec<(RangeFact, f64)> = summary
            .speech
            .facts()
            .iter()
            .map(|fact| {
                let (mut range, width) = estimate(&sample, fact, relation);
                if config.round_step > 0.0 {
                    range.lo = (range.lo / config.round_step).floor() * config.round_step;
                    range.hi = (range.hi / config.round_step).ceil() * config.round_step;
                    if range.lo == range.hi {
                        range.hi += config.round_step;
                    }
                }
                (range, width)
            })
            .collect();

        let confident = |width: f64| width <= config.precision * range.max(f64::EPSILON);
        if latency.is_none() {
            if let Some((_, width)) = estimated.first() {
                if confident(*width) {
                    latency = Some(start.elapsed());
                }
            }
        }
        facts = estimated.iter().map(|(f, _)| f.clone()).collect();
        if !estimated.is_empty() && estimated.iter().all(|(_, width)| confident(*width)) {
            break;
        }
    }

    let total = start.elapsed();
    let text = render(&facts, relation.target_name());
    Ok(SamplingResult {
        facts,
        latency: latency.unwrap_or(total),
        total,
        rows_sampled: sampled_rows.len(),
        text,
    })
}

fn target_range(relation: &EncodedRelation) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in relation.targets() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo.is_finite() && hi.is_finite() {
        hi - lo
    } else {
        0.0
    }
}

/// Sample mean ± 1.96·s/√n over the rows of `sample` within the fact's
/// scope; returns the range fact and the CI half-width.
fn estimate(sample: &EncodedRelation, fact: &Fact, full: &EncodedRelation) -> (RangeFact, f64) {
    let mut values = Vec::new();
    for row in 0..sample.len() {
        if fact.scope.matches_row(sample, row) {
            values.push(sample.target(row));
        }
    }
    let count = values.len().max(1) as f64;
    let mean = values.iter().sum::<f64>() / count;
    // Unbiased sample variance (n−1 denominator, guarded for n ≤ 1).
    let variance =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count - 1.0).max(1.0);
    let half_width = 1.96 * (variance / count).sqrt();
    let scope = fact
        .scope
        .pairs()
        .into_iter()
        .map(|(d, code)| {
            let dim = &full.dims()[d];
            (dim.name.clone(), dim.values[code as usize].to_string())
        })
        .collect();
    (
        RangeFact {
            scope,
            lo: mean - half_width,
            hi: mean + half_width,
            estimate: mean,
        },
        half_width,
    )
}

fn render(facts: &[RangeFact], target: &str) -> String {
    if facts.is_empty() {
        return "No data available.".to_string();
    }
    let target = target.replace('_', " ");
    let mut out = String::new();
    for (i, fact) in facts.iter().enumerate() {
        let scope = if fact.scope.is_empty() {
            "overall".to_string()
        } else {
            let parts: Vec<String> = fact
                .scope
                .iter()
                .map(|(d, v)| format!("{} {}", d.replace('_', " "), v))
                .collect();
            format!("for {}", parts.join(" and "))
        };
        if i == 0 {
            out.push_str(&format!("The {target} {scope} is {}.", fact.phrase()));
        } else {
            out.push_str(&format!(" It is {} {scope}.", fact.phrase()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqs_data::running_example;

    fn relation() -> EncodedRelation {
        // A larger relation so sampling is meaningful: replicate the
        // running example 64 times.
        let base = running_example::relation();
        let rows: Vec<usize> = (0..64).flat_map(|_| 0..base.len()).collect();
        base.subset(&rows).unwrap()
    }

    #[test]
    fn produces_ranges_containing_truth() {
        let r = relation();
        let config = SamplingConfig {
            seed: 3,
            ..Default::default()
        };
        let result = vocalize(&r, &[0, 1], 2, &config).unwrap();
        assert!(!result.facts.is_empty());
        for fact in &result.facts {
            assert!(fact.lo <= fact.estimate && fact.estimate <= fact.hi);
        }
        assert!(result.text.contains("between"));
    }

    #[test]
    fn latency_below_total() {
        let r = relation();
        let result = vocalize(&r, &[0, 1], 2, &SamplingConfig::default()).unwrap();
        assert!(result.latency <= result.total);
        assert!(result.rows_sampled > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let r = relation();
        let config = SamplingConfig {
            seed: 9,
            ..Default::default()
        };
        let a = vocalize(&r, &[0, 1], 2, &config).unwrap();
        let b = vocalize(&r, &[0, 1], 2, &config).unwrap();
        assert_eq!(a.facts, b.facts);
    }

    #[test]
    fn estimates_approach_exact_averages() {
        let r = relation();
        let config = SamplingConfig {
            batch_size: 2048,
            max_rounds: 16,
            ..Default::default()
        };
        let result = vocalize(&r, &[0, 1], 2, &config).unwrap();
        // The sample means of the selected facts should be close to the
        // exact scope averages; spoken ranges widen to the 5-unit grid,
        // so a converged CI spans at most two grid steps.
        for fact in &result.facts {
            let width = fact.hi - fact.lo;
            assert!(width <= 2.0 * config.round_step, "CI too wide: {width}");
        }
    }

    #[test]
    fn spoken_ranges_snap_to_grid() {
        let r = relation();
        let config = SamplingConfig {
            seed: 4,
            ..Default::default()
        };
        let result = vocalize(&r, &[0, 1], 2, &config).unwrap();
        for fact in &result.facts {
            assert_eq!(fact.lo % config.round_step, 0.0, "lo {}", fact.lo);
            assert_eq!(fact.hi % config.round_step, 0.0, "hi {}", fact.hi);
            assert!(fact.hi > fact.lo);
        }
    }

    #[test]
    fn empty_relation_handled() {
        let r = EncodedRelation::from_rows(&["d"], "t", Vec::new(), Prior::Constant(0.0)).unwrap();
        let result = vocalize(&r, &[0], 1, &SamplingConfig::default()).unwrap();
        assert!(result.facts.is_empty());
        assert_eq!(result.rows_sampled, 0);
    }
}
