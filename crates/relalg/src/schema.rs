//! Table schemas: named, typed, nullable columns.

use std::fmt;

use crate::error::{RelalgError, Result};
use crate::value::ColumnType;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name, unique within a schema.
    pub name: String,
    /// Scalar type of the column.
    pub ty: ColumnType,
    /// Whether the column may contain NULLs.
    pub nullable: bool,
}

impl Field {
    /// A non-nullable field.
    pub fn required(name: impl Into<String>, ty: ColumnType) -> Self {
        Field {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// A nullable field.
    pub fn nullable(name: impl Into<String>, ty: ColumnType) -> Self {
        Field {
            name: name.into(),
            ty,
            nullable: true,
        }
    }
}

/// An ordered list of [`Field`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, field) in fields.iter().enumerate() {
            if fields[..i].iter().any(|other| other.name == field.name) {
                return Err(RelalgError::Invalid {
                    detail: format!("duplicate column name '{}'", field.name),
                });
            }
        }
        Ok(Schema { fields })
    }

    /// Schema with no columns (the result of projecting nothing).
    pub fn empty() -> Self {
        Schema { fields: Vec::new() }
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at `index`.
    pub fn field(&self, index: usize) -> Result<&Field> {
        self.fields
            .get(index)
            .ok_or_else(|| RelalgError::ColumnNotFound {
                column: format!("#{index}"),
            })
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| RelalgError::ColumnNotFound {
                column: name.to_string(),
            })
    }

    /// Convenience: field for a column name.
    pub fn field_by_name(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Concatenate two schemas (for joins / cross products), renaming
    /// right-side duplicates with a `right.` prefix so names stay unique.
    pub fn join(&self, right: &Schema) -> Result<Schema> {
        let mut fields = self.fields.clone();
        for field in &right.fields {
            let mut field = field.clone();
            if fields.iter().any(|f| f.name == field.name) {
                field.name = format!("right.{}", field.name);
            }
            fields.push(field);
        }
        Schema::new(fields)
    }

    /// Column names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|f| f.name.as_str())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}: {}", field.name, field.ty)?;
            if field.nullable {
                f.write_str("?")?;
            }
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::required("region", ColumnType::Str),
            Field::required("season", ColumnType::Str),
            Field::required("delay", ColumnType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn index_lookup() {
        let schema = sample();
        assert_eq!(schema.index_of("season").unwrap(), 1);
        assert!(schema.index_of("missing").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::required("a", ColumnType::Int),
            Field::required("a", ColumnType::Str),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn join_renames_collisions() {
        let left = sample();
        let right = Schema::new(vec![
            Field::required("delay", ColumnType::Float),
            Field::required("count", ColumnType::Int),
        ])
        .unwrap();
        let joined = left.join(&right).unwrap();
        assert_eq!(joined.len(), 5);
        assert!(joined.index_of("right.delay").is_ok());
        assert!(joined.index_of("count").is_ok());
    }

    #[test]
    fn display_lists_columns() {
        let text = sample().to_string();
        assert!(text.contains("region: str"));
        assert!(text.contains("delay: float"));
    }
}
