//! Columnar, materialized tables.
//!
//! Storage is column-major with a validity-free representation: nullable
//! positions are `Option`s inside the column vectors. String columns are
//! dictionary encoded — each distinct string is stored once and rows hold
//! `u32` codes — which keeps the scope joins and group-bys used by the
//! summarization algorithms cheap.

use std::fmt;
use std::sync::Arc;

use crate::error::{RelalgError, Result};
use crate::hash::FxHashMap;
use crate::schema::{Field, Schema};
use crate::value::{ColumnType, Value};

/// A dictionary of distinct strings for one column.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    strings: Vec<Arc<str>>,
    codes: FxHashMap<Arc<str>, u32>,
}

impl Dictionary {
    /// Intern `s`, returning its code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.codes.get(s) {
            return code;
        }
        let arc: Arc<str> = Arc::from(s);
        let code = self.strings.len() as u32;
        self.strings.push(arc.clone());
        self.codes.insert(arc, code);
        code
    }

    /// Code of `s` if already interned.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.codes.get(s).copied()
    }

    /// String for `code`.
    pub fn resolve(&self, code: u32) -> Option<&Arc<str>> {
        self.strings.get(code as usize)
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when no strings are interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// All interned strings, in code order.
    pub fn strings(&self) -> &[Arc<str>] {
        &self.strings
    }
}

/// The data of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Booleans.
    Bool(Vec<Option<bool>>),
    /// Integers.
    Int(Vec<Option<i64>>),
    /// Floats.
    Float(Vec<Option<f64>>),
    /// Dictionary-encoded strings.
    Str {
        /// Distinct strings of this column.
        dict: Dictionary,
        /// Per-row dictionary codes.
        codes: Vec<Option<u32>>,
    },
}

impl ColumnData {
    /// Empty column of the given type.
    pub fn empty(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Bool => ColumnData::Bool(Vec::new()),
            ColumnType::Int => ColumnData::Int(Vec::new()),
            ColumnType::Float => ColumnData::Float(Vec::new()),
            ColumnType::Str => ColumnData::Str {
                dict: Dictionary::default(),
                codes: Vec::new(),
            },
        }
    }

    /// Number of rows stored.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str { codes, .. } => codes.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `row`.
    pub fn value(&self, row: usize) -> Value {
        match self {
            ColumnData::Bool(v) => v[row].map(Value::Bool).unwrap_or(Value::Null),
            ColumnData::Int(v) => v[row].map(Value::Int).unwrap_or(Value::Null),
            ColumnData::Float(v) => v[row].map(Value::Float).unwrap_or(Value::Null),
            ColumnData::Str { dict, codes } => codes[row]
                .and_then(|c| dict.resolve(c).cloned())
                .map(Value::Str)
                .unwrap_or(Value::Null),
        }
    }

    /// Append a value, coercing ints to floats where the column is float.
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (self, value) {
            (ColumnData::Bool(v), Value::Bool(b)) => v.push(Some(b)),
            (ColumnData::Bool(v), Value::Null) => v.push(None),
            (ColumnData::Int(v), Value::Int(i)) => v.push(Some(i)),
            (ColumnData::Int(v), Value::Null) => v.push(None),
            (ColumnData::Float(v), Value::Float(f)) => v.push(Some(f)),
            (ColumnData::Float(v), Value::Int(i)) => v.push(Some(i as f64)),
            (ColumnData::Float(v), Value::Null) => v.push(None),
            (ColumnData::Str { dict, codes }, Value::Str(s)) => {
                let code = dict.intern(&s);
                codes.push(Some(code));
            }
            (ColumnData::Str { codes, .. }, Value::Null) => codes.push(None),
            (this, value) => {
                return Err(RelalgError::TypeMismatch {
                    operation: "column push".to_string(),
                    found: format!("{} into {} column", value.type_name(), this.type_name()),
                })
            }
        }
        Ok(())
    }

    fn type_name(&self) -> &'static str {
        match self {
            ColumnData::Bool(_) => "bool",
            ColumnData::Int(_) => "int",
            ColumnData::Float(_) => "float",
            ColumnData::Str { .. } => "str",
        }
    }

    /// Dictionary code of the string at `row` (strings only).
    pub fn str_code(&self, row: usize) -> Option<u32> {
        match self {
            ColumnData::Str { codes, .. } => codes[row],
            _ => None,
        }
    }
}

/// A materialized table: a schema plus column data of equal length.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<ColumnData>,
    rows: usize,
}

impl Table {
    /// Empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnData::empty(f.ty))
            .collect();
        Table {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Build a table from row-major values.
    pub fn from_rows(schema: Schema, rows: impl IntoIterator<Item = Vec<Value>>) -> Result<Self> {
        let mut table = Table::empty(schema);
        for row in rows {
            table.push_row(row)?;
        }
        Ok(table)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column data by index.
    pub fn column(&self, index: usize) -> Result<&ColumnData> {
        self.columns
            .get(index)
            .ok_or_else(|| RelalgError::ColumnNotFound {
                column: format!("#{index}"),
            })
    }

    /// Column data by name.
    pub fn column_by_name(&self, name: &str) -> Result<&ColumnData> {
        self.column(self.schema.index_of(name)?)
    }

    /// Value at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Append a row of values.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(RelalgError::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        for (i, (value, field)) in row.iter().zip(self.schema.fields()).enumerate() {
            if value.is_null() && !field.nullable {
                return Err(RelalgError::Invalid {
                    detail: format!("NULL in non-nullable column '{}' (#{i})", field.name),
                });
            }
        }
        for (column, value) in self.columns.iter_mut().zip(row) {
            column.push(value)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Materialize one row as a `Vec<Value>`.
    pub fn row(&self, row: usize) -> Vec<Value> {
        (0..self.schema.len()).map(|c| self.value(row, c)).collect()
    }

    /// Iterate rows as `Vec<Value>` (convenience for tests and small data).
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.rows).map(|r| self.row(r))
    }

    /// Copy the rows at `indices` (in order) into a new table.
    pub fn take(&self, indices: &[usize]) -> Result<Table> {
        let mut out = Table::empty(self.schema.clone());
        for &idx in indices {
            out.push_row(self.row(idx))?;
        }
        Ok(out)
    }

    /// Append all rows of `other`; schemas must match exactly.
    pub fn append(&mut self, other: &Table) -> Result<()> {
        if self.schema != *other.schema() {
            return Err(RelalgError::SchemaMismatch {
                detail: format!("{} vs {}", self.schema, other.schema()),
            });
        }
        for row in other.iter_rows() {
            self.push_row(row)?;
        }
        Ok(())
    }

    /// Sort rows by the given value extracted per row (stable).
    pub fn sorted_by_key<K: Ord>(&self, key: impl Fn(usize) -> K) -> Result<Table> {
        let mut indices: Vec<usize> = (0..self.rows).collect();
        indices.sort_by_key(|&r| key(r));
        self.take(&indices)
    }

    /// A builder-style helper: single-column table of floats.
    pub fn single_float_column(name: &str, values: &[f64]) -> Result<Table> {
        let schema = Schema::new(vec![Field::required(name, ColumnType::Float)])?;
        Table::from_rows(schema, values.iter().map(|&v| vec![Value::Float(v)]))
    }
}

impl fmt::Display for Table {
    /// Render as an aligned ASCII table (used by examples and EXPLAIN-style
    /// debugging; not meant for large tables).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self.schema.names().map(str::to_string).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let mut rendered: Vec<Vec<String>> = Vec::with_capacity(self.rows.min(50));
        for row in 0..self.rows.min(50) {
            let cells: Vec<String> = (0..self.schema.len())
                .map(|c| self.value(row, c).to_string())
                .collect();
            for (w, cell) in widths.iter_mut().zip(&cells) {
                *w = (*w).max(cell.len());
            }
            rendered.push(cells);
        }
        for (header, width) in headers.iter().zip(&widths) {
            write!(f, "{header:width$} | ")?;
        }
        writeln!(f)?;
        for cells in rendered {
            for (cell, width) in cells.iter().zip(&widths) {
                write!(f, "{cell:width$} | ")?;
            }
            writeln!(f)?;
        }
        if self.rows > 50 {
            writeln!(f, "... ({} rows total)", self.rows)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delays_schema() -> Schema {
        Schema::new(vec![
            Field::required("region", ColumnType::Str),
            Field::required("season", ColumnType::Str),
            Field::required("delay", ColumnType::Float),
        ])
        .unwrap()
    }

    fn delays_table() -> Table {
        Table::from_rows(
            delays_schema(),
            vec![
                vec!["East".into(), "Winter".into(), 20.0.into()],
                vec!["South".into(), "Winter".into(), 10.0.into()],
                vec!["South".into(), "Summer".into(), 20.0.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_rows() {
        let t = delays_table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.value(0, 0), Value::str("East"));
        assert_eq!(t.value(2, 2), Value::Float(20.0));
    }

    #[test]
    fn dictionary_shares_codes() {
        let t = delays_table();
        let col = t.column_by_name("region").unwrap();
        // "South" appears twice but is interned once.
        match col {
            ColumnData::Str { dict, codes } => {
                assert_eq!(dict.len(), 2);
                assert_eq!(codes[1], codes[2]);
            }
            _ => panic!("expected string column"),
        }
    }

    #[test]
    fn int_widens_to_float_column() {
        let mut t = Table::empty(delays_schema());
        t.push_row(vec!["West".into(), "Fall".into(), Value::Int(5)])
            .unwrap();
        assert_eq!(t.value(0, 2), Value::Float(5.0));
    }

    #[test]
    fn arity_checked() {
        let mut t = Table::empty(delays_schema());
        let err = t.push_row(vec!["West".into()]).unwrap_err();
        assert!(matches!(
            err,
            RelalgError::ArityMismatch {
                expected: 3,
                found: 1
            }
        ));
    }

    #[test]
    fn null_rejected_in_required_column() {
        let mut t = Table::empty(delays_schema());
        let err = t
            .push_row(vec![Value::Null, "Fall".into(), 1.0.into()])
            .unwrap_err();
        assert!(err.to_string().contains("non-nullable"));
    }

    #[test]
    fn nullable_column_accepts_null() {
        let schema = Schema::new(vec![Field::nullable("dim", ColumnType::Str)]).unwrap();
        let mut t = Table::empty(schema);
        t.push_row(vec![Value::Null]).unwrap();
        assert_eq!(t.value(0, 0), Value::Null);
    }

    #[test]
    fn take_copies_selected_rows() {
        let t = delays_table();
        let picked = t.take(&[2, 0]).unwrap();
        assert_eq!(picked.len(), 2);
        assert_eq!(picked.value(0, 1), Value::str("Summer"));
        assert_eq!(picked.value(1, 0), Value::str("East"));
    }

    #[test]
    fn append_requires_equal_schema() {
        let mut t = delays_table();
        let other = delays_table();
        t.append(&other).unwrap();
        assert_eq!(t.len(), 6);
        let mismatched = Table::empty(Schema::empty());
        assert!(t.append(&mismatched).is_err());
    }

    #[test]
    fn sorted_by_key_is_stable() {
        let t = delays_table();
        let sorted = t
            .sorted_by_key(|r| t.value(r, 0).as_str().unwrap().to_string())
            .unwrap();
        assert_eq!(sorted.value(0, 0), Value::str("East"));
        // The two "South" rows keep their relative order.
        assert_eq!(sorted.value(1, 1), Value::str("Winter"));
        assert_eq!(sorted.value(2, 1), Value::str("Summer"));
    }

    #[test]
    fn display_renders_header() {
        let text = delays_table().to_string();
        assert!(text.contains("region"));
        assert!(text.contains("East"));
    }
}
