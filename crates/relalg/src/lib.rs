//! # vqs-relalg — minimal in-memory relational engine
//!
//! Execution substrate for the voice-query summarization reproduction.
//! The paper ("Optimally Summarizing Data by Small Fact Sets for Concise
//! Answers to Voice Queries", ICDE 2021) runs its algorithms *inside* a
//! relational DBMS, "executed as a series of relational operators". This
//! crate provides that substrate: columnar [`table::Table`]s with
//! dictionary-encoded strings, a scalar [`expr::Expr`] language with SQL
//! NULL semantics, the operator set used by the paper's pseudo-code
//! (σ, Π, Γ, ⋊⋉, ×) including the fact-scope join, composable
//! [`plan::Plan`]s, table [`stats::TableStats`] and the [`cost::CostModel`]
//! consumed by the pruning optimizer.
//!
//! ```
//! use vqs_relalg::prelude::*;
//!
//! let schema = Schema::new(vec![
//!     Field::required("season", ColumnType::Str),
//!     Field::required("delay", ColumnType::Float),
//! ]).unwrap();
//! let table = Table::from_rows(schema, vec![
//!     vec!["Winter".into(), 20.0.into()],
//!     vec!["Winter".into(), 10.0.into()],
//!     vec!["Summer".into(), 20.0.into()],
//! ]).unwrap();
//!
//! let averages = Plan::values(table)
//!     .aggregate(
//!         vec![Expr::col(0)],
//!         vec!["season".into()],
//!         vec![AggItem::new(AggFunc::Avg, Expr::col(1), "avg_delay")],
//!     )
//!     .execute()
//!     .unwrap();
//! assert_eq!(averages.len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod csv;
pub mod error;
pub mod expr;
pub mod hash;
pub mod ops;
pub mod plan;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::cost::CostModel;
    pub use crate::error::{RelalgError, Result};
    pub use crate::expr::{BinOp, Expr, UnOp};
    pub use crate::hash::{FxHashMap, FxHashSet};
    pub use crate::ops::aggregate::{AggFunc, AggItem};
    pub use crate::ops::join::JoinType;
    pub use crate::ops::ProjectItem;
    pub use crate::plan::Plan;
    pub use crate::schema::{Field, Schema};
    pub use crate::stats::TableStats;
    pub use crate::table::{ColumnData, Dictionary, Table};
    pub use crate::value::{ColumnType, Value};
}
