//! Composable logical plans.
//!
//! The summarization algorithms in `vqs-core` express the paper's
//! pseudo-code (Algorithms 1 and 2) as operator trees — the Rust analogue
//! of "issuing a series of SQL queries" against the DBMS. A [`Plan`] is
//! such a tree; [`Plan::execute`] materializes it bottom-up and
//! [`Plan::explain`] renders an `EXPLAIN`-style summary.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::error::Result;
use crate::expr::Expr;
use crate::ops::aggregate::{aggregate, AggItem};
use crate::ops::cross::cross_join;
use crate::ops::join::{hash_join, scope_join, JoinType};
use crate::ops::{distinct, filter, limit, project, sort, ProjectItem};
use crate::table::Table;

/// A logical plan node.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Leaf: an already-materialized table (shared, cheap to clone).
    Values(Arc<Table>),
    /// σ.
    Filter {
        /// Input plan.
        input: Box<Plan>,
        /// Row predicate.
        predicate: Expr,
    },
    /// Π.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output columns.
        items: Vec<ProjectItem>,
    },
    /// Γ.
    Aggregate {
        /// Input plan.
        input: Box<Plan>,
        /// Group-by expressions.
        group_by: Vec<Expr>,
        /// Names for the group-key output columns.
        key_names: Vec<String>,
        /// Aggregates to compute.
        aggs: Vec<AggItem>,
    },
    /// Hash equi-join.
    HashJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Key column index pairs (left, right).
        keys: Vec<(usize, usize)>,
        /// Inner or left outer.
        join_type: JoinType,
    },
    /// The paper's fact-scope join (condition `M`).
    ScopeJoin {
        /// Facts input (NULL dimension = unrestricted).
        facts: Box<Plan>,
        /// Data input.
        data: Box<Plan>,
        /// Dimension column index pairs (fact, data).
        dims: Vec<(usize, usize)>,
    },
    /// ×.
    Cross {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// ORDER BY.
    Sort {
        /// Input plan.
        input: Box<Plan>,
        /// Sort keys (ascending).
        keys: Vec<Expr>,
    },
    /// DISTINCT.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
    /// LIMIT.
    Limit {
        /// Input plan.
        input: Box<Plan>,
        /// Maximum rows.
        n: usize,
    },
}

impl Plan {
    /// Leaf from a table.
    pub fn values(table: Table) -> Plan {
        Plan::Values(Arc::new(table))
    }

    /// Leaf sharing a table.
    pub fn shared(table: Arc<Table>) -> Plan {
        Plan::Values(table)
    }

    /// σ on top of this plan.
    pub fn filter(self, predicate: Expr) -> Plan {
        Plan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Π on top of this plan.
    pub fn project(self, items: Vec<ProjectItem>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            items,
        }
    }

    /// Γ on top of this plan.
    pub fn aggregate(
        self,
        group_by: Vec<Expr>,
        key_names: Vec<String>,
        aggs: Vec<AggItem>,
    ) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            group_by,
            key_names,
            aggs,
        }
    }

    /// Hash join with another plan.
    pub fn hash_join(self, right: Plan, keys: Vec<(usize, usize)>, join_type: JoinType) -> Plan {
        Plan::HashJoin {
            left: Box::new(self),
            right: Box::new(right),
            keys,
            join_type,
        }
    }

    /// Scope-join this plan (as facts) with `data`.
    pub fn scope_join(self, data: Plan, dims: Vec<(usize, usize)>) -> Plan {
        Plan::ScopeJoin {
            facts: Box::new(self),
            data: Box::new(data),
            dims,
        }
    }

    /// Cartesian product with another plan.
    pub fn cross(self, right: Plan) -> Plan {
        Plan::Cross {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// ORDER BY on top of this plan.
    pub fn sort(self, keys: Vec<Expr>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            keys,
        }
    }

    /// DISTINCT on top of this plan.
    pub fn distinct(self) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
        }
    }

    /// LIMIT on top of this plan.
    pub fn limit(self, n: usize) -> Plan {
        Plan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Materialize the plan bottom-up.
    pub fn execute(&self) -> Result<Table> {
        match self {
            Plan::Values(table) => Ok(table.as_ref().clone()),
            Plan::Filter { input, predicate } => filter(&input.execute()?, predicate),
            Plan::Project { input, items } => project(&input.execute()?, items),
            Plan::Aggregate {
                input,
                group_by,
                key_names,
                aggs,
            } => {
                let names: Vec<&str> = key_names.iter().map(String::as_str).collect();
                aggregate(&input.execute()?, group_by, &names, aggs)
            }
            Plan::HashJoin {
                left,
                right,
                keys,
                join_type,
            } => hash_join(&left.execute()?, &right.execute()?, keys, *join_type),
            Plan::ScopeJoin { facts, data, dims } => {
                scope_join(&facts.execute()?, &data.execute()?, dims)
            }
            Plan::Cross { left, right } => cross_join(&left.execute()?, &right.execute()?),
            Plan::Sort { input, keys } => sort(&input.execute()?, keys),
            Plan::Distinct { input } => distinct(&input.execute()?),
            Plan::Limit { input, n } => limit(&input.execute()?, *n),
        }
    }

    /// Render an indented EXPLAIN-style description of the plan.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Values(table) => {
                let _ = writeln!(out, "{pad}Values[{} rows, {}]", table.len(), table.schema());
            }
            Plan::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}Filter[{predicate}]");
                input.explain_into(out, depth + 1);
            }
            Plan::Project { input, items } => {
                let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
                let _ = writeln!(out, "{pad}Project[{}]", names.join(", "));
                input.explain_into(out, depth + 1);
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}Aggregate[{} keys, {} aggs]",
                    group_by.len(),
                    aggs.len()
                );
                input.explain_into(out, depth + 1);
            }
            Plan::HashJoin {
                left,
                right,
                keys,
                join_type,
            } => {
                let _ = writeln!(out, "{pad}HashJoin[{join_type:?}, {} keys]", keys.len());
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::ScopeJoin { facts, data, dims } => {
                let _ = writeln!(out, "{pad}ScopeJoin[{} dims]", dims.len());
                facts.explain_into(out, depth + 1);
                data.explain_into(out, depth + 1);
            }
            Plan::Cross { left, right } => {
                let _ = writeln!(out, "{pad}Cross");
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::Sort { input, keys } => {
                let _ = writeln!(out, "{pad}Sort[{} keys]", keys.len());
                input.explain_into(out, depth + 1);
            }
            Plan::Distinct { input } => {
                let _ = writeln!(out, "{pad}Distinct");
                input.explain_into(out, depth + 1);
            }
            Plan::Limit { input, n } => {
                let _ = writeln!(out, "{pad}Limit[{n}]");
                input.explain_into(out, depth + 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::aggregate::AggFunc;
    use crate::schema::{Field, Schema};
    use crate::value::{ColumnType, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::required("season", ColumnType::Str),
            Field::required("delay", ColumnType::Float),
        ])
        .unwrap();
        Table::from_rows(
            schema,
            vec![
                vec!["Winter".into(), 20.0.into()],
                vec!["Winter".into(), 10.0.into()],
                vec!["Summer".into(), 20.0.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn composed_plan_executes() {
        let plan = Plan::values(table())
            .filter(Expr::col(1).gt(Expr::lit(5.0)))
            .aggregate(
                vec![Expr::col(0)],
                vec!["season".to_string()],
                vec![AggItem::new(AggFunc::Avg, Expr::col(1), "avg_delay")],
            )
            .sort(vec![Expr::col(0)]);
        let out = plan.execute().unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.value(0, 0), Value::str("Summer"));
        assert_eq!(out.value(1, 1), Value::Float(15.0));
    }

    #[test]
    fn shared_leaves_avoid_copies_until_execute() {
        let shared = Arc::new(table());
        let p1 = Plan::shared(shared.clone()).limit(1);
        let p2 = Plan::shared(shared).distinct();
        assert_eq!(p1.execute().unwrap().len(), 1);
        assert_eq!(p2.execute().unwrap().len(), 3);
    }

    #[test]
    fn explain_shows_structure() {
        let plan = Plan::values(table())
            .filter(Expr::col(1).gt(Expr::lit(5.0)))
            .limit(1);
        let text = plan.explain();
        assert!(text.contains("Limit[1]"));
        assert!(text.contains("Filter"));
        assert!(text.contains("Values[3 rows"));
    }

    #[test]
    fn cross_and_scope_join_nodes_execute() {
        let left = Plan::values(table());
        let right = Plan::values(table());
        assert_eq!(left.clone().cross(right).execute().unwrap().len(), 9);

        let facts_schema = Schema::new(vec![
            Field::nullable("f_season", ColumnType::Str),
            Field::required("value", ColumnType::Float),
        ])
        .unwrap();
        let facts = Table::from_rows(
            facts_schema,
            vec![
                vec![Value::Null, 15.0.into()],
                vec!["Winter".into(), 15.0.into()],
            ],
        )
        .unwrap();
        let joined = Plan::values(facts)
            .scope_join(Plan::values(table()), vec![(0, 0)])
            .execute()
            .unwrap();
        // Unrestricted fact matches 3 rows + Winter fact matches 2 rows.
        assert_eq!(joined.len(), 5);
    }
}
