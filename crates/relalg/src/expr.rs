//! Row-level scalar expressions with SQL-style NULL semantics.
//!
//! Expressions are evaluated against a `(Table, row)` pair. Comparisons and
//! arithmetic propagate NULL; `AND`/`OR` follow three-valued logic, which
//! matters for the scope-join condition `F.d IS NULL OR F.d = R.d` used by
//! the paper's Algorithm 1.

use std::fmt;

use crate::error::{RelalgError, Result};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{ColumnType, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Numeric addition.
    Add,
    /// Numeric subtraction.
    Sub,
    /// Numeric multiplication.
    Mul,
    /// Numeric division (errors on zero divisor).
    Div,
    /// Equality (NULL-propagating).
    Eq,
    /// Inequality.
    Neq,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Three-valued logical AND.
    And,
    /// Three-valued logical OR.
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Logical NOT (three-valued).
    Not,
    /// Absolute value.
    Abs,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to the column at an index of the input schema.
    Column(usize),
    /// A literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr IS NULL` (never NULL itself).
    IsNull(Box<Expr>),
    /// First non-NULL argument.
    Coalesce(Vec<Expr>),
    /// Smallest non-NULL numeric argument (SQL `LEAST`, ignoring NULLs).
    Least(Vec<Expr>),
    /// Largest non-NULL numeric argument (SQL `GREATEST`, ignoring NULLs).
    Greatest(Vec<Expr>),
    /// Searched CASE expression.
    Case {
        /// `(condition, result)` arms, evaluated in order.
        branches: Vec<(Expr, Expr)>,
        /// Result when no arm matches.
        otherwise: Box<Expr>,
    },
}

// The builder methods deliberately mirror SQL operator names; they build
// expression trees rather than computing values, so implementing the std
// operator traits would be misleading.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Column reference.
    pub fn col(index: usize) -> Expr {
        Expr::Column(index)
    }

    /// Literal.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `self = rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Eq, self, rhs)
    }

    /// `self != rhs`.
    pub fn neq(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Neq, self, rhs)
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Lt, self, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Le, self, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Gt, self, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Ge, self, rhs)
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::And, self, rhs)
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Or, self, rhs)
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Add, self, rhs)
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Sub, self, rhs)
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Mul, self, rhs)
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Div, self, rhs)
    }

    /// `ABS(self)`.
    pub fn abs(self) -> Expr {
        Expr::Unary {
            op: UnOp::Abs,
            expr: Box::new(self),
        }
    }

    /// `NOT self`.
    pub fn not(self) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(self),
        }
    }

    /// `-self`.
    pub fn neg(self) -> Expr {
        Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(self),
        }
    }

    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// Evaluate against one row of `table`.
    pub fn eval(&self, table: &Table, row: usize) -> Result<Value> {
        match self {
            Expr::Column(index) => {
                table.column(*index)?;
                Ok(table.value(row, *index))
            }
            Expr::Literal(value) => Ok(value.clone()),
            Expr::Binary { op, lhs, rhs } => {
                eval_binary(*op, lhs.eval(table, row)?, rhs.eval(table, row)?)
            }
            Expr::Unary { op, expr } => eval_unary(*op, expr.eval(table, row)?),
            Expr::IsNull(expr) => Ok(Value::Bool(expr.eval(table, row)?.is_null())),
            Expr::Coalesce(items) => {
                for item in items {
                    let value = item.eval(table, row)?;
                    if !value.is_null() {
                        return Ok(value);
                    }
                }
                Ok(Value::Null)
            }
            Expr::Least(items) => fold_numeric(items, table, row, |a, b| a.min(b)),
            Expr::Greatest(items) => fold_numeric(items, table, row, |a, b| a.max(b)),
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (condition, result) in branches {
                    if condition.eval(table, row)?.as_bool() == Some(true) {
                        return result.eval(table, row);
                    }
                }
                otherwise.eval(table, row)
            }
        }
    }

    /// Static result type of the expression under `schema`.
    ///
    /// Used by projections to derive output schemas. Mixed int/float
    /// arithmetic infers float; comparisons infer bool.
    pub fn infer_type(&self, schema: &Schema) -> Result<ColumnType> {
        match self {
            Expr::Column(index) => Ok(schema.field(*index)?.ty),
            Expr::Literal(value) => Ok(value.column_type().unwrap_or(ColumnType::Float)),
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul => {
                    let l = lhs.infer_type(schema)?;
                    let r = rhs.infer_type(schema)?;
                    if l == ColumnType::Int && r == ColumnType::Int {
                        Ok(ColumnType::Int)
                    } else {
                        Ok(ColumnType::Float)
                    }
                }
                BinOp::Div => Ok(ColumnType::Float),
                _ => Ok(ColumnType::Bool),
            },
            Expr::Unary { op, expr } => match op {
                UnOp::Not => Ok(ColumnType::Bool),
                UnOp::Neg | UnOp::Abs => expr.infer_type(schema),
            },
            Expr::IsNull(_) => Ok(ColumnType::Bool),
            Expr::Coalesce(items) | Expr::Least(items) | Expr::Greatest(items) => items
                .first()
                .map(|e| e.infer_type(schema))
                .unwrap_or(Ok(ColumnType::Float)),
            Expr::Case {
                branches,
                otherwise,
            } => branches
                .first()
                .map(|(_, r)| r.infer_type(schema))
                .unwrap_or_else(|| otherwise.infer_type(schema)),
        }
    }

    /// Whether the expression can produce NULL under `schema`.
    pub fn infer_nullable(&self, schema: &Schema) -> bool {
        match self {
            Expr::Column(index) => schema.field(*index).map(|f| f.nullable).unwrap_or(true),
            Expr::Literal(value) => value.is_null(),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.infer_nullable(schema) || rhs.infer_nullable(schema)
            }
            Expr::Unary { expr, .. } => expr.infer_nullable(schema),
            Expr::IsNull(_) => false,
            Expr::Coalesce(items) => items.iter().all(|e| e.infer_nullable(schema)),
            Expr::Least(items) | Expr::Greatest(items) => {
                items.iter().all(|e| e.infer_nullable(schema))
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                branches.iter().any(|(_, r)| r.infer_nullable(schema))
                    || otherwise.infer_nullable(schema)
            }
        }
    }
}

fn fold_numeric(
    items: &[Expr],
    table: &Table,
    row: usize,
    combine: impl Fn(f64, f64) -> f64,
) -> Result<Value> {
    let mut acc: Option<f64> = None;
    for item in items {
        let value = item.eval(table, row)?;
        if value.is_null() {
            continue;
        }
        let v = value.expect_numeric("least/greatest")?;
        acc = Some(match acc {
            Some(current) => combine(current, v),
            None => v,
        });
    }
    Ok(acc.map(Value::Float).unwrap_or(Value::Null))
}

fn eval_unary(op: UnOp, value: Value) -> Result<Value> {
    if value.is_null() {
        return Ok(Value::Null);
    }
    match op {
        UnOp::Neg => match value {
            Value::Int(i) => Ok(Value::Int(-i)),
            other => Ok(Value::Float(-other.expect_numeric("negation")?)),
        },
        UnOp::Abs => match value {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            other => Ok(Value::Float(other.expect_numeric("abs")?.abs())),
        },
        UnOp::Not => match value.as_bool() {
            Some(b) => Ok(Value::Bool(!b)),
            None => Err(RelalgError::TypeMismatch {
                operation: "NOT".to_string(),
                found: value.type_name().to_string(),
            }),
        },
    }
}

fn eval_binary(op: BinOp, lhs: Value, rhs: Value) -> Result<Value> {
    use BinOp::*;
    match op {
        And => return Ok(three_valued_and(lhs, rhs)),
        Or => return Ok(three_valued_or(lhs, rhs)),
        _ => {}
    }
    if lhs.is_null() || rhs.is_null() {
        return Ok(Value::Null);
    }
    match op {
        Add | Sub | Mul | Div => {
            // Keep integer arithmetic exact when both sides are ints.
            if let (Value::Int(a), Value::Int(b)) = (&lhs, &rhs) {
                return match op {
                    Add => Ok(Value::Int(a.wrapping_add(*b))),
                    Sub => Ok(Value::Int(a.wrapping_sub(*b))),
                    Mul => Ok(Value::Int(a.wrapping_mul(*b))),
                    Div => {
                        if *b == 0 {
                            Err(RelalgError::DivisionByZero)
                        } else {
                            Ok(Value::Float(*a as f64 / *b as f64))
                        }
                    }
                    _ => unreachable!(),
                };
            }
            let a = lhs.expect_numeric("arithmetic")?;
            let b = rhs.expect_numeric("arithmetic")?;
            match op {
                Add => Ok(Value::Float(a + b)),
                Sub => Ok(Value::Float(a - b)),
                Mul => Ok(Value::Float(a * b)),
                Div => {
                    if b == 0.0 {
                        Err(RelalgError::DivisionByZero)
                    } else {
                        Ok(Value::Float(a / b))
                    }
                }
                _ => unreachable!(),
            }
        }
        Eq => Ok(Value::Bool(lhs == rhs)),
        Neq => Ok(Value::Bool(lhs != rhs)),
        Lt => Ok(Value::Bool(lhs < rhs)),
        Le => Ok(Value::Bool(lhs <= rhs)),
        Gt => Ok(Value::Bool(lhs > rhs)),
        Ge => Ok(Value::Bool(lhs >= rhs)),
        And | Or => unreachable!(),
    }
}

fn three_valued_and(lhs: Value, rhs: Value) -> Value {
    match (lhs.as_bool(), rhs.as_bool(), lhs.is_null() || rhs.is_null()) {
        (Some(false), _, _) | (_, Some(false), _) => Value::Bool(false),
        (Some(true), Some(true), _) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn three_valued_or(lhs: Value, rhs: Value) -> Value {
    match (lhs.as_bool(), rhs.as_bool()) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(i) => write!(f, "#{i}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, lhs, rhs } => {
                let symbol = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Eq => "=",
                    BinOp::Neq => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                };
                write!(f, "({lhs} {symbol} {rhs})")
            }
            Expr::Unary { op, expr } => match op {
                UnOp::Neg => write!(f, "(-{expr})"),
                UnOp::Not => write!(f, "(NOT {expr})"),
                UnOp::Abs => write!(f, "ABS({expr})"),
            },
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
            Expr::Coalesce(items) => write_call(f, "COALESCE", items),
            Expr::Least(items) => write_call(f, "LEAST", items),
            Expr::Greatest(items) => write_call(f, "GREATEST", items),
            Expr::Case {
                branches,
                otherwise,
            } => {
                f.write_str("CASE")?;
                for (c, r) in branches {
                    write!(f, " WHEN {c} THEN {r}")?;
                }
                write!(f, " ELSE {otherwise} END")
            }
        }
    }
}

fn write_call(f: &mut fmt::Formatter<'_>, name: &str, items: &[Expr]) -> fmt::Result {
    write!(f, "{name}(")?;
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{item}")?;
    }
    f.write_str(")")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::nullable("dim", ColumnType::Str),
            Field::required("x", ColumnType::Float),
            Field::required("n", ColumnType::Int),
        ])
        .unwrap();
        Table::from_rows(
            schema,
            vec![
                vec!["a".into(), 2.5.into(), 4.into()],
                vec![Value::Null, (-3.0).into(), 7.into()],
            ],
        )
        .unwrap()
    }

    fn eval(expr: &Expr, row: usize) -> Value {
        expr.eval(&table(), row).unwrap()
    }

    #[test]
    fn arithmetic_and_coercion() {
        let e = Expr::col(1).add(Expr::col(2));
        assert_eq!(eval(&e, 0), Value::Float(6.5));
        let int_sum = Expr::col(2).add(Expr::lit(1));
        assert_eq!(eval(&int_sum, 0), Value::Int(5));
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = Expr::lit(1).div(Expr::lit(0));
        assert_eq!(
            e.eval(&table(), 0).unwrap_err(),
            RelalgError::DivisionByZero
        );
        let e = Expr::lit(1.0).div(Expr::lit(0.0));
        assert!(e.eval(&table(), 0).is_err());
    }

    #[test]
    fn abs_and_neg() {
        assert_eq!(eval(&Expr::col(1).abs(), 1), Value::Float(3.0));
        assert_eq!(eval(&Expr::col(2).neg(), 1), Value::Int(-7));
    }

    #[test]
    fn neg_of_int_stays_int() {
        assert_eq!(eval(&Expr::col(2).neg(), 0), Value::Int(-4));
    }

    #[test]
    fn comparisons_propagate_null() {
        let e = Expr::col(0).eq(Expr::lit("a"));
        assert_eq!(eval(&e, 0), Value::Bool(true));
        assert_eq!(eval(&e, 1), Value::Null);
    }

    #[test]
    fn scope_join_condition_semantics() {
        // F.d IS NULL OR F.d = R.d — the paper's join condition M.
        let cond = Expr::col(0).is_null().or(Expr::col(0).eq(Expr::lit("b")));
        assert_eq!(eval(&cond, 0), Value::Bool(false)); // "a" != "b"
        assert_eq!(eval(&cond, 1), Value::Bool(true)); // NULL dim matches everything
    }

    #[test]
    fn three_valued_logic_tables() {
        let t = Value::Bool(true);
        let f_ = Value::Bool(false);
        let n = Value::Null;
        assert_eq!(three_valued_and(n.clone(), f_.clone()), Value::Bool(false));
        assert_eq!(three_valued_and(n.clone(), t.clone()), Value::Null);
        assert_eq!(three_valued_or(n.clone(), t.clone()), Value::Bool(true));
        assert_eq!(three_valued_or(n.clone(), f_.clone()), Value::Null);
        assert_eq!(three_valued_or(n.clone(), n.clone()), Value::Null);
    }

    #[test]
    fn coalesce_picks_first_non_null() {
        let e = Expr::Coalesce(vec![Expr::col(0), Expr::lit("fallback")]);
        assert_eq!(eval(&e, 0), Value::str("a"));
        assert_eq!(eval(&e, 1), Value::str("fallback"));
    }

    #[test]
    fn least_greatest_skip_nulls() {
        let e = Expr::Least(vec![Expr::lit(Value::Null), Expr::lit(4.0), Expr::lit(2.0)]);
        assert_eq!(eval(&e, 0), Value::Float(2.0));
        let e = Expr::Greatest(vec![Expr::lit(Value::Null), Expr::lit(4.0), Expr::lit(2.0)]);
        assert_eq!(eval(&e, 0), Value::Float(4.0));
        let e = Expr::Least(vec![Expr::lit(Value::Null)]);
        assert_eq!(eval(&e, 0), Value::Null);
    }

    #[test]
    fn case_expression() {
        let e = Expr::Case {
            branches: vec![(Expr::col(1).gt(Expr::lit(0.0)), Expr::lit("pos"))],
            otherwise: Box::new(Expr::lit("neg")),
        };
        assert_eq!(eval(&e, 0), Value::str("pos"));
        assert_eq!(eval(&e, 1), Value::str("neg"));
    }

    #[test]
    fn type_inference() {
        let schema = table().schema().clone();
        assert_eq!(Expr::col(1).infer_type(&schema).unwrap(), ColumnType::Float);
        assert_eq!(
            Expr::col(2).add(Expr::lit(1)).infer_type(&schema).unwrap(),
            ColumnType::Int
        );
        assert_eq!(
            Expr::col(2).add(Expr::col(1)).infer_type(&schema).unwrap(),
            ColumnType::Float
        );
        assert_eq!(
            Expr::col(0).eq(Expr::lit("a")).infer_type(&schema).unwrap(),
            ColumnType::Bool
        );
        assert!(Expr::col(0).infer_nullable(&schema));
        assert!(!Expr::col(1).infer_nullable(&schema));
        assert!(!Expr::col(0).is_null().infer_nullable(&schema));
    }

    #[test]
    fn display_round_trips_structure() {
        let e = Expr::col(0).is_null().or(Expr::col(0).eq(Expr::lit("b")));
        assert_eq!(e.to_string(), "((#0 IS NULL) OR (#0 = b))");
    }
}
