//! A simple cost model for the engine's operators.
//!
//! §VI-C of the paper estimates two operation costs: `CU(g)` — computing
//! per-fact utility for fact group `g`, which needs a join between facts
//! and data rows — and `CD(g)` — computing per-group deviation bounds,
//! which is a group-by without a join. "Both estimates can be obtained via
//! the query optimizer cost model"; this module is that cost model.
//!
//! Costs are unitless work estimates (≈ number of row touches weighted by
//! per-touch effort), not wall-clock predictions. Only *ratios* matter to
//! the pruning optimizer.

/// Tunable per-row effort weights.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Effort to probe the join hash table and compute a utility term for
    /// one (row, fact) pair. Joins also write wider intermediate rows,
    /// hence the higher default weight.
    pub join_row_weight: f64,
    /// Effort to hash a row into a group and add one value.
    pub group_row_weight: f64,
    /// Fixed setup cost per operator invocation (hash-table allocation,
    /// output buffers).
    pub operator_setup: f64,
    /// Per-output-row cost of materializing results.
    pub output_row_weight: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Weights calibrated against the relalg operators on 100k-row
        // tables: a scope-join row touch costs roughly 3x a group-by row
        // touch (hash probe + wider output rows).
        CostModel {
            join_row_weight: 3.0,
            group_row_weight: 1.0,
            operator_setup: 64.0,
            output_row_weight: 0.5,
        }
    }
}

impl CostModel {
    /// `CU(g)`: utility computation for one fact group — a scope join of
    /// `rows` data rows against `facts` facts followed by a grouped sum.
    ///
    /// Every data row matches exactly one fact of a group (the fact whose
    /// scope equals the row's dimension values), so join output ≈ `rows`.
    pub fn utility_cost(&self, rows: usize, facts: usize) -> f64 {
        self.operator_setup
            + self.join_row_weight * rows as f64
            + self.group_row_weight * rows as f64
            + self.output_row_weight * facts as f64
    }

    /// `CD(g)`: deviation upper bounds for one fact group — a single
    /// group-by over the data, no join.
    pub fn deviation_cost(&self, rows: usize, facts: usize) -> f64 {
        self.operator_setup
            + self.group_row_weight * rows as f64
            + self.output_row_weight * facts as f64
    }

    /// Cost of a hash equi-join producing `output` rows.
    pub fn hash_join_cost(&self, left: usize, right: usize, output: usize) -> f64 {
        self.operator_setup
            + self.group_row_weight * (left + right) as f64
            + self.join_row_weight * output as f64
    }

    /// Cost of a full scan with a filter.
    pub fn scan_cost(&self, rows: usize) -> f64 {
        self.operator_setup + self.group_row_weight * rows as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utility_more_expensive_than_deviation() {
        let model = CostModel::default();
        // The core asymmetry the pruning optimizer relies on.
        assert!(model.utility_cost(10_000, 50) > model.deviation_cost(10_000, 50));
    }

    #[test]
    fn costs_scale_with_rows() {
        let model = CostModel::default();
        assert!(model.utility_cost(20_000, 50) > model.utility_cost(10_000, 50));
        assert!(model.deviation_cost(20_000, 50) > model.deviation_cost(10_000, 50));
    }

    #[test]
    fn setup_dominates_tiny_inputs() {
        let model = CostModel::default();
        let tiny = model.deviation_cost(1, 1);
        assert!(tiny >= model.operator_setup);
    }

    #[test]
    fn join_cost_grows_with_output() {
        let model = CostModel::default();
        assert!(model.hash_join_cost(100, 100, 10_000) > model.hash_join_cost(100, 100, 100));
    }
}
