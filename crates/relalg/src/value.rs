//! Scalar values and their SQL-like semantics.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{RelalgError, Result};

/// The scalar types storable in a [`crate::table::Table`] column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// Boolean values.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// 64-bit IEEE-754 floating point numbers.
    Float,
    /// UTF-8 strings (dictionary encoded in storage).
    Str,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ColumnType::Bool => "bool",
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Str => "str",
        };
        f.write_str(name)
    }
}

/// A single scalar value, including SQL-style `NULL`.
///
/// `Value` implements *total* equality, ordering and hashing so it can be
/// used directly as a grouping or join key: floats compare via
/// [`f64::total_cmp`] and hash via their bit pattern, and `Null` is equal to
/// `Null` (grouping semantics, as in SQL `GROUP BY`). Expression evaluation
/// applies three-valued logic separately in [`crate::expr`].
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL / missing value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Shared immutable string.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True iff the value is `Null`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The dynamic type of the value, or `None` for `Null`.
    pub fn column_type(&self) -> Option<ColumnType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(ColumnType::Bool),
            Value::Int(_) => Some(ColumnType::Int),
            Value::Float(_) => Some(ColumnType::Float),
            Value::Str(_) => Some(ColumnType::Str),
        }
    }

    /// Numeric view of the value (ints widen to floats).
    ///
    /// Returns `None` for `Null` and non-numeric types.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view of the value.
    #[inline]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view of the value.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view that errors (used by expression evaluation).
    pub fn expect_numeric(&self, operation: &str) -> Result<f64> {
        self.as_f64().ok_or_else(|| RelalgError::TypeMismatch {
            operation: operation.to_string(),
            found: self.type_name().to_string(),
        })
    }

    /// Short name of the dynamic type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
        }
    }

    /// True if the value is of (or coercible to) `ty`; `Null` fits any type.
    pub fn fits(&self, ty: ColumnType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Bool(_), ColumnType::Bool)
                | (Value::Int(_), ColumnType::Int | ColumnType::Float)
                | (Value::Float(_), ColumnType::Float)
                | (Value::Str(_), ColumnType::Str)
        )
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: Null < Bool < numeric < Str; ints and floats compare
    /// numerically with each other.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Bool(_), _) => Ordering::Less,
            (_, Bool(_)) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(_) | Float(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_) | Float(_)) => Ordering::Greater,
            (Str(a), Str(b)) => a.cmp(b),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            // Ints and floats that compare equal must hash equal, so hash
            // every numeric through its f64 bit pattern.
            Value::Int(i) => {
                state.write_u8(2);
                state.write_u64((*i as f64).to_bits());
            }
            Value::Float(f) => {
                state.write_u8(2);
                state.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FxHashMap;

    #[test]
    fn type_names_and_kinds() {
        assert_eq!(Value::Null.column_type(), None);
        assert_eq!(Value::from(1i64).column_type(), Some(ColumnType::Int));
        assert_eq!(Value::from(1.5).column_type(), Some(ColumnType::Float));
        assert_eq!(Value::str("x").column_type(), Some(ColumnType::Str));
        assert_eq!(Value::from(true).column_type(), Some(ColumnType::Bool));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn cross_type_equal_values_hash_equal() {
        let mut map: FxHashMap<Value, i32> = FxHashMap::default();
        map.insert(Value::Int(3), 1);
        assert_eq!(map.get(&Value::Float(3.0)), Some(&1));
    }

    #[test]
    fn null_equals_null_for_grouping() {
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null < Value::Int(i64::MIN));
    }

    #[test]
    fn ordering_is_total_across_types() {
        let mut values = vec![
            Value::str("z"),
            Value::Float(2.5),
            Value::Null,
            Value::Int(7),
            Value::Bool(false),
            Value::str("a"),
        ];
        values.sort();
        assert_eq!(
            values,
            vec![
                Value::Null,
                Value::Bool(false),
                Value::Float(2.5),
                Value::Int(7),
                Value::str("a"),
                Value::str("z"),
            ]
        );
    }

    #[test]
    fn nan_is_orderable() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(f64::INFINITY) < nan);
    }

    #[test]
    fn fits_allows_widening_and_null() {
        assert!(Value::Int(1).fits(ColumnType::Float));
        assert!(!Value::Float(1.0).fits(ColumnType::Int));
        assert!(Value::Null.fits(ColumnType::Str));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::str("Winter").to_string(), "Winter");
    }

    #[test]
    fn expect_numeric_reports_operation() {
        let err = Value::str("x").expect_numeric("abs").unwrap_err();
        assert!(err.to_string().contains("abs"));
    }
}
