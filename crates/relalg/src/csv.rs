//! Minimal CSV reader/writer (RFC-4180 quoting) for loading example data
//! and exporting experiment results. Hand-rolled to stay within the
//! approved dependency set.

use std::io::{BufRead, Write};

use crate::error::{RelalgError, Result};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{ColumnType, Value};

/// Parse one CSV record from `line`, honoring quotes. Returns the fields.
fn parse_record(line: &str, line_no: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if field.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(RelalgError::Csv {
                            line: line_no,
                            detail: "quote inside unquoted field".to_string(),
                        });
                    }
                }
                ',' => {
                    fields.push(std::mem::take(&mut field));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(RelalgError::Csv {
            line: line_no,
            detail: "unterminated quote".to_string(),
        });
    }
    fields.push(field);
    Ok(fields)
}

fn parse_value(text: &str, ty: ColumnType, line_no: usize) -> Result<Value> {
    if text.is_empty() {
        return Ok(Value::Null);
    }
    match ty {
        ColumnType::Str => Ok(Value::str(text)),
        ColumnType::Bool => match text {
            "true" | "TRUE" | "1" => Ok(Value::Bool(true)),
            "false" | "FALSE" | "0" => Ok(Value::Bool(false)),
            _ => Err(RelalgError::Csv {
                line: line_no,
                detail: format!("invalid bool '{text}'"),
            }),
        },
        ColumnType::Int => text
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| RelalgError::Csv {
                line: line_no,
                detail: format!("invalid int '{text}'"),
            }),
        ColumnType::Float => text
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| RelalgError::Csv {
                line: line_no,
                detail: format!("invalid float '{text}'"),
            }),
    }
}

/// Read a table from CSV text with a header row; the caller supplies the
/// schema (column order must match the header).
pub fn read_csv(reader: impl BufRead, schema: Schema) -> Result<Table> {
    let mut table = Table::empty(schema);
    let mut lines = reader.lines().enumerate();
    // Header row: validate names.
    let header = match lines.next() {
        Some((_, Ok(line))) => parse_record(&line, 1)?,
        Some((_, Err(e))) => {
            return Err(RelalgError::Csv {
                line: 1,
                detail: e.to_string(),
            });
        }
        None => return Ok(table),
    };
    for (field, name) in table.schema().fields().iter().zip(&header) {
        if &field.name != name {
            return Err(RelalgError::Csv {
                line: 1,
                detail: format!(
                    "header '{name}' does not match schema column '{}'",
                    field.name
                ),
            });
        }
    }
    let width = table.schema().len();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.map_err(|e| RelalgError::Csv {
            line: line_no,
            detail: e.to_string(),
        })?;
        if line.is_empty() {
            continue;
        }
        let fields = parse_record(&line, line_no)?;
        if fields.len() != width {
            return Err(RelalgError::Csv {
                line: line_no,
                detail: format!("expected {width} fields, got {}", fields.len()),
            });
        }
        let mut row = Vec::with_capacity(width);
        for (text, field) in fields.iter().zip(table.schema().fields()) {
            row.push(parse_value(text, field.ty, line_no)?);
        }
        table.push_row(row)?;
    }
    Ok(table)
}

fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Write a table as CSV with a header row.
pub fn write_csv(table: &Table, mut writer: impl Write) -> Result<()> {
    let io_err = |e: std::io::Error| RelalgError::Csv {
        line: 0,
        detail: e.to_string(),
    };
    let header: Vec<String> = table.schema().names().map(escape).collect();
    writeln!(writer, "{}", header.join(",")).map_err(io_err)?;
    for row in table.iter_rows() {
        let cells: Vec<String> = row
            .iter()
            .map(|v| {
                if v.is_null() {
                    String::new()
                } else {
                    escape(&v.to_string())
                }
            })
            .collect();
        writeln!(writer, "{}", cells.join(",")).map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::required("region", ColumnType::Str),
            Field::nullable("season", ColumnType::Str),
            Field::required("delay", ColumnType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let table = Table::from_rows(
            schema(),
            vec![
                vec!["East".into(), "Winter".into(), 20.0.into()],
                vec!["South, NY".into(), Value::Null, 10.5.into()],
            ],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_csv(&table, &mut buf).unwrap();
        let parsed = read_csv(buf.as_slice(), schema()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.value(1, 0), Value::str("South, NY"));
        assert_eq!(parsed.value(1, 1), Value::Null);
        assert_eq!(parsed.value(1, 2), Value::Float(10.5));
    }

    #[test]
    fn quoted_fields_with_embedded_quotes() {
        let text = "region,season,delay\n\"a \"\"big\"\" one\",Winter,1.0\n";
        let parsed = read_csv(text.as_bytes(), schema()).unwrap();
        assert_eq!(parsed.value(0, 0), Value::str("a \"big\" one"));
    }

    #[test]
    fn header_mismatch_rejected() {
        let text = "wrong,season,delay\nEast,Winter,1.0\n";
        let err = read_csv(text.as_bytes(), schema()).unwrap_err();
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn field_count_mismatch_rejected() {
        let text = "region,season,delay\nEast,Winter\n";
        let err = read_csv(text.as_bytes(), schema()).unwrap_err();
        assert!(err.to_string().contains("expected 3"));
    }

    #[test]
    fn bad_number_reports_line() {
        let text = "region,season,delay\nEast,Winter,notanumber\n";
        let err = read_csv(text.as_bytes(), schema()).unwrap_err();
        assert!(matches!(err, RelalgError::Csv { line: 2, .. }));
    }

    #[test]
    fn empty_input_is_empty_table() {
        let parsed = read_csv("".as_bytes(), schema()).unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn unterminated_quote_is_error() {
        let text = "region,season,delay\n\"East,Winter,1.0\n";
        assert!(read_csv(text.as_bytes(), schema()).is_err());
    }
}
