//! Γ: grouping and aggregation.

use crate::error::{RelalgError, Result};
use crate::expr::Expr;
use crate::hash::FxHashMap;
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{ColumnType, Value};

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Sum of non-NULL values (NULL on empty input, like SQL).
    Sum,
    /// Count of non-NULL values.
    Count,
    /// Count of all rows (`COUNT(*)`).
    CountAll,
    /// Average of non-NULL values.
    Avg,
    /// Minimum non-NULL value.
    Min,
    /// Maximum non-NULL value.
    Max,
}

/// One aggregate column specification.
#[derive(Debug, Clone)]
pub struct AggItem {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input expression (ignored for `CountAll`).
    pub expr: Expr,
    /// Output column name.
    pub name: String,
}

impl AggItem {
    /// Build an aggregate item.
    pub fn new(func: AggFunc, expr: Expr, name: impl Into<String>) -> Self {
        AggItem {
            func,
            expr,
            name: name.into(),
        }
    }
}

/// Accumulator for a single (group, aggregate) pair.
#[derive(Debug, Clone, Default)]
struct Accumulator {
    sum: f64,
    count: u64,
    rows: u64,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    fn update(&mut self, value: Value) {
        self.rows += 1;
        if value.is_null() {
            return;
        }
        if let Some(v) = value.as_f64() {
            self.sum += v;
        }
        self.count += 1;
        match &self.min {
            Some(current) if *current <= value => {}
            _ => self.min = Some(value.clone()),
        }
        match &self.max {
            Some(current) if *current >= value => {}
            _ => self.max = Some(value),
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::CountAll => Value::Int(self.rows as i64),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Γ: group `input` by the `group_by` expressions and compute `aggs`.
///
/// Output columns are the group keys (named `key0..` unless a name is
/// provided via `key_names`) followed by the aggregates. With an empty
/// `group_by`, a single global group is produced even for empty input
/// (matching SQL aggregate queries without GROUP BY).
pub fn aggregate(
    input: &Table,
    group_by: &[Expr],
    key_names: &[&str],
    aggs: &[AggItem],
) -> Result<Table> {
    if !key_names.is_empty() && key_names.len() != group_by.len() {
        return Err(RelalgError::Invalid {
            detail: format!(
                "aggregate: {} key names for {} group expressions",
                key_names.len(),
                group_by.len()
            ),
        });
    }

    // Output schema: keys then aggregates.
    let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
    for (i, key) in group_by.iter().enumerate() {
        let name = key_names
            .get(i)
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("key{i}"));
        fields.push(Field {
            name,
            ty: key.infer_type(input.schema())?,
            nullable: key.infer_nullable(input.schema()),
        });
    }
    for agg in aggs {
        let ty = match agg.func {
            AggFunc::Count | AggFunc::CountAll => ColumnType::Int,
            AggFunc::Sum | AggFunc::Avg => ColumnType::Float,
            AggFunc::Min | AggFunc::Max => agg.expr.infer_type(input.schema())?,
        };
        fields.push(Field {
            name: agg.name.clone(),
            ty,
            nullable: true,
        });
    }
    let schema = Schema::new(fields)?;

    // Group states in first-seen order for deterministic output.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: FxHashMap<Vec<Value>, Vec<Accumulator>> = FxHashMap::default();
    for row in 0..input.len() {
        let mut key = Vec::with_capacity(group_by.len());
        for expr in group_by {
            key.push(expr.eval(input, row)?);
        }
        let state = match groups.get_mut(&key) {
            Some(state) => state,
            None => {
                order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| vec![Accumulator::default(); aggs.len()])
            }
        };
        for (acc, agg) in state.iter_mut().zip(aggs) {
            let value = match agg.func {
                AggFunc::CountAll => Value::Int(1),
                _ => agg.expr.eval(input, row)?,
            };
            acc.update(value);
        }
    }

    // Global aggregate over empty input still yields one row.
    if group_by.is_empty() && order.is_empty() {
        order.push(Vec::new());
        groups.insert(Vec::new(), vec![Accumulator::default(); aggs.len()]);
    }

    let mut output = Table::empty(schema);
    for key in order {
        let state = &groups[&key];
        let mut row = key;
        for (acc, agg) in state.iter().zip(aggs) {
            row.push(acc.finish(agg.func));
        }
        output.push_row(row)?;
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::required("season", ColumnType::Str),
            Field::nullable("delay", ColumnType::Float),
        ])
        .unwrap();
        Table::from_rows(
            schema,
            vec![
                vec!["Winter".into(), 20.0.into()],
                vec!["Winter".into(), 10.0.into()],
                vec!["Summer".into(), 20.0.into()],
                vec!["Summer".into(), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn grouped_sums_and_averages() {
        let out = aggregate(
            &table(),
            &[Expr::col(0)],
            &["season"],
            &[
                AggItem::new(AggFunc::Sum, Expr::col(1), "total"),
                AggItem::new(AggFunc::Avg, Expr::col(1), "avg"),
                AggItem::new(AggFunc::Count, Expr::col(1), "n"),
                AggItem::new(AggFunc::CountAll, Expr::col(1), "rows"),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        // First-seen order: Winter then Summer.
        assert_eq!(out.value(0, 0), Value::str("Winter"));
        assert_eq!(out.value(0, 1), Value::Float(30.0));
        assert_eq!(out.value(0, 2), Value::Float(15.0));
        assert_eq!(out.value(1, 0), Value::str("Summer"));
        assert_eq!(out.value(1, 1), Value::Float(20.0));
        assert_eq!(out.value(1, 3), Value::Int(1)); // NULL not counted
        assert_eq!(out.value(1, 4), Value::Int(2)); // COUNT(*) counts all
    }

    #[test]
    fn global_aggregate_without_groups() {
        let out = aggregate(
            &table(),
            &[],
            &[],
            &[AggItem::new(AggFunc::Max, Expr::col(1), "m")],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.value(0, 0), Value::Float(20.0));
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let empty = Table::empty(table().schema().clone());
        let out = aggregate(
            &empty,
            &[],
            &[],
            &[
                AggItem::new(AggFunc::Sum, Expr::col(1), "s"),
                AggItem::new(AggFunc::Count, Expr::col(1), "n"),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.value(0, 0), Value::Null);
        assert_eq!(out.value(0, 1), Value::Int(0));
    }

    #[test]
    fn min_max_on_strings() {
        let out = aggregate(
            &table(),
            &[],
            &[],
            &[
                AggItem::new(AggFunc::Min, Expr::col(0), "lo"),
                AggItem::new(AggFunc::Max, Expr::col(0), "hi"),
            ],
        )
        .unwrap();
        assert_eq!(out.value(0, 0), Value::str("Summer"));
        assert_eq!(out.value(0, 1), Value::str("Winter"));
    }

    #[test]
    fn group_by_expression() {
        // Group by delay > 15.
        let out = aggregate(
            &table(),
            &[Expr::col(1).gt(Expr::lit(15.0))],
            &["high"],
            &[AggItem::new(AggFunc::CountAll, Expr::col(0), "n")],
        )
        .unwrap();
        // Groups: true (2 rows), false (1 row), NULL (1 row).
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn key_name_arity_checked() {
        let err = aggregate(&table(), &[Expr::col(0)], &["a", "b"], &[]).unwrap_err();
        assert!(err.to_string().contains("key names"));
    }

    #[test]
    fn null_group_keys_group_together() {
        let schema = Schema::new(vec![Field::nullable("k", ColumnType::Str)]).unwrap();
        let t = Table::from_rows(
            schema,
            vec![vec![Value::Null], vec![Value::Null], vec!["x".into()]],
        )
        .unwrap();
        let out = aggregate(
            &t,
            &[Expr::col(0)],
            &["k"],
            &[AggItem::new(AggFunc::CountAll, Expr::col(0), "n")],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let null_group = out.iter_rows().find(|r| r[0].is_null()).unwrap();
        assert_eq!(null_group[1], Value::Int(2));
    }
}
