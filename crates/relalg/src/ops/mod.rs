//! Materialized relational operators.
//!
//! Each operator consumes references to input [`Table`]s and produces a new
//! materialized `Table`. The set matches the operators in the paper's
//! pseudo-code: selection σ ([`filter`]), projection Π ([`project`]),
//! grouping/aggregation Γ ([`aggregate::aggregate`]), joins ⋊⋉
//! ([`join::hash_join`], [`join::scope_join`]) and Cartesian product ×
//! ([`cross::cross_join`]).

pub mod aggregate;
pub mod cross;
pub mod join;

use crate::error::{RelalgError, Result};
use crate::expr::Expr;
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::Value;

/// σ: keep rows where `predicate` evaluates to `true`.
///
/// NULL predicate results drop the row, as in SQL `WHERE`.
pub fn filter(input: &Table, predicate: &Expr) -> Result<Table> {
    let mut keep = Vec::new();
    for row in 0..input.len() {
        if predicate.eval(input, row)?.as_bool() == Some(true) {
            keep.push(row);
        }
    }
    input.take(&keep)
}

/// One output column of a projection.
#[derive(Debug, Clone)]
pub struct ProjectItem {
    /// Expression producing the column.
    pub expr: Expr,
    /// Output column name.
    pub name: String,
}

impl ProjectItem {
    /// Build a projection item.
    pub fn new(expr: Expr, name: impl Into<String>) -> Self {
        ProjectItem {
            expr,
            name: name.into(),
        }
    }

    /// Pass a column through unchanged, keeping its name.
    pub fn passthrough(input: &Table, column: &str) -> Result<Self> {
        let index = input.schema().index_of(column)?;
        Ok(ProjectItem {
            expr: Expr::col(index),
            name: column.to_string(),
        })
    }
}

/// Π: compute one output column per [`ProjectItem`].
pub fn project(input: &Table, items: &[ProjectItem]) -> Result<Table> {
    let mut fields = Vec::with_capacity(items.len());
    for item in items {
        fields.push(Field {
            name: item.name.clone(),
            ty: item.expr.infer_type(input.schema())?,
            nullable: item.expr.infer_nullable(input.schema()),
        });
    }
    let mut output = Table::empty(Schema::new(fields)?);
    for row in 0..input.len() {
        let mut values = Vec::with_capacity(items.len());
        for item in items {
            values.push(item.expr.eval(input, row)?);
        }
        output.push_row(values)?;
    }
    Ok(output)
}

/// Keep the first `n` rows.
pub fn limit(input: &Table, n: usize) -> Result<Table> {
    let indices: Vec<usize> = (0..input.len().min(n)).collect();
    input.take(&indices)
}

/// Remove duplicate rows (full-row DISTINCT), keeping first occurrences.
pub fn distinct(input: &Table) -> Result<Table> {
    use crate::hash::FxHashSet;
    let mut seen: FxHashSet<Vec<Value>> = FxHashSet::default();
    let mut keep = Vec::new();
    for row in 0..input.len() {
        if seen.insert(input.row(row)) {
            keep.push(row);
        }
    }
    input.take(&keep)
}

/// ORDER BY the given expressions (ascending, NULLs first).
pub fn sort(input: &Table, keys: &[Expr]) -> Result<Table> {
    let mut decorated: Vec<(Vec<Value>, usize)> = Vec::with_capacity(input.len());
    for row in 0..input.len() {
        let mut key = Vec::with_capacity(keys.len());
        for expr in keys {
            key.push(expr.eval(input, row)?);
        }
        decorated.push((key, row));
    }
    decorated.sort();
    let indices: Vec<usize> = decorated.into_iter().map(|(_, r)| r).collect();
    input.take(&indices)
}

/// UNION ALL of two tables with identical schemas.
pub fn union_all(left: &Table, right: &Table) -> Result<Table> {
    if left.schema() != right.schema() {
        return Err(RelalgError::SchemaMismatch {
            detail: format!("union: {} vs {}", left.schema(), right.schema()),
        });
    }
    let mut out = left.clone();
    out.append(right)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColumnType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::required("region", ColumnType::Str),
            Field::required("delay", ColumnType::Float),
        ])
        .unwrap();
        Table::from_rows(
            schema,
            vec![
                vec!["East".into(), 20.0.into()],
                vec!["South".into(), 10.0.into()],
                vec!["East".into(), 20.0.into()],
                vec!["North".into(), 15.0.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let t = table();
        let out = filter(&t, &Expr::col(1).gt(Expr::lit(12.0))).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter_rows().all(|r| r[1].as_f64().unwrap() > 12.0));
    }

    #[test]
    fn filter_drops_null_predicate_rows() {
        let schema = Schema::new(vec![Field::nullable("x", ColumnType::Float)]).unwrap();
        let t = Table::from_rows(schema, vec![vec![Value::Null], vec![1.0.into()]]).unwrap();
        let out = filter(&t, &Expr::col(0).gt(Expr::lit(0.0))).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn project_computes_and_names() {
        let t = table();
        let out = project(
            &t,
            &[
                ProjectItem::passthrough(&t, "region").unwrap(),
                ProjectItem::new(Expr::col(1).mul(Expr::lit(2.0)), "double_delay"),
            ],
        )
        .unwrap();
        assert_eq!(out.schema().index_of("double_delay").unwrap(), 1);
        assert_eq!(out.value(0, 1), Value::Float(40.0));
    }

    #[test]
    fn distinct_removes_duplicates() {
        let out = distinct(&table()).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn sort_orders_by_key() {
        let t = table();
        let out = sort(&t, &[Expr::col(1)]).unwrap();
        let delays: Vec<f64> = out.iter_rows().map(|r| r[1].as_f64().unwrap()).collect();
        assert_eq!(delays, vec![10.0, 15.0, 20.0, 20.0]);
    }

    #[test]
    fn limit_truncates() {
        assert_eq!(limit(&table(), 2).unwrap().len(), 2);
        assert_eq!(limit(&table(), 99).unwrap().len(), 4);
    }

    #[test]
    fn union_all_concatenates() {
        let t = table();
        let out = union_all(&t, &t).unwrap();
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn union_checks_schema() {
        let t = table();
        let other = Table::empty(Schema::empty());
        assert!(union_all(&t, &other).is_err());
    }
}
