//! Join operators: hash equi-join and the paper's "scope join".

use crate::error::{RelalgError, Result};
use crate::hash::FxHashMap;
use crate::table::Table;
use crate::value::Value;

/// Join type for [`hash_join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Keep only matching pairs.
    Inner,
    /// Keep all left rows; unmatched right side becomes NULLs.
    Left,
}

/// Hash equi-join on the given key column pairs.
///
/// The output schema is `left.schema().join(right.schema())`; duplicate
/// right-side names get a `right.` prefix. NULL keys never match (SQL
/// semantics), including NULL–NULL.
pub fn hash_join(
    left: &Table,
    right: &Table,
    keys: &[(usize, usize)],
    join_type: JoinType,
) -> Result<Table> {
    for &(l, r) in keys {
        left.column(l)?;
        right.column(r)?;
    }
    let mut schema = left.schema().join(right.schema())?;
    if join_type == JoinType::Left {
        // Unmatched left rows are padded with NULLs on the right side.
        let mut fields = schema.fields().to_vec();
        for field in fields.iter_mut().skip(left.schema().len()) {
            field.nullable = true;
        }
        schema = crate::schema::Schema::new(fields)?;
    }
    let mut output = Table::empty(schema);

    // Build side: hash the (smaller in spirit) right input.
    let mut index: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
    'rows: for row in 0..right.len() {
        let mut key = Vec::with_capacity(keys.len());
        for &(_, r) in keys {
            let v = right.value(row, r);
            if v.is_null() {
                continue 'rows; // NULL keys never match
            }
            key.push(v);
        }
        index.entry(key).or_default().push(row);
    }

    let right_width = right.schema().len();
    for lrow in 0..left.len() {
        let mut key = Vec::with_capacity(keys.len());
        let mut has_null = false;
        for &(l, _) in keys {
            let v = left.value(lrow, l);
            has_null |= v.is_null();
            key.push(v);
        }
        let matches = if has_null { None } else { index.get(&key) };
        match matches {
            Some(rrows) => {
                for &rrow in rrows {
                    let mut row = left.row(lrow);
                    row.extend(right.row(rrow));
                    output.push_row(row)?;
                }
            }
            None => {
                if join_type == JoinType::Left {
                    let mut row = left.row(lrow);
                    row.extend(std::iter::repeat_n(Value::Null, right_width));
                    output.push_row(row)?;
                }
            }
        }
    }
    Ok(output)
}

/// The paper's join condition `M`: a *fact* row matches a *data* row when,
/// for every dimension pair, the fact value is NULL (unrestricted) or equal
/// to the data value.
///
/// `dims` maps fact-side column indexes to data-side column indexes.
///
/// Implementation: facts are bucketed by their restriction mask (which dims
/// are non-NULL); each data row then probes one hash bucket per distinct
/// mask instead of scanning all facts — `O(n · #masks)` rather than
/// `O(n · k)`. With facts restricted to at most two dimensions the number of
/// masks is small (1 + d + d²/2), which is what makes the paper's
/// per-iteration joins affordable.
pub fn scope_join(facts: &Table, data: &Table, dims: &[(usize, usize)]) -> Result<Table> {
    for &(f, d) in dims {
        facts.column(f)?;
        data.column(d)?;
    }
    if dims.len() > 63 {
        return Err(RelalgError::Invalid {
            detail: format!(
                "scope_join supports at most 63 dimensions, got {}",
                dims.len()
            ),
        });
    }
    let schema = facts.schema().join(data.schema())?;
    let mut output = Table::empty(schema);

    // Bucket facts by (mask, restricted values).
    let mut buckets: FxHashMap<(u64, Vec<Value>), Vec<usize>> = FxHashMap::default();
    let mut masks: Vec<u64> = Vec::new();
    for frow in 0..facts.len() {
        let mut mask = 0u64;
        let mut key = Vec::new();
        for (bit, &(f, _)) in dims.iter().enumerate() {
            let v = facts.value(frow, f);
            if !v.is_null() {
                mask |= 1 << bit;
                key.push(v);
            }
        }
        if !masks.contains(&mask) {
            masks.push(mask);
        }
        buckets.entry((mask, key)).or_default().push(frow);
    }

    for drow in 0..data.len() {
        let dim_values: Vec<Value> = dims.iter().map(|&(_, d)| data.value(drow, d)).collect();
        for &mask in &masks {
            let mut key = Vec::new();
            let mut null_blocked = false;
            for (bit, v) in dim_values.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    if v.is_null() {
                        // A NULL data value cannot satisfy F.d = R.d.
                        null_blocked = true;
                        break;
                    }
                    key.push(v.clone());
                }
            }
            if null_blocked {
                continue;
            }
            if let Some(frows) = buckets.get(&(mask, key)) {
                for &frow in frows {
                    let mut row = facts.row(frow);
                    row.extend(data.row(drow));
                    output.push_row(row)?;
                }
            }
        }
    }
    Ok(output)
}

/// Reference nested-loop implementation of the scope join, used by tests
/// and the ablation benches to validate and compare `scope_join`.
pub fn scope_join_nested_loop(
    facts: &Table,
    data: &Table,
    dims: &[(usize, usize)],
) -> Result<Table> {
    let schema = facts.schema().join(data.schema())?;
    let mut output = Table::empty(schema);
    for frow in 0..facts.len() {
        for drow in 0..data.len() {
            let mut within = true;
            for &(f, d) in dims {
                let fv = facts.value(frow, f);
                if fv.is_null() {
                    continue;
                }
                let dv = data.value(drow, d);
                if dv.is_null() || fv != dv {
                    within = false;
                    break;
                }
            }
            if within {
                let mut row = facts.row(frow);
                row.extend(data.row(drow));
                output.push_row(row)?;
            }
        }
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::ColumnType;

    fn data() -> Table {
        let schema = Schema::new(vec![
            Field::required("region", ColumnType::Str),
            Field::required("season", ColumnType::Str),
            Field::required("delay", ColumnType::Float),
        ])
        .unwrap();
        Table::from_rows(
            schema,
            vec![
                vec!["East".into(), "Winter".into(), 20.0.into()],
                vec!["South".into(), "Winter".into(), 10.0.into()],
                vec!["South".into(), "Summer".into(), 20.0.into()],
                vec!["North".into(), "Spring".into(), 20.0.into()],
            ],
        )
        .unwrap()
    }

    fn facts() -> Table {
        // Facts: (region?, season?, value). NULL = unrestricted.
        let schema = Schema::new(vec![
            Field::nullable("f_region", ColumnType::Str),
            Field::nullable("f_season", ColumnType::Str),
            Field::required("value", ColumnType::Float),
        ])
        .unwrap();
        Table::from_rows(
            schema,
            vec![
                vec![Value::Null, "Winter".into(), 15.0.into()],
                vec!["South".into(), Value::Null, 15.0.into()],
                vec!["South".into(), "Summer".into(), 20.0.into()],
                vec![Value::Null, Value::Null, 17.5.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn hash_join_inner() {
        let left = data();
        let right = data();
        let out = hash_join(&left, &right, &[(0, 0)], JoinType::Inner).unwrap();
        // East:1×1, South:2×2, North:1×1 = 6 pairs.
        assert_eq!(out.len(), 6);
        assert_eq!(out.schema().len(), 6);
        assert!(out.schema().index_of("right.region").is_ok());
    }

    #[test]
    fn hash_join_left_pads_with_null() {
        let left = data();
        let right_schema = Schema::new(vec![
            Field::required("region", ColumnType::Str),
            Field::required("bonus", ColumnType::Int),
        ])
        .unwrap();
        let right = Table::from_rows(right_schema, vec![vec!["East".into(), 1.into()]]).unwrap();
        let out = hash_join(&left, &right, &[(0, 0)], JoinType::Left).unwrap();
        assert_eq!(out.len(), 4);
        let east_row = out
            .iter_rows()
            .find(|r| r[0] == Value::str("East"))
            .unwrap();
        assert_eq!(east_row[4], Value::Int(1));
        let south_row = out
            .iter_rows()
            .find(|r| r[0] == Value::str("South"))
            .unwrap();
        assert_eq!(south_row[4], Value::Null);
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let schema = Schema::new(vec![Field::nullable("k", ColumnType::Int)]).unwrap();
        let left = Table::from_rows(schema.clone(), vec![vec![Value::Null]]).unwrap();
        let right = Table::from_rows(schema, vec![vec![Value::Null]]).unwrap();
        let inner = hash_join(&left, &right, &[(0, 0)], JoinType::Inner).unwrap();
        assert_eq!(inner.len(), 0);
        let left_join = hash_join(&left, &right, &[(0, 0)], JoinType::Left).unwrap();
        assert_eq!(left_join.len(), 1);
    }

    #[test]
    fn scope_join_matches_by_subset() {
        let out = scope_join(&facts(), &data(), &[(0, 0), (1, 1)]).unwrap();
        // Winter fact matches 2 rows, South fact matches 2 rows,
        // South+Summer matches 1, unrestricted matches 4 → 9 pairs.
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn scope_join_equals_nested_loop() {
        let fast = scope_join(&facts(), &data(), &[(0, 0), (1, 1)]).unwrap();
        let slow = scope_join_nested_loop(&facts(), &data(), &[(0, 0), (1, 1)]).unwrap();
        assert_eq!(fast.len(), slow.len());
        let mut fast_rows: Vec<Vec<Value>> = fast.iter_rows().collect();
        let mut slow_rows: Vec<Vec<Value>> = slow.iter_rows().collect();
        fast_rows.sort();
        slow_rows.sort();
        assert_eq!(fast_rows, slow_rows);
    }

    #[test]
    fn scope_join_empty_facts() {
        let empty = Table::empty(facts().schema().clone());
        let out = scope_join(&empty, &data(), &[(0, 0), (1, 1)]).unwrap();
        assert_eq!(out.len(), 0);
    }

    #[test]
    fn scope_join_rejects_too_many_dims() {
        let dims: Vec<(usize, usize)> = (0..64).map(|i| (i, i)).collect();
        assert!(scope_join(&facts(), &data(), &dims).is_err());
    }

    #[test]
    fn join_checks_column_bounds() {
        assert!(hash_join(&data(), &data(), &[(9, 0)], JoinType::Inner).is_err());
        assert!(scope_join(&facts(), &data(), &[(9, 0)]).is_err());
    }
}
