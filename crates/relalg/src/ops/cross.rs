//! Cartesian product (the × operator of Algorithm 1's speech expansion).

use crate::error::Result;
use crate::table::Table;

/// ×: every left row paired with every right row.
///
/// Algorithm 1 uses this to expand partial speeches by every candidate
/// fact; the subsequent pruning filter keeps the blow-up in check.
pub fn cross_join(left: &Table, right: &Table) -> Result<Table> {
    let schema = left.schema().join(right.schema())?;
    let mut output = Table::empty(schema);
    for lrow in 0..left.len() {
        for rrow in 0..right.len() {
            let mut row = left.row(lrow);
            row.extend(right.row(rrow));
            output.push_row(row)?;
        }
    }
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::{ColumnType, Value};

    fn small(name: &str, values: &[i64]) -> Table {
        let schema = Schema::new(vec![Field::required(name, ColumnType::Int)]).unwrap();
        Table::from_rows(schema, values.iter().map(|&v| vec![Value::Int(v)])).unwrap()
    }

    #[test]
    fn product_size() {
        let out = cross_join(&small("a", &[1, 2, 3]), &small("b", &[10, 20])).unwrap();
        assert_eq!(out.len(), 6);
        assert_eq!(out.schema().len(), 2);
    }

    #[test]
    fn pairs_every_combination() {
        let out = cross_join(&small("a", &[1, 2]), &small("b", &[10, 20])).unwrap();
        let rows: Vec<(i64, i64)> = out
            .iter_rows()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        assert_eq!(rows, vec![(1, 10), (1, 20), (2, 10), (2, 20)]);
    }

    #[test]
    fn empty_side_yields_empty() {
        let out = cross_join(&small("a", &[]), &small("b", &[1])).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn name_collision_renamed() {
        let out = cross_join(&small("a", &[1]), &small("a", &[2])).unwrap();
        assert!(out.schema().index_of("right.a").is_ok());
    }
}
