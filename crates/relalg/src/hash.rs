//! A fast, non-cryptographic hasher for internal hash maps.
//!
//! The engine hashes short keys (dictionary codes, column indexes, small
//! value tuples) on the hot path of joins and aggregations. SipHash — the
//! standard-library default — is noticeably slower for such keys, so we
//! bundle the well-known Fx multiply-rotate hash (as popularised by rustc
//! and Firefox) rather than pull in an external dependency. HashDoS
//! resistance is irrelevant here: all hashed data is produced by the local
//! process.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant of the Fx hash (64-bit golden-ratio mix).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation applied between words.
const ROTATE: u32 = 5;

/// Fx hasher: one multiply and one rotate per ingested word.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"south"), hash_of(&"south"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
        assert_ne!(hash_of(&"winter"), hash_of(&"winters"));
    }

    #[test]
    fn works_as_map_hasher() {
        let mut map: FxHashMap<(u32, u32), usize> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert((i, i * 7), i as usize);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map[&(13, 91)], 13);
    }

    #[test]
    fn odd_length_byte_strings_differ_from_padded() {
        // A trailing zero byte must not collide with the unpadded string.
        assert_ne!(hash_of(&[1u8, 2, 3][..]), hash_of(&[1u8, 2, 3, 0][..]));
    }

    #[test]
    fn spreads_low_entropy_keys() {
        // Sequential integers should not collide in the low bits too badly:
        // count distinct low-16-bit buckets across 4096 sequential keys.
        let mut buckets = FxHashSet::default();
        for i in 0..4096u64 {
            buckets.insert(hash_of(&i) & 0xffff);
        }
        assert!(
            buckets.len() > 3000,
            "only {} distinct buckets",
            buckets.len()
        );
    }
}
