//! Table statistics, the input to the cost model.
//!
//! The paper's pruning optimizer (§VI-C) estimates the number of facts in a
//! fact group "by referring to query optimizer statistics. The number of
//! facts simply equals the number of distinct value combinations in the
//! dimension columns they restrict." These statistics are what this module
//! computes: exact per-column distinct counts plus an estimator for the
//! distinct count of column *combinations*.

use crate::error::Result;
use crate::hash::FxHashSet;
use crate::table::Table;
use crate::value::Value;

/// Statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Exact number of distinct non-NULL values.
    pub distinct: usize,
    /// Number of NULLs.
    pub nulls: usize,
    /// Minimum numeric value, when the column is numeric.
    pub min: Option<f64>,
    /// Maximum numeric value, when the column is numeric.
    pub max: Option<f64>,
}

/// Statistics of a whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Row count.
    pub rows: usize,
    /// Per-column statistics in schema order.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Compute exact statistics for `table` in one pass per column.
    pub fn compute(table: &Table) -> Result<Self> {
        let mut columns = Vec::with_capacity(table.schema().len());
        for col in 0..table.schema().len() {
            let mut distinct: FxHashSet<Value> = FxHashSet::default();
            let mut nulls = 0usize;
            let mut min: Option<f64> = None;
            let mut max: Option<f64> = None;
            for row in 0..table.len() {
                let value = table.value(row, col);
                if value.is_null() {
                    nulls += 1;
                    continue;
                }
                if let Some(v) = value.as_f64() {
                    min = Some(min.map_or(v, |m| m.min(v)));
                    max = Some(max.map_or(v, |m| m.max(v)));
                }
                distinct.insert(value);
            }
            columns.push(ColumnStats {
                distinct: distinct.len(),
                nulls,
                min,
                max,
            });
        }
        Ok(TableStats {
            rows: table.len(),
            columns,
        })
    }

    /// Exact distinct count of the value combinations in `cols`.
    ///
    /// Fact-group sizes `M(g)` in the paper are exactly this quantity; we
    /// compute it exactly because the tables fit in memory.
    pub fn distinct_combinations(table: &Table, cols: &[usize]) -> Result<usize> {
        let mut distinct: FxHashSet<Vec<Value>> = FxHashSet::default();
        for row in 0..table.len() {
            let combo: Vec<Value> = cols.iter().map(|&c| table.value(row, c)).collect();
            distinct.insert(combo);
        }
        Ok(distinct.len())
    }

    /// Estimate the distinct count of a column combination from per-column
    /// statistics alone (no data pass): the product of per-column distinct
    /// counts, capped by the row count.
    ///
    /// This is the classic independence assumption; the pruning optimizer
    /// uses it when a fresh data pass would defeat the purpose of pruning.
    pub fn estimate_combinations(&self, cols: &[usize]) -> usize {
        let mut product: usize = 1;
        for &col in cols {
            let distinct = self
                .columns
                .get(col)
                .map(|c| c.distinct.max(1))
                .unwrap_or(1);
            product = product.saturating_mul(distinct);
            if product >= self.rows {
                return self.rows.max(1);
            }
        }
        product.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::ColumnType;

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::required("region", ColumnType::Str),
            Field::nullable("season", ColumnType::Str),
            Field::required("delay", ColumnType::Float),
        ])
        .unwrap();
        Table::from_rows(
            schema,
            vec![
                vec!["East".into(), "Winter".into(), 20.0.into()],
                vec!["South".into(), "Winter".into(), 10.0.into()],
                vec!["South".into(), Value::Null, 5.0.into()],
                vec!["East".into(), "Summer".into(), 20.0.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn per_column_stats() {
        let stats = TableStats::compute(&table()).unwrap();
        assert_eq!(stats.rows, 4);
        assert_eq!(stats.columns[0].distinct, 2);
        assert_eq!(stats.columns[1].distinct, 2);
        assert_eq!(stats.columns[1].nulls, 1);
        assert_eq!(stats.columns[2].min, Some(5.0));
        assert_eq!(stats.columns[2].max, Some(20.0));
        assert_eq!(stats.columns[0].min, None);
    }

    #[test]
    fn exact_combinations() {
        let t = table();
        assert_eq!(TableStats::distinct_combinations(&t, &[0]).unwrap(), 2);
        // (East,Winter), (South,Winter), (South,NULL), (East,Summer).
        assert_eq!(TableStats::distinct_combinations(&t, &[0, 1]).unwrap(), 4);
        // Empty combination: a single global group.
        assert_eq!(TableStats::distinct_combinations(&t, &[]).unwrap(), 1);
    }

    #[test]
    fn estimated_combinations_capped_by_rows() {
        let stats = TableStats::compute(&table()).unwrap();
        assert_eq!(stats.estimate_combinations(&[0]), 2);
        assert_eq!(stats.estimate_combinations(&[0, 1]), 4); // 2*2, == rows cap
        assert_eq!(stats.estimate_combinations(&[]), 1);
    }
}
