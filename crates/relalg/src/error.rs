//! Error type shared by all engine operations.

use std::fmt;

/// Errors raised by the relational engine.
///
/// The engine is strict: schema and type problems are reported as errors
/// instead of being silently coerced, which keeps the summarization
/// algorithms honest about the plans they build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelalgError {
    /// A referenced column does not exist in the input schema.
    ColumnNotFound {
        /// Name or index description of the missing column.
        column: String,
    },
    /// An expression was applied to values of an unsupported type.
    TypeMismatch {
        /// Human-readable description of the offending operation.
        operation: String,
        /// The type actually encountered.
        found: String,
    },
    /// Two tables were combined with incompatible schemas.
    SchemaMismatch {
        /// Description of the mismatch.
        detail: String,
    },
    /// A row was constructed with the wrong number of values.
    ArityMismatch {
        /// Expected number of columns.
        expected: usize,
        /// Provided number of values.
        found: usize,
    },
    /// Division by zero inside an expression.
    DivisionByZero,
    /// Malformed CSV input.
    Csv {
        /// 1-based line number of the offending record.
        line: usize,
        /// Description of the problem.
        detail: String,
    },
    /// Any other invariant violation.
    Invalid {
        /// Description of the problem.
        detail: String,
    },
}

impl fmt::Display for RelalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelalgError::ColumnNotFound { column } => {
                write!(f, "column not found: {column}")
            }
            RelalgError::TypeMismatch { operation, found } => {
                write!(f, "type mismatch in {operation}: found {found}")
            }
            RelalgError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            RelalgError::ArityMismatch { expected, found } => {
                write!(
                    f,
                    "row arity mismatch: expected {expected} values, got {found}"
                )
            }
            RelalgError::DivisionByZero => write!(f, "division by zero"),
            RelalgError::Csv { line, detail } => write!(f, "csv error at line {line}: {detail}"),
            RelalgError::Invalid { detail } => write!(f, "invalid operation: {detail}"),
        }
    }
}

impl std::error::Error for RelalgError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, RelalgError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = RelalgError::ColumnNotFound {
            column: "delay".into(),
        };
        assert!(err.to_string().contains("delay"));
        let err = RelalgError::ArityMismatch {
            expected: 3,
            found: 2,
        };
        assert!(err.to_string().contains('3'));
        assert!(err.to_string().contains('2'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RelalgError::DivisionByZero, RelalgError::DivisionByZero);
        assert_ne!(
            RelalgError::DivisionByZero,
            RelalgError::Invalid { detail: "x".into() }
        );
    }
}
