//! Property-based tests of the relational engine's invariants.

use proptest::prelude::*;

use vqs_relalg::csv::{read_csv, write_csv};
use vqs_relalg::ops::aggregate::{aggregate, AggFunc, AggItem};
use vqs_relalg::ops::join::{hash_join, scope_join, scope_join_nested_loop, JoinType};
use vqs_relalg::ops::{distinct, filter, sort};
use vqs_relalg::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1000.0f64..1000.0).prop_map(|f| Value::Float((f * 4.0).round() / 4.0)),
        "[a-z]{0,6}".prop_map(Value::str),
    ]
}

fn arb_table() -> impl Strategy<Value = Table> {
    prop::collection::vec((0u8..4, -50i64..50, 0.0f64..100.0, "[a-c]{1,2}"), 0..40).prop_map(
        |rows| {
            let schema = Schema::new(vec![
                Field::required("k", ColumnType::Int),
                Field::required("v", ColumnType::Float),
                Field::nullable("s", ColumnType::Str),
            ])
            .unwrap();
            Table::from_rows(
                schema,
                rows.into_iter().map(|(kind, k, v, s)| {
                    vec![
                        Value::Int(k % 5),
                        Value::Float(v.round()),
                        if kind == 0 {
                            Value::Null
                        } else {
                            Value::str(&s)
                        },
                    ]
                }),
            )
            .unwrap()
        },
    )
}

proptest! {
    #[test]
    fn value_ordering_is_total_and_consistent(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(b.cmp(&a), Ordering::Equal),
        }
        // Transitivity.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        // Hash consistency: equal values hash equal.
        if a == b {
            use std::hash::{Hash, Hasher};
            let h = |v: &Value| {
                let mut hasher = vqs_relalg::hash::FxHasher::default();
                v.hash(&mut hasher);
                hasher.finish()
            };
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    #[test]
    fn csv_roundtrip(table in arb_table()) {
        let mut buffer = Vec::new();
        write_csv(&table, &mut buffer).unwrap();
        let parsed = read_csv(buffer.as_slice(), table.schema().clone()).unwrap();
        prop_assert_eq!(parsed.len(), table.len());
        for (a, b) in table.iter_rows().zip(parsed.iter_rows()) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn filter_partitions_rows(table in arb_table(), threshold in 0.0f64..100.0) {
        let predicate = Expr::col(1).ge(Expr::lit(threshold));
        let kept = filter(&table, &predicate).unwrap();
        let dropped = filter(&table, &predicate.clone().not()).unwrap();
        prop_assert_eq!(kept.len() + dropped.len(), table.len());
        for row in kept.iter_rows() {
            prop_assert!(row[1].as_f64().unwrap() >= threshold);
        }
    }

    #[test]
    fn sort_is_permutation_and_ordered(table in arb_table()) {
        let sorted = sort(&table, &[Expr::col(1)]).unwrap();
        prop_assert_eq!(sorted.len(), table.len());
        let mut previous = f64::NEG_INFINITY;
        for row in sorted.iter_rows() {
            let v = row[1].as_f64().unwrap();
            prop_assert!(v >= previous);
            previous = v;
        }
        let mut a: Vec<String> = table.iter_rows().map(|r| format!("{r:?}")).collect();
        let mut b: Vec<String> = sorted.iter_rows().map(|r| format!("{r:?}")).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn distinct_is_idempotent(table in arb_table()) {
        let once = distinct(&table).unwrap();
        let twice = distinct(&once).unwrap();
        prop_assert_eq!(once.len(), twice.len());
        prop_assert!(once.len() <= table.len());
    }

    #[test]
    fn grouped_counts_sum_to_row_count(table in arb_table()) {
        let grouped = aggregate(
            &table,
            &[Expr::col(0)],
            &["k"],
            &[AggItem::new(AggFunc::CountAll, Expr::col(0), "n")],
        )
        .unwrap();
        let total: i64 = grouped.iter_rows().map(|r| r[1].as_i64().unwrap()).sum();
        prop_assert_eq!(total as usize, table.len());
    }

    #[test]
    fn hash_join_matches_filtered_cross_product(left in arb_table(), right in arb_table()) {
        let joined = hash_join(&left, &right, &[(0, 0)], JoinType::Inner).unwrap();
        // Expected size: Σ over keys of count_left(k)·count_right(k).
        let histogram = |t: &Table| {
            let mut map = std::collections::HashMap::new();
            for row in t.iter_rows() {
                *map.entry(row[0].clone()).or_insert(0usize) += 1;
            }
            map
        };
        let lh = histogram(&left);
        let rh = histogram(&right);
        let expected: usize = lh
            .iter()
            .map(|(k, lc)| lc * rh.get(k).copied().unwrap_or(0))
            .sum();
        prop_assert_eq!(joined.len(), expected);
    }

    #[test]
    fn scope_join_strategies_agree(facts_rows in prop::collection::vec((0u8..3, 0u8..3, 0.0f64..10.0), 0..12),
                                   data_rows in prop::collection::vec((0u8..3, 0u8..3, 0.0f64..10.0), 0..20)) {
        let fact_schema = Schema::new(vec![
            Field::nullable("a", ColumnType::Str),
            Field::nullable("b", ColumnType::Str),
            Field::required("v", ColumnType::Float),
        ])
        .unwrap();
        let data_schema = Schema::new(vec![
            Field::required("a", ColumnType::Str),
            Field::required("b", ColumnType::Str),
            Field::required("y", ColumnType::Float),
        ])
        .unwrap();
        // Encode code 0 as NULL on the fact side (unrestricted dimension).
        let facts = Table::from_rows(
            fact_schema,
            facts_rows.into_iter().map(|(a, b, v)| {
                let encode = |c: u8| {
                    if c == 0 { Value::Null } else { Value::str(format!("x{c}")) }
                };
                vec![encode(a), encode(b), Value::Float(v)]
            }),
        )
        .unwrap();
        let data = Table::from_rows(
            data_schema,
            data_rows.into_iter().map(|(a, b, y)| {
                vec![
                    Value::str(format!("x{}", a.max(1))),
                    Value::str(format!("x{}", b.max(1))),
                    Value::Float(y),
                ]
            }),
        )
        .unwrap();
        let fast = scope_join(&facts, &data, &[(0, 0), (1, 1)]).unwrap();
        let slow = scope_join_nested_loop(&facts, &data, &[(0, 0), (1, 1)]).unwrap();
        let canon = |t: &Table| {
            let mut rows: Vec<String> = t.iter_rows().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        };
        prop_assert_eq!(canon(&fast), canon(&slow));
    }

    #[test]
    fn aggregate_avg_between_min_and_max(table in arb_table()) {
        prop_assume!(!table.is_empty());
        let out = aggregate(
            &table,
            &[],
            &[],
            &[
                AggItem::new(AggFunc::Min, Expr::col(1), "lo"),
                AggItem::new(AggFunc::Avg, Expr::col(1), "avg"),
                AggItem::new(AggFunc::Max, Expr::col(1), "hi"),
            ],
        )
        .unwrap();
        let row = out.row(0);
        let (lo, avg, hi) = (
            row[0].as_f64().unwrap(),
            row[1].as_f64().unwrap(),
            row[2].as_f64().unwrap(),
        );
        prop_assert!(lo <= avg + 1e-9 && avg <= hi + 1e-9);
    }
}
