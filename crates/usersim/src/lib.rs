//! # vqs-usersim — simulated users for the paper's studies
//!
//! §VIII-C/§VIII-E evaluate the approach on ~3,000 Amazon Mechanical Turk
//! HITs and a 10-participant Zoom study. Humans being unavailable to a
//! library build, this crate simulates them: [`worker::WorkerPool`] forms
//! estimates under the closest-relevant-value model (the model Fig. 7
//! found to fit real workers) plus noise, and [`ratings::Rater`] scores
//! speeches on the Fig. 5/11 adjectives with sensitivities to quality,
//! value ranges, redundancy and verbosity. [`studies`] packages the five
//! study procedures (Figs. 5, 6, 7, 8, 11 and the ML comparison).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ratings;
pub mod studies;
pub mod worker;

pub use ratings::{Adjective, Rater, SpeechProfile};
pub use studies::{
    compare_profiles, estimate_error, fig5, fig6, fig7, fig8, rank_random_speeches, Fig11Row,
    Fig5Cell, Fig6Row, Fig7Row, Fig8Point, RankedSpeech,
};
pub use worker::{median, WorkerPool};
