//! The user-study harnesses of §VIII-C/§VIII-E (Figs. 5–8 and 11).
//!
//! Each function reproduces one study's procedure — speech selection,
//! HIT structure, aggregation — over simulated workers and returns the
//! rows/series the paper plots. The experiment binary in `vqs-bench`
//! prints them next to the paper's reported values.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use vqs_core::prelude::*;
use vqs_data::synth::gaussian;

use crate::ratings::{Adjective, Rater, SpeechProfile};
use crate::worker::{median, WorkerPool};

/// A speech with its quality rank, as selected for the Fig. 5 study.
#[derive(Debug, Clone)]
pub struct RankedSpeech {
    /// "Worst", "Medium" or "Best".
    pub label: &'static str,
    /// The facts of the speech.
    pub facts: Vec<Fact>,
    /// Scaled utility under the paper's quality model.
    pub quality: f64,
}

/// Generate `count` random speeches of `m` facts, rank them by the
/// quality model, and return (worst, median, best) — the §VIII-C
/// selection procedure ("we generated 100 speeches by randomly selecting
/// facts and ranked them according to our quality model").
pub fn rank_random_speeches(
    relation: &EncodedRelation,
    catalog: &FactCatalog,
    m: usize,
    count: usize,
    seed: u64,
) -> [RankedSpeech; 3] {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = base_error(relation).max(f64::EPSILON);
    let mut speeches: Vec<(Vec<Fact>, f64)> = (0..count)
        .map(|_| {
            let mut ids: Vec<usize> = (0..catalog.len()).collect();
            ids.shuffle(&mut rng);
            let facts: Vec<Fact> = ids
                .into_iter()
                .take(m)
                .map(|id| catalog.fact(id).clone())
                .collect();
            let quality = utility(relation, &facts) / base;
            (facts, quality)
        })
        .collect();
    speeches.sort_by(|a, b| a.1.total_cmp(&b.1));
    let pick = |label, index: usize| {
        let (facts, quality) = speeches[index].clone();
        RankedSpeech {
            label,
            facts,
            quality,
        }
    };
    [
        pick("Worst", 0),
        pick("Medium", speeches.len() / 2),
        pick("Best", speeches.len() - 1),
    ]
}

/// One Fig. 5 output cell: adjective × speech → (average rating, wins).
#[derive(Debug, Clone)]
pub struct Fig5Cell {
    /// Adjective label.
    pub adjective: &'static str,
    /// Speech label (Worst/Medium/Best).
    pub speech: &'static str,
    /// Average rating over all workers (1–10).
    pub rating: f64,
    /// Pairwise comparison wins against the other two speeches.
    pub wins: usize,
}

/// Fig. 5: ratings + pairwise wins of worst/median/best speeches across
/// the four adjectives, `workers` raters each.
pub fn fig5(speeches: &[RankedSpeech; 3], workers: usize, seed: u64) -> Vec<Fig5Cell> {
    let rater = Rater::seeded(seed);
    let profiles: Vec<SpeechProfile> = speeches
        .iter()
        .map(|s| SpeechProfile::precise(s.quality, 12 * s.facts.len().max(1)))
        .collect();
    let mut cells = Vec::new();
    for adjective in Adjective::FIG5 {
        for (i, speech) in speeches.iter().enumerate() {
            let rating = rater.average_rating(&profiles[i], adjective, workers);
            let wins: usize = (0..3)
                .filter(|&j| j != i)
                .map(|j| rater.wins(&profiles[i], &profiles[j], adjective, workers / 2))
                .sum();
            cells.push(Fig5Cell {
                adjective: adjective.label(),
                speech: speech.label,
                rating,
                wins,
            });
        }
    }
    cells
}

/// One Fig. 6 row: a (borough, age group) data point with the median
/// worker estimate under the worst and best speech, and the true value.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Dimension values of the data point.
    pub point: Vec<String>,
    /// Median estimate after the worst-ranked speech.
    pub worst_estimate: f64,
    /// Median estimate after the best-ranked speech.
    pub best_estimate: f64,
    /// Actual value.
    pub correct: f64,
}

/// Fig. 6: workers estimate every row of `relation` (15 borough × age
/// points in the paper) after hearing the worst / best speech; 20 HITs
/// per (point, speech).
pub fn fig6(
    relation: &EncodedRelation,
    worst: &[Fact],
    best: &[Fact],
    hits: usize,
    seed: u64,
) -> Vec<Fig6Row> {
    let pool = WorkerPool::seeded(seed);
    let priors = relation.prior_values();
    (0..relation.len())
        .map(|row| {
            let point: Vec<String> = (0..relation.dim_count())
                .map(|d| relation.value_str(d, row).to_string())
                .collect();
            Fig6Row {
                point,
                worst_estimate: pool.median_estimate(relation, row, worst, priors[row], hits),
                best_estimate: pool.median_estimate(relation, row, best, priors[row], hits),
                correct: relation.target(row),
            }
        })
        .collect()
}

/// Fig. 6 summary statistic: mean absolute deviation of the median
/// estimates from the correct values.
pub fn estimate_error(rows: &[Fig6Row], best: bool) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter()
        .map(|r| {
            let estimate = if best {
                r.best_estimate
            } else {
                r.worst_estimate
            };
            (estimate - r.correct).abs()
        })
        .sum::<f64>()
        / rows.len() as f64
}

/// One Fig. 7 row: a candidate conflict-resolution model and its median
/// prediction error against the (simulated) workers.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Model label ("Farthest", "Avg. Scope", "Closest", "Avg. All").
    pub model: &'static str,
    /// Median |worker estimate − model prediction| over all HITs.
    pub error: f64,
}

/// Fig. 7: workers hear four facts over two dimensions and estimate every
/// value combination; each candidate model's predictions are compared to
/// the worker estimates.
pub fn fig7(relation: &EncodedRelation, facts: &[Fact], hits: usize, seed: u64) -> Vec<Fig7Row> {
    let pool = WorkerPool::seeded(seed);
    let priors = relation.prior_values();
    ExpectationModel::ALL
        .iter()
        .map(|model| {
            let mut errors = Vec::new();
            for (row, &prior) in priors.iter().enumerate() {
                let prediction =
                    model.expected_value(relation, row, facts, prior, relation.target(row));
                for hit in 0..hits {
                    let estimate = pool.estimate(relation, row, facts, prior, hit as u64);
                    errors.push((estimate - prediction).abs());
                }
            }
            Fig7Row {
                model: model.label(),
                error: median(&mut errors),
            }
        })
        .collect()
}

/// One participant of the Fig. 8 interface study.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Participant index.
    pub participant: usize,
    /// Median time to answer with the voice interface (seconds).
    pub vocal_time: f64,
    /// Median time with the visual interface (seconds).
    pub visual_time: f64,
    /// Usability rating of the voice interface (1–10).
    pub vocal_eval: f64,
    /// Usability rating of the visual interface (1–10).
    pub visual_eval: f64,
}

/// Fig. 8: `participants` users answer three questions per interface.
///
/// Interaction time model: voice = formulate + lookup + listen; visual =
/// a few navigate/filter interactions + read. Calibrated so most (not
/// all) participants are slightly faster with voice and evaluations
/// scatter in the upper half — the paper's qualitative outcome.
pub fn fig8(participants: usize, answer_speaking_secs: f64, seed: u64) -> Vec<Fig8Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..participants)
        .map(|participant| {
            let questions = 3;
            let mut vocal_times = Vec::with_capacity(questions);
            let mut visual_times = Vec::with_capacity(questions);
            for _ in 0..questions {
                let formulate = 5.0 + gaussian(&mut rng).abs() * 2.0;
                let listen = answer_speaking_secs * rng.gen_range(0.9..1.2);
                vocal_times.push(formulate + 0.1 + listen);
                let interactions = rng.gen_range(3..6);
                let navigate: f64 = (0..interactions).map(|_| rng.gen_range(3.0..8.0)).sum();
                let read = 3.0 + gaussian(&mut rng).abs() * 1.5;
                visual_times.push(navigate + read);
            }
            let vocal_eval = (5.5 + gaussian(&mut rng) * 1.6).clamp(1.0, 10.0);
            let visual_eval = (6.5 + gaussian(&mut rng) * 1.6).clamp(1.0, 10.0);
            Fig8Point {
                participant,
                vocal_time: median(&mut vocal_times),
                visual_time: median(&mut visual_times),
                vocal_eval,
                visual_eval,
            }
        })
        .collect()
}

/// One Fig. 11 row: adjective × system → rating and pairwise wins.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Adjective label.
    pub adjective: &'static str,
    /// Average rating of our (pre-processed, precise) speech.
    pub ours_rating: f64,
    /// Average rating of the sampling baseline's (range) speech.
    pub baseline_rating: f64,
    /// Pairwise wins of ours over the baseline.
    pub ours_wins: usize,
    /// Pairwise wins of the baseline over ours.
    pub baseline_wins: usize,
}

/// Fig. 11 / §VIII-E ML comparison: rate two speech profiles on the six
/// adjectives with `workers` raters each.
pub fn compare_profiles(
    ours: &SpeechProfile,
    other: &SpeechProfile,
    workers: usize,
    seed: u64,
) -> Vec<Fig11Row> {
    let rater = Rater::seeded(seed);
    Adjective::FIG11
        .iter()
        .map(|&adjective| {
            let ours_wins = rater.wins(ours, other, adjective, workers);
            Fig11Row {
                adjective: adjective.label(),
                ours_rating: rater.average_rating(ours, adjective, workers),
                baseline_rating: rater.average_rating(other, adjective, workers),
                ours_wins,
                baseline_wins: workers - ours_wins,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqs_data::running_example;

    fn setup() -> (EncodedRelation, FactCatalog) {
        let r = running_example::relation();
        let catalog = running_example::example7_catalog(&r);
        (r, catalog)
    }

    #[test]
    fn ranking_orders_by_quality() {
        let (r, catalog) = setup();
        let [worst, medium, best] = rank_random_speeches(&r, &catalog, 3, 100, 1);
        assert!(worst.quality <= medium.quality);
        assert!(medium.quality <= best.quality);
        assert!(best.quality > worst.quality);
    }

    #[test]
    fn fig5_ratings_correlate_with_rank() {
        let (r, catalog) = setup();
        let speeches = rank_random_speeches(&r, &catalog, 3, 100, 2);
        let cells = fig5(&speeches, 50, 3);
        assert_eq!(cells.len(), 12);
        for adjective in ["Precise", "Good", "Complete", "Informative"] {
            let get = |label: &str| {
                cells
                    .iter()
                    .find(|c| c.adjective == adjective && c.speech == label)
                    .unwrap()
            };
            assert!(
                get("Best").rating > get("Worst").rating,
                "{adjective}: best {} vs worst {}",
                get("Best").rating,
                get("Worst").rating
            );
            assert!(get("Best").wins > get("Worst").wins, "{adjective}");
        }
    }

    #[test]
    fn fig6_best_speech_tracks_truth_better() {
        let (r, catalog) = setup();
        let speeches = rank_random_speeches(&r, &catalog, 3, 100, 4);
        let rows = fig6(&r, &speeches[0].facts, &speeches[2].facts, 20, 5);
        assert_eq!(rows.len(), r.len());
        assert!(estimate_error(&rows, true) < estimate_error(&rows, false));
    }

    #[test]
    fn fig7_closest_model_wins() {
        let r = running_example::relation();
        // Four facts over the two dimensions (two values each), as in the
        // paper's conflict study.
        let facts = vec![
            Fact::for_scope(&r, running_example::scope(&r, &[("season", "Winter")])).unwrap(),
            Fact::for_scope(&r, running_example::scope(&r, &[("season", "Summer")])).unwrap(),
            Fact::for_scope(&r, running_example::scope(&r, &[("region", "North")])).unwrap(),
            Fact::for_scope(&r, running_example::scope(&r, &[("region", "East")])).unwrap(),
        ];
        let rows = fig7(&r, &facts, 20, 6);
        assert_eq!(rows.len(), 4);
        let closest = rows.iter().find(|r| r.model == "Closest").unwrap().error;
        for row in &rows {
            assert!(
                closest <= row.error + 1e-9,
                "Closest ({closest}) should beat {} ({})",
                row.model,
                row.error
            );
        }
    }

    #[test]
    fn fig8_voice_mostly_faster() {
        let points = fig8(10, 8.0, 7);
        assert_eq!(points.len(), 10);
        let faster = points
            .iter()
            .filter(|p| p.vocal_time < p.visual_time)
            .count();
        assert!(faster >= 6, "only {faster}/10 faster with voice");
        for p in &points {
            assert!((1.0..=10.0).contains(&p.vocal_eval));
            assert!((1.0..=10.0).contains(&p.visual_eval));
        }
    }

    #[test]
    fn fig11_ours_beats_ranged_baseline_on_precise() {
        let ours = SpeechProfile::precise(0.85, 30);
        let baseline = SpeechProfile {
            quality: 0.8,
            range_width: 0.4,
            redundancy: 0.0,
            words: 36,
        };
        let rows = compare_profiles(&ours, &baseline, 150, 8);
        let precise = rows.iter().find(|r| r.adjective == "Precise").unwrap();
        assert!(precise.ours_rating > precise.baseline_rating);
        assert!(precise.ours_wins > precise.baseline_wins);
        let informative = rows.iter().find(|r| r.adjective == "Informative").unwrap();
        assert!(informative.ours_rating > informative.baseline_rating);
    }

    #[test]
    fn ml_comparison_gap_matches_paper_direction() {
        // §VIII-E: ML speeches rated below 5.92, ours above 7.28, for
        // every adjective.
        let ours = SpeechProfile::precise(0.85, 30);
        let ml = SpeechProfile {
            quality: 0.35,
            range_width: 0.0,
            redundancy: 0.7,
            words: 34,
        };
        let rows = compare_profiles(&ours, &ml, 150, 9);
        for row in &rows {
            assert!(
                row.ours_rating > row.baseline_rating,
                "{}: {} vs {}",
                row.adjective,
                row.ours_rating,
                row.baseline_rating
            );
        }
    }
}
