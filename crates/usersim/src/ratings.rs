//! Speech rating model for the AMT preference studies (Figs. 5 and 11,
//! and the §VIII-E ML comparison).
//!
//! Workers rated speeches 1–10 on adjectives. The simulated rater scores
//! a [`SpeechProfile`] — the observable features of a speech — with
//! adjective-specific sensitivities: approximation quality helps all
//! adjectives (the paper's central Fig. 5 correlation), value ranges hurt
//! "Precise"/"Informative" (the Fig. 11 explanation the paper offers),
//! redundancy hurts "Diverse", length hurts "Concise".

use rand::rngs::StdRng;
use rand::SeedableRng;

use vqs_data::synth::gaussian;

/// The rating adjectives of Figs. 5 and 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Adjective {
    /// "Precise".
    Precise,
    /// "Good".
    Good,
    /// "Complete".
    Complete,
    /// "Informative".
    Informative,
    /// "Diverse" (Fig. 11 only).
    Diverse,
    /// "Concise" (Fig. 11 only).
    Concise,
}

impl Adjective {
    /// The four adjectives of Fig. 5.
    pub const FIG5: [Adjective; 4] = [
        Adjective::Precise,
        Adjective::Good,
        Adjective::Complete,
        Adjective::Informative,
    ];
    /// The six adjectives of Fig. 11.
    pub const FIG11: [Adjective; 6] = [
        Adjective::Precise,
        Adjective::Good,
        Adjective::Complete,
        Adjective::Informative,
        Adjective::Diverse,
        Adjective::Concise,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Adjective::Precise => "Precise",
            Adjective::Good => "Good",
            Adjective::Complete => "Complete",
            Adjective::Informative => "Informative",
            Adjective::Diverse => "Diverse",
            Adjective::Concise => "Concise",
        }
    }
}

/// Observable features of a speech presented to raters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeechProfile {
    /// Scaled utility in `[0, 1]` under the paper's quality model.
    pub quality: f64,
    /// Average relative width of spoken value ranges (0 for precise
    /// values; the sampling baseline speaks ranges).
    pub range_width: f64,
    /// Fraction of facts repeating an already-mentioned dimension.
    pub redundancy: f64,
    /// Word count of the spoken text.
    pub words: usize,
}

impl SpeechProfile {
    /// A precise, non-redundant speech with the given quality.
    pub fn precise(quality: f64, words: usize) -> SpeechProfile {
        SpeechProfile {
            quality,
            range_width: 0.0,
            redundancy: 0.0,
            words,
        }
    }
}

/// Deterministic rating pool.
#[derive(Debug, Clone)]
pub struct Rater {
    /// Rating noise standard deviation.
    pub noise: f64,
    seed: u64,
}

impl Default for Rater {
    fn default() -> Self {
        Rater {
            noise: 0.8,
            seed: 0x5EED,
        }
    }
}

impl Rater {
    /// Rater with a specific seed.
    pub fn seeded(seed: u64) -> Rater {
        Rater {
            seed,
            ..Default::default()
        }
    }

    /// Expected (noise-free) rating of a profile on an adjective.
    ///
    /// The intercept/slope are calibrated so speeches in the quality band
    /// the studies produce land in the paper's reported 6.2–6.8 window
    /// (Fig. 5) while high-quality optimized speeches clear the 7.28 mark
    /// of the §VIII-E ML comparison.
    pub fn expected_rating(&self, profile: &SpeechProfile, adjective: Adjective) -> f64 {
        let q = profile.quality.clamp(0.0, 1.0);
        let base = 5.2 + 3.8 * q;
        let penalty = match adjective {
            Adjective::Precise => 3.5 * profile.range_width + 0.8 * profile.redundancy,
            Adjective::Good => 1.2 * profile.range_width + 1.2 * profile.redundancy,
            Adjective::Complete => 0.6 * profile.range_width + 1.8 * profile.redundancy,
            Adjective::Informative => 2.2 * profile.range_width + 1.5 * profile.redundancy,
            Adjective::Diverse => 0.4 * profile.range_width + 3.2 * profile.redundancy,
            Adjective::Concise => 0.02 * (profile.words as f64 - 25.0).max(0.0),
        };
        (base - penalty).clamp(1.0, 10.0)
    }

    /// One worker's rating (1–10) of a profile; `worker` diversifies the
    /// noise stream.
    pub fn rate(&self, profile: &SpeechProfile, adjective: Adjective, worker: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ worker.wrapping_mul(0xC2B2_AE35) ^ (adjective as u64) << 17,
        );
        let noisy = self.expected_rating(profile, adjective) + gaussian(&mut rng) * self.noise;
        noisy.clamp(1.0, 10.0)
    }

    /// Average rating over `workers` raters.
    pub fn average_rating(
        &self,
        profile: &SpeechProfile,
        adjective: Adjective,
        workers: usize,
    ) -> f64 {
        (0..workers)
            .map(|w| self.rate(profile, adjective, w as u64))
            .sum::<f64>()
            / workers.max(1) as f64
    }

    /// Pairwise comparison wins of `a` over `b` across `workers` raters
    /// (ties split evenly by worker index).
    pub fn wins(
        &self,
        a: &SpeechProfile,
        b: &SpeechProfile,
        adjective: Adjective,
        workers: usize,
    ) -> usize {
        (0..workers)
            .filter(|&w| {
                let ra = self.rate(a, adjective, w as u64);
                let rb = self.rate(b, adjective, w as u64 + 0x8000_0000);
                ra > rb || (ra == rb && w % 2 == 0)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_monotone_for_every_adjective() {
        let rater = Rater::default();
        for adjective in Adjective::FIG11 {
            let low = rater.expected_rating(&SpeechProfile::precise(0.2, 25), adjective);
            let high = rater.expected_rating(&SpeechProfile::precise(0.9, 25), adjective);
            assert!(high > low, "{adjective:?}");
        }
    }

    #[test]
    fn ranges_hurt_precise_most() {
        let rater = Rater::default();
        let precise = SpeechProfile::precise(0.7, 25);
        let ranged = SpeechProfile {
            range_width: 0.5,
            ..precise
        };
        let drop = |adj| rater.expected_rating(&precise, adj) - rater.expected_rating(&ranged, adj);
        assert!(drop(Adjective::Precise) > drop(Adjective::Good));
        assert!(drop(Adjective::Precise) > drop(Adjective::Complete));
        assert!(drop(Adjective::Informative) > drop(Adjective::Complete));
    }

    #[test]
    fn redundancy_hurts_diverse_most() {
        let rater = Rater::default();
        let clean = SpeechProfile::precise(0.7, 25);
        let redundant = SpeechProfile {
            redundancy: 0.8,
            ..clean
        };
        let drop =
            |adj| rater.expected_rating(&clean, adj) - rater.expected_rating(&redundant, adj);
        assert!(drop(Adjective::Diverse) > drop(Adjective::Precise));
        assert!(drop(Adjective::Diverse) > drop(Adjective::Concise));
    }

    #[test]
    fn verbosity_hurts_concise_only() {
        let rater = Rater::default();
        let short = SpeechProfile::precise(0.7, 20);
        let long = SpeechProfile::precise(0.7, 80);
        assert!(
            rater.expected_rating(&long, Adjective::Concise)
                < rater.expected_rating(&short, Adjective::Concise)
        );
        assert_eq!(
            rater.expected_rating(&long, Adjective::Good),
            rater.expected_rating(&short, Adjective::Good)
        );
    }

    #[test]
    fn ratings_stay_in_scale() {
        let rater = Rater::default();
        for q in [0.0, 0.5, 1.0] {
            for w in 0..30 {
                let r = rater.rate(&SpeechProfile::precise(q, 30), Adjective::Good, w);
                assert!((1.0..=10.0).contains(&r));
            }
        }
    }

    #[test]
    fn better_profile_wins_majority() {
        let rater = Rater::default();
        let good = SpeechProfile::precise(0.9, 25);
        let bad = SpeechProfile::precise(0.2, 25);
        let wins = rater.wins(&good, &bad, Adjective::Good, 50);
        assert!(wins > 40, "wins {wins}");
    }

    #[test]
    fn average_rating_reduces_noise() {
        let rater = Rater::default();
        let profile = SpeechProfile::precise(0.6, 25);
        let avg = rater.average_rating(&profile, Adjective::Good, 200);
        let expected = rater.expected_rating(&profile, Adjective::Good);
        assert!(
            (avg - expected).abs() < 0.25,
            "avg {avg} vs expected {expected}"
        );
    }
}
