//! Simulated crowd workers.
//!
//! §VIII-C validates the paper's expectation model on Amazon Mechanical
//! Turk. Workers are unavailable offline, so we simulate them: a worker's
//! estimate of a data point after hearing a speech follows the
//! closest-relevant-value model — the model Fig. 7 found to predict real
//! workers best — plus multiplicative noise. Encoding that finding as the
//! generating process means the reproduced studies validate the *analysis
//! pipeline* (ranking, medians, model comparison), not human behaviour;
//! DESIGN.md lists this substitution.

use rand::rngs::StdRng;
use rand::SeedableRng;

use vqs_core::prelude::*;
use vqs_data::synth::gaussian;

/// A population of simulated workers with a shared noise profile.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    /// Relative estimate noise (standard deviation as a fraction of the
    /// estimate, plus an absolute floor).
    pub noise: f64,
    /// Absolute noise floor.
    pub noise_floor: f64,
    /// The model workers actually follow when resolving facts.
    pub behaviour: ExpectationModel,
    seed: u64,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool {
            noise: 0.15,
            noise_floor: 1.0,
            behaviour: ExpectationModel::ClosestRelevant,
            seed: 0xA17,
        }
    }
}

impl WorkerPool {
    /// Pool with a specific seed.
    pub fn seeded(seed: u64) -> WorkerPool {
        WorkerPool {
            seed,
            ..Default::default()
        }
    }

    /// One worker's estimate of row `row`'s target value after hearing
    /// `facts`. `hit` diversifies the noise across repeated HITs.
    pub fn estimate(
        &self,
        relation: &EncodedRelation,
        row: usize,
        facts: &[Fact],
        prior: f64,
        hit: u64,
    ) -> f64 {
        let actual = relation.target(row);
        let belief = self
            .behaviour
            .expected_value(relation, row, facts, prior, actual);
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (row as u64).wrapping_mul(0x9E37_79B9) ^ hit.wrapping_mul(0x85EB_CA6B),
        );
        let noise = gaussian(&mut rng) * (belief.abs() * self.noise + self.noise_floor);
        (belief + noise).max(0.0)
    }

    /// Median worker estimate over `hits` repetitions (the §VIII-C studies
    /// report medians over 20 HITs per data point).
    pub fn median_estimate(
        &self,
        relation: &EncodedRelation,
        row: usize,
        facts: &[Fact],
        prior: f64,
        hits: usize,
    ) -> f64 {
        let mut estimates: Vec<f64> = (0..hits)
            .map(|h| self.estimate(relation, row, facts, prior, h as u64))
            .collect();
        median(&mut estimates)
    }
}

/// Median of a slice (averages the middle pair for even lengths).
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqs_data::running_example;

    #[test]
    fn estimates_track_the_generating_model() {
        let r = running_example::relation();
        let facts = running_example::speech2(&r).facts().to_vec();
        let pool = WorkerPool::default();
        // Row 12 is Winter-East (actual 20): model expectation is 15.
        let med = pool.median_estimate(&r, 12, &facts, 0.0, 200);
        assert!((med - 15.0).abs() < 2.0, "median {med}");
    }

    #[test]
    fn estimates_without_facts_follow_prior() {
        let r = running_example::relation();
        let pool = WorkerPool::default();
        let med = pool.median_estimate(&r, 0, &[], 7.0, 200);
        assert!((med - 7.0).abs() < 1.5, "median {med}");
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let r = running_example::relation();
        let facts = running_example::speech1(&r).facts().to_vec();
        // Row 12 (Winter-East) has a nonzero belief, so the noise term
        // cannot be clamped away by the `.max(0.0)` floor for either seed.
        let a = WorkerPool::seeded(5).estimate(&r, 12, &facts, 0.0, 1);
        let b = WorkerPool::seeded(5).estimate(&r, 12, &facts, 0.0, 1);
        assert_eq!(a, b);
        let c = WorkerPool::seeded(6).estimate(&r, 12, &facts, 0.0, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn estimates_never_negative() {
        let r = running_example::relation();
        let pool = WorkerPool {
            noise: 2.0,
            ..Default::default()
        };
        for hit in 0..50 {
            assert!(pool.estimate(&r, 0, &[], 0.5, hit) >= 0.0);
        }
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
    }
}
