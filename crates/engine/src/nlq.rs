//! Text-to-query extraction and request classification.
//!
//! §III: "To map text to queries, we train an extractor with a few
//! samples to extract names of target column and predicates on other
//! columns … from input text (this functionality is provided by the
//! Google Assistant framework)." Offline, the extractor is a dictionary
//! matcher: target columns are recognized through configured synonym
//! samples, predicates through the value dictionaries of the dimension
//! columns. Incoming requests are classified into the §VIII-D categories
//! (help / repeat / supported / unsupported / other) for Table III and
//! Fig. 9.

use vqs_core::prelude::EncodedRelation;
use vqs_data::GeneratedDataset;
use vqs_relalg::hash::FxHashMap;

use crate::config::Configuration;
use crate::problem::Query;

/// Why a data-access request is not answerable from the summary store
/// (the §VIII-D examples: extrema, relative comparisons, unavailable
/// data — plus the aggregate/conjunctive shapes the staged pipeline
/// recognizes). "Unsupported" is a *store* property: all variants except
/// [`Unsupported::UnavailableData`] are now answered by tier two of
/// [`crate::pipeline`] (live plan execution) when the tenant retains
/// live data, and keep their Table III "U-Query" label either way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unsupported {
    /// Asks for a maximum/minimum ("which airline has the most delays").
    Extremum,
    /// Asks for a relative comparison ("compare job satisfaction between
    /// men and women").
    Comparison,
    /// Asks for a count or total ("how many delays in winter") — the
    /// store holds averages only.
    Aggregate,
    /// A recognized target with more conjunctive predicates than the
    /// deployment pre-processed.
    Conjunctive,
    /// References data the deployment does not cover.
    UnavailableData,
}

/// Classified voice request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Asking how to use the system.
    Help,
    /// Asking to repeat the last output.
    Repeat,
    /// A supported data-access query.
    Query(Query),
    /// A recognized but unsupported data-access request.
    Unsupported(Unsupported),
    /// Anything else.
    Other,
}

impl Request {
    /// Table III row label.
    pub fn label(&self) -> &'static str {
        match self {
            Request::Help => "Help",
            Request::Repeat => "Repeat",
            Request::Query(_) => "S-Query",
            Request::Unsupported(_) => "U-Query",
            Request::Other => "Other",
        }
    }
}

/// Dictionary-based extractor for one deployment.
#[derive(Debug, Clone)]
pub struct Extractor {
    /// Lowercased value → (dimension, original value), longest first.
    values: Vec<(String, (String, String))>,
    /// Target synonyms: lowercased phrase → target column.
    targets: Vec<(String, String)>,
    /// Phrases marking entities the deployment has no data for (e.g.
    /// "flight" — the §VIII-D example "questions for delays of specific
    /// flights" is unsupported because per-flight data is unavailable).
    unavailable_markers: Vec<String>,
    /// Maximum predicates the deployment pre-processed.
    max_query_length: usize,
}

impl Extractor {
    /// Build from a relation's value dictionaries; target synonyms start
    /// with just the column name (underscores spoken as spaces).
    pub fn from_relation(relation: &EncodedRelation, max_query_length: usize) -> Extractor {
        let mut values = Vec::new();
        for dim in relation.dims() {
            for value in &dim.values {
                values.push((value.to_lowercase(), (dim.name.clone(), value.to_string())));
            }
        }
        // Longest phrases first so "New York City" wins over "York".
        values.sort_by_key(|(v, _)| std::cmp::Reverse(v.len()));
        let targets = vec![(
            relation.target_name().replace('_', " ").to_lowercase(),
            relation.target_name().to_string(),
        )];
        Extractor {
            values,
            targets,
            unavailable_markers: Vec::new(),
            max_query_length,
        }
    }

    /// Build the extractor for a whole deployment: value dictionaries
    /// from the configured dimension columns, and the spoken name of
    /// *every* configured target (underscores spoken as spaces). This is
    /// how the [`crate::service::VoiceService`] facade wires tenants;
    /// add richer phrasings with [`Extractor::with_target_synonyms`].
    pub fn for_deployment(
        dataset: &GeneratedDataset,
        config: &Configuration,
    ) -> crate::error::Result<Extractor> {
        let first = config
            .targets
            .first()
            .ok_or_else(|| crate::config::ConfigError::Invalid {
                detail: "no targets configured".into(),
            })?;
        // Dimension dictionaries are identical for every target; one
        // relation supplies them all.
        let relation = crate::generator::target_relation(dataset, config, first)?;
        let mut extractor = Extractor::from_relation(&relation, config.max_query_length);
        for target in &config.targets[1..] {
            // Validate the remaining target columns exist up front (a
            // schema probe, not a full re-encode), so a bad
            // configuration fails at registration, not at query time.
            if dataset.table.schema().index_of(target).is_err() {
                return Err(crate::error::EngineError::MissingColumn {
                    column: target.clone(),
                });
            }
            let spoken = target.replace('_', " ");
            extractor = extractor.with_target_synonyms(target, &[spoken.as_str()]);
        }
        Ok(extractor)
    }

    /// Register phrases marking data the deployment does not cover.
    pub fn with_unavailable_markers(mut self, markers: &[&str]) -> Extractor {
        self.unavailable_markers
            .extend(markers.iter().map(|m| m.to_lowercase()));
        self
    }

    /// Register "a few samples" of phrasings for a target column —
    /// the offline stand-in for training the Assistant's extractor.
    pub fn with_target_synonyms(mut self, target: &str, synonyms: &[&str]) -> Extractor {
        for synonym in synonyms {
            self.targets
                .push((synonym.to_lowercase(), target.to_string()));
        }
        // Longest synonyms first for the same reason as values.
        self.targets
            .sort_by_key(|(s, _)| std::cmp::Reverse(s.len()));
        self
    }

    /// Extract the target column named in `text`, if any.
    pub fn extract_target(&self, text: &str) -> Option<&str> {
        let lower = text.to_lowercase();
        self.targets
            .iter()
            .find(|(phrase, _)| contains_phrase(&lower, phrase))
            .map(|(_, target)| target.as_str())
    }

    /// Extract equality predicates from `text` (at most one per
    /// dimension; longest value phrases win).
    pub fn extract_predicates(&self, text: &str) -> Vec<(String, String)> {
        let lower = text.to_lowercase();
        let mut used_dims: FxHashMap<String, ()> = FxHashMap::default();
        let mut out = Vec::new();
        for (phrase, (dim, value)) in &self.values {
            if used_dims.contains_key(dim) {
                continue;
            }
            if contains_phrase(&lower, phrase) {
                used_dims.insert(dim.clone(), ());
                out.push((dim.clone(), value.clone()));
            }
        }
        out.sort();
        out
    }

    /// Classify a raw voice request (§VIII-D categories). This is the
    /// label side of the staged pipeline's analyzer — the one
    /// classification entry point; see [`crate::pipeline`].
    pub fn classify(&self, text: &str) -> Request {
        crate::pipeline::analyze::analyze(self, text).request
    }

    /// The value dictionary: lowercased phrase → (dimension, original
    /// value), longest phrases first.
    pub(crate) fn value_entries(&self) -> &[(String, (String, String))] {
        &self.values
    }

    /// The distinct dimension names covered by the value dictionary.
    pub(crate) fn dimension_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for (_, (dim, _)) in &self.values {
            if !names.contains(dim) {
                names.push(dim.clone());
            }
        }
        names
    }

    /// The single target column of a one-target deployment, `None` when
    /// several are configured (an unnamed target is then ambiguous).
    pub(crate) fn sole_target(&self) -> Option<&str> {
        let first = self.targets.first().map(|(_, t)| t.as_str())?;
        self.targets
            .iter()
            .all(|(_, t)| t == first)
            .then_some(first)
    }

    /// Registered unavailable-data marker phrases (lowercased).
    pub(crate) fn unavailable_markers(&self) -> &[String] {
        &self.unavailable_markers
    }

    /// Maximum predicates the deployment pre-processed.
    pub(crate) fn max_query_length(&self) -> usize {
        self.max_query_length
    }
}

pub(crate) use crate::pipeline::token::contains_phrase;

#[cfg(test)]
mod tests {
    use super::*;
    use vqs_core::prelude::Prior;

    fn relation() -> EncodedRelation {
        EncodedRelation::from_rows(
            &["season", "region"],
            "cancelled",
            vec![
                (vec!["Winter", "East"], 20.0),
                (vec!["Summer", "West"], 10.0),
                (vec!["Fall", "New York"], 5.0),
            ],
            Prior::Constant(0.0),
        )
        .unwrap()
    }

    fn extractor() -> Extractor {
        Extractor::from_relation(&relation(), 2).with_target_synonyms(
            "cancelled",
            &["cancellations", "cancellation probability", "cancel rate"],
        )
    }

    #[test]
    fn extracts_example5_query() {
        // The paper's Example 5 log entry: "cancellations in Winter?".
        let ex = extractor();
        match ex.classify("cancellations in Winter?") {
            Request::Query(q) => {
                assert_eq!(q.target(), "cancelled");
                assert_eq!(
                    q.predicates(),
                    &[("season".to_string(), "Winter".to_string())]
                );
            }
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn extracts_multiple_predicates() {
        let ex = extractor();
        match ex.classify("what about cancellations in winter in the east") {
            Request::Query(q) => assert_eq!(q.len(), 2),
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn multiword_values_match() {
        let ex = extractor();
        let preds = ex.extract_predicates("cancellations in new york");
        assert_eq!(preds, vec![("region".to_string(), "New York".to_string())]);
    }

    #[test]
    fn help_and_repeat() {
        let ex = extractor();
        assert_eq!(ex.classify("Help me out"), Request::Help);
        assert_eq!(ex.classify("can you say that again"), Request::Repeat);
    }

    #[test]
    fn unsupported_shapes() {
        let ex = extractor();
        assert_eq!(
            ex.classify("make a comparison between cancellations in winter and summer"),
            Request::Unsupported(Unsupported::Comparison)
        );
        assert_eq!(
            ex.classify("which season has the most cancellations"),
            Request::Unsupported(Unsupported::Extremum)
        );
        // Predicate without target: unavailable data.
        assert_eq!(
            ex.classify("tell me about winter"),
            Request::Unsupported(Unsupported::UnavailableData)
        );
    }

    #[test]
    fn aggregate_shapes_classify_as_unsupported() {
        let ex = extractor();
        assert_eq!(
            ex.classify("how many cancellations in winter"),
            Request::Unsupported(Unsupported::Aggregate)
        );
        assert_eq!(
            ex.classify("the total cancellations in the east"),
            Request::Unsupported(Unsupported::Aggregate)
        );
        assert_eq!(ex.classify("how many").label(), "Other");
    }

    #[test]
    fn conjunctive_beyond_max_length_classifies_as_unsupported() {
        // max_query_length = 1: two predicates overflow the store.
        let ex = Extractor::from_relation(&relation(), 1)
            .with_target_synonyms("cancelled", &["cancellations"]);
        assert_eq!(
            ex.classify("cancellations in winter in the east"),
            Request::Unsupported(Unsupported::Conjunctive)
        );
        // Within the limit it stays a supported query.
        assert!(matches!(
            ex.classify("cancellations in winter"),
            Request::Query(_)
        ));
    }

    #[test]
    fn chatter_is_other() {
        let ex = extractor();
        assert_eq!(ex.classify("thank you very much"), Request::Other);
        assert_eq!(ex.classify("play some music"), Request::Other);
    }

    #[test]
    fn word_boundaries_respected() {
        assert!(contains_phrase("delays in winter", "winter"));
        assert!(!contains_phrase("winterization report", "winter"));
        assert!(contains_phrase("the east region", "east"));
        assert!(!contains_phrase("northeastern", "east"));
    }

    #[test]
    fn for_deployment_covers_every_target() {
        use vqs_data::{DimSpec, SynthSpec, TargetSpec};
        let dataset = SynthSpec {
            name: "dep".to_string(),
            dims: vec![DimSpec::named("season", &["Winter", "Summer"])],
            targets: vec![
                TargetSpec::new("delay", 15.0, 8.0, 2.0, (0.0, 60.0)),
                TargetSpec::new("wait_time", 30.0, 10.0, 4.0, (0.0, 100.0)),
            ],
            rows: 80,
        }
        .generate(3, 1.0);
        let config = Configuration::new("dep", &["season"], &["delay", "wait_time"]);
        let ex = Extractor::for_deployment(&dataset, &config).unwrap();
        assert_eq!(ex.extract_target("the delay in winter"), Some("delay"));
        // The second target's spoken form (underscore as space) works.
        assert_eq!(ex.extract_target("wait time in summer"), Some("wait_time"));
        match ex.classify("wait time in Winter") {
            Request::Query(q) => assert_eq!(q.target(), "wait_time"),
            other => panic!("expected query, got {other:?}"),
        }
        // A missing target column fails at construction time.
        let bad = Configuration::new("dep", &["season"], &["delay", "nonexistent"]);
        assert!(Extractor::for_deployment(&dataset, &bad).is_err());
    }

    #[test]
    fn labels_match_table3() {
        let ex = extractor();
        assert_eq!(ex.classify("help").label(), "Help");
        assert_eq!(ex.classify("cancellations in winter").label(), "S-Query");
        assert_eq!(ex.classify("highest cancellations").label(), "U-Query");
        assert_eq!(ex.classify("good morning").label(), "Other");
    }
}
