//! The staged NL query pipeline: tokenize → analyze → plan → execute.
//!
//! This module is the single answer path of the engine
//! (`ServiceRequest` → pipeline → [`Answer`]): the facade, the serving
//! front-end, and stateful sessions all call `answer` with the
//! `Analysis` produced by `analyze::analyze` (which also backs
//! `Extractor::classify`, so classification happens exactly once).
//!
//! Answers resolve through a three-tier chain:
//!
//! 1. **Summary-store hit** — supported queries look up the best
//!    pre-generated speech, byte-identical to the pre-pipeline path
//!    (the §VIII-E "merely looks up" hot path is untouched).
//! 2. **Live plan execution** — questions the store does not precompute
//!    (conjunctive filters beyond the configured length, comparatives,
//!    extrema, counts/totals) lower to a typed [`QueryPlan`] and execute
//!    over `vqs-relalg` against the tenant's live table, on the shared
//!    pool's bulk lane. A configured extremum/comparison extension index
//!    still wins first (tier 1.5: precomputed beats live).
//! 3. **Typed apology** — everything still unanswered keeps the legacy
//!    typed apologies.
//!
//! Store-served and live-computed answers additionally carry a
//! [`FollowOn`] suggestion drawn from adjacent summaries when one
//! exists.

pub(crate) mod analyze;
pub mod followon;
pub mod plan;
pub mod token;

pub use followon::FollowOn;
pub use plan::{AggKind, ComputedValue, QueryPlan};
pub use token::Utterance;

use std::sync::Arc;

use vqs_relalg::prelude::Table;

use crate::extensions::ExtremumIndex;
use crate::nlq::{Request, Unsupported};
use crate::service::{
    Answer, AGGREGATE_APOLOGY, COMPARISON_APOLOGY, CONJUNCTIVE_APOLOGY, EXTREMUM_APOLOGY,
    NOTHING_TO_REPEAT, NOT_UNDERSTOOD, UNAVAILABLE,
};
use crate::store::{Lookup, SpeechStore};

pub(crate) use analyze::Analysis;
pub(crate) use plan::Exec;

/// One tenant's answer-time resources, borrowed for the duration of one
/// request.
pub(crate) struct PipelineContext<'a> {
    /// The tenant's speech store (tier one).
    pub store: &'a SpeechStore,
    /// Spoken help text for `Help` requests.
    pub help_text: &'a str,
    /// Optional precomputed extremum/comparison index (tier 1.5).
    pub extensions: Option<&'a ExtremumIndex>,
    /// The tenant's live table (tier two); `None` for stores built
    /// without retained data (free-standing sessions, hand-built
    /// stores), which degrades gracefully to the apology tier.
    pub live: Option<&'a Arc<Table>>,
    /// Where tier-two plans materialize.
    pub exec: Exec<'a>,
}

/// Map one analyzed request onto a typed answer (and optional follow-on
/// hint) through the three-tier chain. `Repeat` resolves to the
/// no-history help text — stateful replay lives in
/// [`crate::voice::VoiceSession`], which intercepts `Repeat` before
/// calling in.
pub(crate) fn answer(
    analysis: &Analysis,
    text: &str,
    ctx: &PipelineContext<'_>,
) -> (Answer, Option<FollowOn>) {
    match &analysis.request {
        Request::Help => (
            Answer::Help {
                text: ctx.help_text.to_string(),
            },
            None,
        ),
        Request::Repeat => (
            Answer::Help {
                text: NOTHING_TO_REPEAT.to_string(),
            },
            None,
        ),
        Request::Other => (
            Answer::Help {
                text: NOT_UNDERSTOOD.to_string(),
            },
            None,
        ),
        Request::Query(query) => match ctx.store.lookup(query) {
            Lookup::Exact(speech) => {
                let follow_on = followon::suggest(ctx.store, &speech.query);
                (
                    Answer::Speech {
                        speech,
                        kept_predicates: None,
                    },
                    follow_on,
                )
            }
            Lookup::Generalized {
                speech,
                kept_predicates,
            } => {
                let follow_on = followon::suggest(ctx.store, &speech.query);
                (
                    Answer::Speech {
                        speech,
                        kept_predicates: Some(kept_predicates),
                    },
                    follow_on,
                )
            }
            // A miss on a supported query: the live tier can still
            // compute the store's own semantic (the average) directly.
            Lookup::Miss => match live_answer(
                &QueryPlan::Aggregate {
                    target: query.target().to_string(),
                    predicates: query.predicates().to_vec(),
                    agg: AggKind::Avg,
                },
                ctx,
            ) {
                Some(answered) => answered,
                None => (
                    Answer::NoSummary {
                        query: query.clone(),
                    },
                    None,
                ),
            },
        },
        Request::Unsupported(reason) => {
            // Tier 1.5: a precomputed extension index answers extremum/
            // comparison shapes before any live work, preserving the
            // pre-pipeline behavior of deployments that configured one.
            let extension_answer = match reason {
                Unsupported::Extremum => ctx
                    .extensions
                    .and_then(|index| index.answer_extremum_text(text)),
                Unsupported::Comparison => ctx
                    .extensions
                    .and_then(|index| index.answer_comparison_text(text)),
                Unsupported::Aggregate
                | Unsupported::Conjunctive
                | Unsupported::UnavailableData => None,
            };
            if let Some(text) = extension_answer {
                return (Answer::Extension { text }, None);
            }
            // Tier two: execute the analyzer's typed plan live.
            if let Some(plan) = &analysis.plan {
                if let Some(answered) = live_answer(plan, ctx) {
                    return answered;
                }
            }
            // Tier three: the typed apology.
            (
                Answer::Unsupported {
                    reason: reason.clone(),
                    text: match reason {
                        Unsupported::Extremum => EXTREMUM_APOLOGY,
                        Unsupported::Comparison => COMPARISON_APOLOGY,
                        Unsupported::Aggregate => AGGREGATE_APOLOGY,
                        Unsupported::Conjunctive => CONJUNCTIVE_APOLOGY,
                        Unsupported::UnavailableData => UNAVAILABLE,
                    }
                    .to_string(),
                },
                None,
            )
        }
    }
}

/// Tier two: execute `plan` against the live table, if there is one.
/// The follow-on for a computed answer points at the stored summary
/// nearest to the computed subset (one predicate past what the plan
/// scoped), when it exists.
fn live_answer(plan: &QueryPlan, ctx: &PipelineContext<'_>) -> Option<(Answer, Option<FollowOn>)> {
    let table = ctx.live?;
    let (value, text) = plan::execute(plan, table, ctx.exec)?;
    let answered =
        crate::problem::Query::new(plan.target().to_string(), plan.predicates().iter().cloned());
    let follow_on = followon::suggest(ctx.store, &answered);
    Some((
        Answer::Computed {
            plan: plan.clone(),
            value,
            text,
        },
        follow_on,
    ))
}
