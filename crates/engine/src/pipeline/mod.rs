//! The staged NL query pipeline: tokenize → analyze → plan → execute.
//!
//! This module is the single answer path of the engine
//! (`ServiceRequest` → pipeline → [`Answer`]): the facade, the serving
//! front-end, and stateful sessions all call `answer` with the
//! `Analysis` produced by `analyze::analyze` (which also backs
//! `Extractor::classify`, so classification happens exactly once).
//!
//! Answers resolve through a three-tier chain:
//!
//! 1. **Summary-store hit** — supported queries look up the best
//!    pre-generated speech, byte-identical to the pre-pipeline path
//!    (the §VIII-E "merely looks up" hot path is untouched).
//! 2. **Live plan execution** — questions the store does not precompute
//!    (conjunctive filters beyond the configured length, comparatives,
//!    extrema, counts/totals) lower to a typed [`QueryPlan`] and execute
//!    over `vqs-relalg` against the tenant's live table, on the shared
//!    pool's bulk lane. A configured extremum/comparison extension index
//!    still wins first (tier 1.5: precomputed beats live).
//! 3. **Typed apology** — everything still unanswered keeps the legacy
//!    typed apologies.
//!
//! Store-served and live-computed answers additionally carry a
//! [`FollowOn`] suggestion drawn from adjacent summaries when one
//! exists.
//!
//! **Deadline-carrying requests** additionally engage the degradation
//! ladder: a store miss (or generalized hit) attempts a *live solve* of
//! the exact query's summarization problem within the remaining budget;
//! when the budgeted solve times out the answer degrades to one greedy
//! pass ([`Degradation::Greedy`]), and when no budget remains at all the
//! stored (generalized) answer is served as-is
//! ([`Degradation::StoreOnly`]) — a degraded speech always beats an
//! apology. Deadline-free requests never enter the ladder, so their
//! answers stay byte-identical to the pre-deadline pipeline.

pub(crate) mod analyze;
pub mod followon;
pub mod plan;
pub mod token;

pub use followon::FollowOn;
pub use plan::{AggKind, ComputedValue, QueryPlan};
pub use token::Utterance;

use std::sync::Arc;
use std::time::Instant;

use vqs_core::prelude::Summarizer;
use vqs_relalg::hash::FxHashMap;
use vqs_relalg::prelude::Table;

use crate::config::Configuration;
use crate::extensions::ExtremumIndex;
use crate::nlq::{Request, Unsupported};
use crate::service::faults::{FaultPlan, FaultSite};
use crate::service::{
    Answer, Degradation, AGGREGATE_APOLOGY, COMPARISON_APOLOGY, CONJUNCTIVE_APOLOGY,
    EXTREMUM_APOLOGY, NOTHING_TO_REPEAT, NOT_UNDERSTOOD, UNAVAILABLE,
};
use crate::store::{Lookup, SpeechStore};
use crate::template::SpeechTemplate;

pub(crate) use analyze::Analysis;
pub(crate) use plan::Exec;

/// The resources needed to solve a summarization problem live at respond
/// time (the degradation ladder's top rung): the service's configured
/// summarizer plus the tenant's solve configuration.
pub(crate) struct LiveSolve<'a> {
    /// The service-wide summarization algorithm.
    pub summarizer: &'a dyn Summarizer,
    /// The tenant's solve configuration (speech length, fact scopes).
    pub config: &'a Configuration,
    /// The tenant's per-target speech templates.
    pub templates: &'a FxHashMap<String, SpeechTemplate>,
    /// The service's fault plan, drawn at [`FaultSite::RespondSolve`]
    /// before each live solve.
    pub faults: Option<&'a FaultPlan>,
}

/// One tenant's answer-time resources, borrowed for the duration of one
/// request.
pub(crate) struct PipelineContext<'a> {
    /// The tenant's speech store (tier one).
    pub store: &'a SpeechStore,
    /// Spoken help text for `Help` requests.
    pub help_text: &'a str,
    /// Optional precomputed extremum/comparison index (tier 1.5).
    pub extensions: Option<&'a ExtremumIndex>,
    /// The tenant's live table (tier two); `None` for stores built
    /// without retained data (free-standing sessions, hand-built
    /// stores), which degrades gracefully to the apology tier.
    pub live: Option<&'a Arc<Table>>,
    /// Where tier-two plans materialize.
    pub exec: Exec<'a>,
    /// The request's absolute deadline; `None` (every deadline-free
    /// request) keeps the pipeline byte-identical to the pre-deadline
    /// behavior.
    pub deadline: Option<Instant>,
    /// Live-solve resources for the degradation ladder; only consulted
    /// when `deadline` is set.
    pub solve: Option<LiveSolve<'a>>,
}

/// Map one analyzed request onto a typed answer (and optional follow-on
/// hint) through the three-tier chain. `Repeat` resolves to the
/// no-history help text — stateful replay lives in
/// [`crate::voice::VoiceSession`], which intercepts `Repeat` before
/// calling in.
pub(crate) fn answer(
    analysis: &Analysis,
    text: &str,
    ctx: &PipelineContext<'_>,
) -> (Answer, Option<FollowOn>, Degradation) {
    match &analysis.request {
        Request::Help => (
            Answer::Help {
                text: ctx.help_text.to_string(),
            },
            None,
            Degradation::None,
        ),
        Request::Repeat => (
            Answer::Help {
                text: NOTHING_TO_REPEAT.to_string(),
            },
            None,
            Degradation::None,
        ),
        Request::Other => (
            Answer::Help {
                text: NOT_UNDERSTOOD.to_string(),
            },
            None,
            Degradation::None,
        ),
        Request::Query(query) => match ctx.store.lookup(query) {
            Lookup::Exact(speech) => {
                let follow_on = followon::suggest(ctx.store, &speech.query);
                (
                    Answer::Speech {
                        speech,
                        kept_predicates: None,
                    },
                    follow_on,
                    Degradation::None,
                )
            }
            // A generalized hit dropped predicates the user asked for: a
            // deadline-carrying request spends its remaining budget
            // solving the *exact* query live before settling for the
            // generalized speech.
            Lookup::Generalized {
                speech,
                kept_predicates,
            } => match solve_live_answer(query, ctx) {
                LiveSolved::Answered(answer, follow_on, tier) => (*answer, follow_on, tier),
                budget => {
                    let follow_on = followon::suggest(ctx.store, &speech.query);
                    (
                        Answer::Speech {
                            speech,
                            kept_predicates: Some(kept_predicates),
                        },
                        follow_on,
                        match budget {
                            LiveSolved::NoBudget => Degradation::StoreOnly,
                            _ => Degradation::None,
                        },
                    )
                }
            },
            // A miss on a supported query: a deadline-carrying request
            // tries a full live solve first; otherwise (and as the
            // fallback) the live tier computes the store's own semantic
            // (the average) directly.
            Lookup::Miss => match solve_live_answer(query, ctx) {
                LiveSolved::Answered(answer, follow_on, tier) => (*answer, follow_on, tier),
                LiveSolved::NoBudget => (
                    Answer::NoSummary {
                        query: query.clone(),
                    },
                    None,
                    Degradation::StoreOnly,
                ),
                LiveSolved::Unavailable => match live_answer(
                    &QueryPlan::Aggregate {
                        target: query.target().to_string(),
                        predicates: query.predicates().to_vec(),
                        agg: AggKind::Avg,
                    },
                    ctx,
                ) {
                    Some((answer, follow_on)) => (answer, follow_on, Degradation::None),
                    None => (
                        Answer::NoSummary {
                            query: query.clone(),
                        },
                        None,
                        Degradation::None,
                    ),
                },
            },
        },
        Request::Unsupported(reason) => {
            // Tier 1.5: a precomputed extension index answers extremum/
            // comparison shapes before any live work, preserving the
            // pre-pipeline behavior of deployments that configured one.
            let extension_answer = match reason {
                Unsupported::Extremum => ctx
                    .extensions
                    .and_then(|index| index.answer_extremum_text(text)),
                Unsupported::Comparison => ctx
                    .extensions
                    .and_then(|index| index.answer_comparison_text(text)),
                Unsupported::Aggregate
                | Unsupported::Conjunctive
                | Unsupported::UnavailableData => None,
            };
            if let Some(text) = extension_answer {
                return (Answer::Extension { text }, None, Degradation::None);
            }
            let apology = |tier| {
                (
                    Answer::Unsupported {
                        reason: reason.clone(),
                        text: match reason {
                            Unsupported::Extremum => EXTREMUM_APOLOGY,
                            Unsupported::Comparison => COMPARISON_APOLOGY,
                            Unsupported::Aggregate => AGGREGATE_APOLOGY,
                            Unsupported::Conjunctive => CONJUNCTIVE_APOLOGY,
                            Unsupported::UnavailableData => UNAVAILABLE,
                        }
                        .to_string(),
                    },
                    None,
                    tier,
                )
            };
            // Tier two: execute the analyzer's typed plan live — unless
            // the request's deadline already passed, in which case the
            // apology ships immediately, stamped store-only.
            if let Some(plan) = &analysis.plan {
                if out_of_budget(ctx) {
                    return apology(Degradation::StoreOnly);
                }
                if let Some((answer, follow_on)) = live_answer(plan, ctx) {
                    return (answer, follow_on, Degradation::None);
                }
            }
            // Tier three: the typed apology.
            apology(Degradation::None)
        }
    }
}

/// Whether a deadline-carrying request has no budget left for live work.
fn out_of_budget(ctx: &PipelineContext<'_>) -> bool {
    ctx.deadline
        .is_some_and(|deadline| Instant::now() >= deadline)
}

/// Outcome of attempting a live solve for the degradation ladder.
enum LiveSolved {
    /// The live solve produced a speech (tier stamped: `Greedy` when the
    /// budgeted solve timed out and one greedy pass answered instead).
    Answered(Box<Answer>, Option<FollowOn>, Degradation),
    /// The deadline left no budget for live work at all.
    NoBudget,
    /// The ladder does not apply — deadline-free request, no solver or
    /// live table wired, or a query not solvable against the live data —
    /// and the pre-existing tiers proceed unchanged.
    Unavailable,
}

/// The degradation ladder's top rung: solve the exact query's
/// summarization problem live, within the request's remaining budget.
fn solve_live_answer(query: &crate::problem::Query, ctx: &PipelineContext<'_>) -> LiveSolved {
    let Some(deadline) = ctx.deadline else {
        return LiveSolved::Unavailable;
    };
    let Some(solve) = &ctx.solve else {
        return LiveSolved::Unavailable;
    };
    let Some(table) = ctx.live else {
        return LiveSolved::Unavailable;
    };
    if Instant::now() >= deadline {
        return LiveSolved::NoBudget;
    }
    // One fault draw per attempted live solve: a forced timeout makes
    // the budgeted solve behave as expired, exercising the greedy rung.
    let forced = solve
        .faults
        .is_some_and(|faults| faults.impose(FaultSite::RespondSolve));
    match crate::generator::solve_live(
        table,
        solve.config,
        solve.summarizer,
        solve.templates,
        query,
        Some(deadline),
        forced,
    ) {
        Ok(Some((speech, degraded))) => {
            let speech = Arc::new(speech);
            let follow_on = followon::suggest(ctx.store, &speech.query);
            LiveSolved::Answered(
                Box::new(Answer::Speech {
                    speech,
                    kept_predicates: None,
                }),
                follow_on,
                if degraded {
                    Degradation::Greedy
                } else {
                    Degradation::None
                },
            )
        }
        // A query the live data cannot answer (unknown dimension or
        // value, empty subset) — or a solver error — falls through to
        // the pre-existing tiers rather than failing the request.
        Ok(None) | Err(_) => LiveSolved::Unavailable,
    }
}

/// Tier two: execute `plan` against the live table, if there is one.
/// The follow-on for a computed answer points at the stored summary
/// nearest to the computed subset (one predicate past what the plan
/// scoped), when it exists.
fn live_answer(plan: &QueryPlan, ctx: &PipelineContext<'_>) -> Option<(Answer, Option<FollowOn>)> {
    let table = ctx.live?;
    let (value, text) = plan::execute(plan, table, ctx.exec)?;
    let answered =
        crate::problem::Query::new(plan.target().to_string(), plan.predicates().iter().cloned());
    let follow_on = followon::suggest(ctx.store, &answered);
    Some((
        Answer::Computed {
            plan: plan.clone(),
            value,
            text,
        },
        follow_on,
    ))
}
