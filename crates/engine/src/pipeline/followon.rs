//! Follow-on suggestions from adjacent summaries.
//!
//! A voice answer is a dead end unless the system hints at what else it
//! can say ("Follow-on Question Suggestion via Voice Hints"). The
//! cheapest grounded hints already sit in the speech store: after
//! answering the query `Q`, any stored speech whose query extends `Q` by
//! exactly one predicate is a question the system is *guaranteed* to
//! answer well. `suggest` picks the canonically smallest such
//! extension so the hint is deterministic across runs and shards.

use crate::problem::Query;
use crate::store::SpeechStore;

/// A suggested follow-on question, attached to a `ServiceResponse`.
#[derive(Debug, Clone, PartialEq)]
pub struct FollowOn {
    /// The adjacent stored query the suggestion leads to.
    pub query: Query,
    /// A speakable phrasing of it ("delay for season Winter and region
    /// East?").
    pub utterance: String,
}

/// Suggest a follow-on for an answered query: the canonically first
/// (by [`Query`]'s total order) stored speech extending `answered` by
/// exactly one predicate. `None` when the store holds no adjacent
/// summary — answers never invent hints. The scan is linear in the
/// number of speeches stored for the target; stores hold at most a few
/// hundred speeches per target, so this stays well under lookup cost.
pub(crate) fn suggest(store: &SpeechStore, answered: &Query) -> Option<FollowOn> {
    let query = store
        .speeches_for_target(answered.target())
        .into_iter()
        .map(|speech| speech.query.clone())
        .filter(|candidate| candidate.len() == answered.len() + 1 && answered.subset_of(candidate))
        .min()?;
    let scope: Vec<String> = query
        .predicates()
        .iter()
        .map(|(d, v)| format!("{} {}", d.replace('_', " "), v))
        .collect();
    let utterance = format!(
        "{} for {}?",
        query.target().replace('_', " "),
        scope.join(" and ")
    );
    Some(FollowOn { query, utterance })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::StoredSpeech;

    fn speech(query: Query) -> StoredSpeech {
        StoredSpeech {
            text: format!("speech for {query}"),
            facts: vec![],
            utility: 1.0,
            base_error: 2.0,
            rows: 4,
            query,
        }
    }

    #[test]
    fn suggests_the_canonically_first_one_step_extension() {
        let store = SpeechStore::new();
        for predicates in [
            vec![],
            vec![("season", "Winter")],
            vec![("season", "Winter"), ("region", "West")],
            vec![("season", "Winter"), ("region", "East")],
        ] {
            store.insert(speech(Query::of("delay", &predicates)));
        }
        let hint = suggest(&store, &Query::of("delay", &[("season", "Winter")])).unwrap();
        // ("region", "East") < ("region", "West") in the canonical order.
        assert_eq!(
            hint.query,
            Query::of("delay", &[("season", "Winter"), ("region", "East")])
        );
        assert_eq!(hint.utterance, "delay for region East and season Winter?");
        // The overall query's one-step extensions are the single-predicate
        // speeches.
        let overall = suggest(&store, &Query::of("delay", &[])).unwrap();
        assert_eq!(overall.query, Query::of("delay", &[("season", "Winter")]));
    }

    #[test]
    fn no_adjacent_summary_means_no_hint() {
        let store = SpeechStore::new();
        store.insert(speech(Query::of("delay", &[])));
        // Two predicates away from the only stored speech.
        assert!(suggest(
            &store,
            &Query::of("delay", &[("season", "Winter"), ("region", "East")])
        )
        .is_none());
        // Different target entirely.
        assert!(suggest(&store, &Query::of("wait", &[])).is_none());
    }
}
