//! Stage one of the pipeline: tokenization.
//!
//! Every downstream stage works on one shared lowercase rendering of the
//! utterance ([`Utterance`]); the legacy matcher lowercased the text
//! once per extraction pass. Matching itself is span-based rather than
//! token-list-based: dictionary entries are *phrases* ("New York City"),
//! so the primitive is a word-boundary-aware substring search
//! ([`find_phrase`]) over the normalized text, and [`Utterance::words`]
//! exposes the token stream for corpus diagnostics.

/// One utterance, normalized once for all downstream stages.
#[derive(Debug, Clone)]
pub struct Utterance {
    lower: String,
}

impl Utterance {
    /// Normalize `text` (one lowercase pass shared by every stage).
    pub fn new(text: &str) -> Utterance {
        Utterance {
            lower: text.to_lowercase(),
        }
    }

    /// The normalized (lowercased) text.
    pub fn lower(&self) -> &str {
        &self.lower
    }

    /// The alphanumeric tokens of the utterance, in order.
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.lower
            .split(|c: char| !c.is_alphanumeric())
            .filter(|w| !w.is_empty())
    }

    /// Plain substring containment against any of `cues`. Cue tables
    /// (help/repeat/extremum/comparison) deliberately keep the legacy
    /// substring semantics — e.g. the `"max "` cue relies on its
    /// trailing space — so classification stays bit-compatible.
    pub fn contains_any(&self, cues: &[&str]) -> bool {
        cues.iter().any(|cue| self.lower.contains(cue))
    }

    /// Word-boundary phrase search; see [`find_phrase`].
    pub fn find_phrase(&self, phrase: &str) -> Option<usize> {
        find_phrase(&self.lower, phrase)
    }

    /// Word-boundary phrase containment; see [`contains_phrase`].
    pub fn contains_phrase(&self, phrase: &str) -> bool {
        self.find_phrase(phrase).is_some()
    }
}

/// Byte offset of the first occurrence of `phrase` in `text` that is not
/// glued into a longer word on either side (`None` when absent).
pub fn find_phrase(text: &str, phrase: &str) -> Option<usize> {
    if phrase.is_empty() {
        return None;
    }
    let mut start = 0;
    while let Some(pos) = text[start..].find(phrase) {
        let begin = start + pos;
        let end = begin + phrase.len();
        let ok_before = begin == 0 || !text[..begin].chars().next_back().unwrap().is_alphanumeric();
        let ok_after = end == text.len() || !text[end..].chars().next().unwrap().is_alphanumeric();
        if ok_before && ok_after {
            return Some(begin);
        }
        start = begin + 1;
        if start >= text.len() {
            break;
        }
    }
    None
}

/// Word-boundary-aware containment: `phrase` must appear in `text` and
/// not be glued into a longer word on either side.
pub fn contains_phrase(text: &str, phrase: &str) -> bool {
    find_phrase(text, phrase).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_tokenize_on_non_alphanumerics() {
        let utt = Utterance::new("Cancellations in New York?");
        let words: Vec<&str> = utt.words().collect();
        assert_eq!(words, vec!["cancellations", "in", "new", "york"]);
    }

    #[test]
    fn find_phrase_reports_position() {
        assert_eq!(find_phrase("delays in winter", "winter"), Some(10));
        assert_eq!(find_phrase("winterization report", "winter"), None);
        // Skips a glued match and still finds a later clean one.
        assert_eq!(find_phrase("northeastern east", "east"), Some(13));
        assert_eq!(find_phrase("anything", ""), None);
    }

    #[test]
    fn utterance_matching_is_case_insensitive() {
        let utt = Utterance::new("Compare DELAYS for Winter VS Summer");
        assert!(utt.contains_any(&[" vs "]));
        assert!(utt.contains_phrase("winter"));
        assert!(utt.find_phrase("delays") < utt.find_phrase("summer"));
    }
}
