//! Stage three of the pipeline: typed logical plans and their execution
//! over `vqs-relalg`.
//!
//! A [`QueryPlan`] is the engine-side logical form of a live question —
//! small, comparable ([`PartialEq`], unlike `vqs_relalg::plan::Plan`)
//! and carried verbatim inside `Answer::Computed` so callers can branch
//! on *what* was computed. [`QueryPlan::to_relalg`] lowers it onto the
//! relational operators (σ → Γ → ORDER BY), and `execute` materializes
//! it against the tenant's live table, interpreting the result into a
//! typed [`ComputedValue`] plus its deterministic voice rendering.

use std::sync::Arc;

use vqs_relalg::error::Result as RelalgResult;
use vqs_relalg::ops::aggregate::{AggFunc, AggItem};
use vqs_relalg::prelude::{Expr, Plan, Table, Value};

use crate::service::{ScatterPriority, SolverPool};
use crate::template::format_value;

/// Aggregate function of a live [`QueryPlan::Aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Mean of the target over the subset (the store's own semantic,
    /// used for conjunctive questions beyond the pre-processed length).
    Avg,
    /// Sum of the target over the subset ("total …").
    Sum,
    /// Row count of the subset ("how many …").
    Count,
    /// Smallest target value in the subset ("minimum …", no grouping
    /// dimension mentioned).
    Min,
    /// Largest target value in the subset ("maximum …", no grouping
    /// dimension mentioned).
    Max,
}

impl AggKind {
    fn func(self) -> AggFunc {
        match self {
            AggKind::Avg => AggFunc::Avg,
            AggKind::Sum => AggFunc::Sum,
            AggKind::Count => AggFunc::CountAll,
            AggKind::Min => AggFunc::Min,
            AggKind::Max => AggFunc::Max,
        }
    }
}

/// The typed logical plan of one live-path question. Dimensions and
/// values are carried by name; [`QueryPlan::to_relalg`] resolves them
/// against the live table's schema at execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryPlan {
    /// σ(predicates) → Γ(agg(target)): a single aggregate over one data
    /// subset (conjunctive filters, counts, totals, global extrema).
    Aggregate {
        /// Target column the aggregate ranges over.
        target: String,
        /// Conjunctive equality predicates scoping the subset.
        predicates: Vec<(String, String)>,
        /// The aggregate to compute.
        agg: AggKind,
    },
    /// σ(predicates) → Γ(dimension; avg(target)) → ORDER BY avg: which
    /// group of `dimension` has the highest/lowest average target
    /// ("which airline is worst on Fridays?").
    GroupExtremum {
        /// Target column averaged per group.
        target: String,
        /// Predicates scoping the subset first.
        predicates: Vec<(String, String)>,
        /// Grouping dimension.
        dimension: String,
        /// `true` = highest average wins, `false` = lowest.
        highest: bool,
    },
    /// σ(predicates ∧ dimension ∈ {left, right}) → Γ(dimension;
    /// avg(target)): relative comparison of two values of one dimension.
    Comparison {
        /// Target column averaged per side.
        target: String,
        /// Predicates scoping both sides identically.
        predicates: Vec<(String, String)>,
        /// Dimension the compared values belong to.
        dimension: String,
        /// First-mentioned value.
        left: String,
        /// Second-mentioned value.
        right: String,
    },
}

impl QueryPlan {
    /// The target column this plan computes over.
    pub fn target(&self) -> &str {
        match self {
            QueryPlan::Aggregate { target, .. }
            | QueryPlan::GroupExtremum { target, .. }
            | QueryPlan::Comparison { target, .. } => target,
        }
    }

    /// The equality predicates scoping this plan's subset.
    pub fn predicates(&self) -> &[(String, String)] {
        match self {
            QueryPlan::Aggregate { predicates, .. }
            | QueryPlan::GroupExtremum { predicates, .. }
            | QueryPlan::Comparison { predicates, .. } => predicates,
        }
    }

    /// Lower onto `vqs-relalg` operators over `table`. Fails when a
    /// referenced column is missing from the live schema (e.g. a synonym
    /// added for a column the projection does not retain).
    pub fn to_relalg(&self, table: &Arc<Table>) -> RelalgResult<Plan> {
        let schema = table.schema();
        let target_col = Expr::col(schema.index_of(self.target())?);
        let mut selection: Option<Expr> = None;
        for (dim, value) in self.predicates() {
            let eq = Expr::col(schema.index_of(dim)?).eq(Expr::lit(value.as_str()));
            selection = Some(match selection {
                Some(prev) => prev.and(eq),
                None => eq,
            });
        }
        match self {
            QueryPlan::Aggregate { agg, .. } => {
                let mut plan = Plan::shared(Arc::clone(table));
                if let Some(predicate) = selection {
                    plan = plan.filter(predicate);
                }
                Ok(plan.aggregate(
                    vec![],
                    vec![],
                    vec![
                        AggItem::new(agg.func(), target_col.clone(), "value"),
                        AggItem::new(AggFunc::CountAll, target_col, "support"),
                    ],
                ))
            }
            QueryPlan::GroupExtremum { dimension, .. } => {
                let dim_col = Expr::col(schema.index_of(dimension)?);
                let mut plan = Plan::shared(Arc::clone(table));
                if let Some(predicate) = selection {
                    plan = plan.filter(predicate);
                }
                Ok(plan
                    .aggregate(
                        vec![dim_col],
                        vec![dimension.clone()],
                        vec![
                            AggItem::new(AggFunc::Avg, target_col.clone(), "value"),
                            AggItem::new(AggFunc::CountAll, target_col, "support"),
                        ],
                    )
                    // Ascending by average; the interpreter reads both
                    // ends, so one sort serves either polarity.
                    .sort(vec![Expr::col(1)]))
            }
            QueryPlan::Comparison {
                dimension,
                left,
                right,
                ..
            } => {
                let dim_col = Expr::col(schema.index_of(dimension)?);
                let sides = dim_col
                    .clone()
                    .eq(Expr::lit(left.as_str()))
                    .or(dim_col.clone().eq(Expr::lit(right.as_str())));
                let predicate = match selection {
                    Some(prev) => prev.and(sides),
                    None => sides,
                };
                Ok(Plan::shared(Arc::clone(table)).filter(predicate).aggregate(
                    vec![dim_col],
                    vec![dimension.clone()],
                    vec![
                        AggItem::new(AggFunc::Avg, target_col.clone(), "value"),
                        AggItem::new(AggFunc::CountAll, target_col, "support"),
                    ],
                ))
            }
        }
    }
}

/// The typed result of executing a [`QueryPlan`] — the structured
/// payload of `Answer::Computed`.
#[derive(Debug, Clone, PartialEq)]
pub enum ComputedValue {
    /// A single aggregate over one subset (`Avg`/`Sum`/`Min`/`Max`).
    Scalar {
        /// Which aggregate produced the value.
        agg: AggKind,
        /// The aggregate value.
        value: f64,
        /// Rows in the subset.
        support: usize,
    },
    /// A row count ([`AggKind::Count`]).
    Count {
        /// Rows in the subset.
        rows: usize,
    },
    /// Best/worst group of a dimension by average target.
    GroupExtremum {
        /// Grouping dimension.
        dimension: String,
        /// The group at the asked-for end.
        best: String,
        /// Its average target value.
        best_value: f64,
        /// The group at the opposite end.
        other: String,
        /// Its average target value.
        other_value: f64,
        /// Polarity asked for.
        highest: bool,
    },
    /// Averages of the two compared values.
    Comparison {
        /// Dimension the values belong to.
        dimension: String,
        /// First-mentioned value.
        left: String,
        /// Its average target value.
        left_value: f64,
        /// Second-mentioned value.
        right: String,
        /// Its average target value.
        right_value: f64,
    },
}

/// Where a live plan materializes: inline on the calling thread
/// (stateful sessions own no pool handle) or as a single-task batch on
/// the shared pool's **bulk** lane, so live plans queue behind nothing
/// but themselves and can never starve interactive refresh batches.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Exec<'a> {
    /// Execute on the calling thread.
    Inline,
    /// Execute on the pool's bulk lane (the facade and front-end paths).
    Bulk(&'a SolverPool),
}

impl Exec<'_> {
    fn run(&self, plan: &Plan) -> RelalgResult<Table> {
        match self {
            Exec::Inline => plan.execute(),
            Exec::Bulk(pool) => pool
                .scatter_at(ScatterPriority::Bulk, 1, |_| plan.execute())
                .pop()
                .expect("scatter of one task yields one result"),
        }
    }
}

/// Execute `plan` against the live `table` and interpret the result.
/// `None` means the live tier cannot answer (missing column, empty
/// subset, one comparison side absent …) and the caller falls through to
/// the typed apology tier.
pub(crate) fn execute(
    plan: &QueryPlan,
    table: &Arc<Table>,
    exec: Exec<'_>,
) -> Option<(ComputedValue, String)> {
    let relalg = plan.to_relalg(table).ok()?;
    let result = exec.run(&relalg).ok()?;
    let value = interpret(plan, &result)?;
    let text = render(plan, &value);
    Some((value, text))
}

/// Read the materialized result back into a [`ComputedValue`].
fn interpret(plan: &QueryPlan, result: &Table) -> Option<ComputedValue> {
    match plan {
        QueryPlan::Aggregate { agg, .. } => {
            // Global aggregates always yield exactly one row.
            let support = as_count(result.value(0, 1))?;
            if support == 0 {
                // The subset is absent from the live data: let the
                // apology tier answer rather than voicing a NULL.
                return None;
            }
            if *agg == AggKind::Count {
                return Some(ComputedValue::Count { rows: support });
            }
            let value = result.value(0, 0).as_f64()?;
            Some(ComputedValue::Scalar {
                agg: *agg,
                value,
                support,
            })
        }
        QueryPlan::GroupExtremum {
            dimension, highest, ..
        } => {
            if result.is_empty() {
                return None;
            }
            // Sorted ascending by average: the ends are the extremes.
            let (low, high) = (0, result.len() - 1);
            let (best_row, other_row) = if *highest { (high, low) } else { (low, high) };
            Some(ComputedValue::GroupExtremum {
                dimension: dimension.clone(),
                best: as_name(result.value(best_row, 0))?,
                best_value: result.value(best_row, 1).as_f64()?,
                other: as_name(result.value(other_row, 0))?,
                other_value: result.value(other_row, 1).as_f64()?,
                highest: *highest,
            })
        }
        QueryPlan::Comparison {
            dimension,
            left,
            right,
            ..
        } => {
            let side = |name: &str| -> Option<f64> {
                (0..result.len())
                    .find(|&row| as_name(result.value(row, 0)).as_deref() == Some(name))
                    .and_then(|row| result.value(row, 1).as_f64())
            };
            Some(ComputedValue::Comparison {
                dimension: dimension.clone(),
                left: left.clone(),
                left_value: side(left)?,
                right: right.clone(),
                right_value: side(right)?,
            })
        }
    }
}

fn as_count(value: Value) -> Option<usize> {
    match value {
        Value::Int(n) if n >= 0 => Some(n as usize),
        _ => None,
    }
}

fn as_name(value: Value) -> Option<String> {
    match value {
        Value::Str(s) => Some(s.to_string()),
        _ => None,
    }
}

/// "for season Winter and region East", or "" for the overall subset —
/// the same phrasing stored speeches use for fact scopes.
fn scope_suffix(predicates: &[(String, String)]) -> String {
    if predicates.is_empty() {
        return String::new();
    }
    let parts: Vec<String> = predicates
        .iter()
        .map(|(d, v)| format!("{} {}", d.replace('_', " "), v))
        .collect();
    format!(" for {}", parts.join(" and "))
}

/// Deterministic voice rendering of a computed value. Prefixed "From the
/// live data" so transcripts distinguish tier-two answers from stored
/// speeches and extension-index answers.
fn render(plan: &QueryPlan, value: &ComputedValue) -> String {
    let spoken_target = plan.target().replace('_', " ");
    let scope = scope_suffix(plan.predicates());
    match value {
        ComputedValue::Scalar {
            agg,
            value,
            support,
        } => {
            let what = match agg {
                AggKind::Avg => "average",
                AggKind::Sum => "total",
                AggKind::Min => "minimum",
                AggKind::Max => "maximum",
                AggKind::Count => unreachable!("counts render as ComputedValue::Count"),
            };
            format!(
                "From the live data, the {what} {spoken_target}{scope} is about {}, over {} rows.",
                format_value(*value),
                support,
            )
        }
        ComputedValue::Count { rows } => {
            format!("From the live data, I count {rows} rows{scope}.")
        }
        ComputedValue::GroupExtremum {
            dimension,
            best,
            best_value,
            other,
            other_value,
            highest,
        } => {
            let spoken_dim = dimension.replace('_', " ");
            let (best_end, other_end) = if *highest {
                ("highest", "lowest")
            } else {
                ("lowest", "highest")
            };
            format!(
                "From the live data{scope}, {best} has the {best_end} average {spoken_target} \
                 of any {spoken_dim} at about {}; {other} has the {other_end} at about {}.",
                format_value(*best_value),
                format_value(*other_value),
            )
        }
        ComputedValue::Comparison {
            left,
            left_value,
            right,
            right_value,
            ..
        } => {
            let relation = if (left_value - right_value).abs() < 1e-9 {
                "about the same"
            } else if left_value > right_value {
                "higher"
            } else {
                "lower"
            };
            format!(
                "From the live data{scope}, {left} has {relation} average {spoken_target} \
                 than {right}: about {} versus {}.",
                format_value(*left_value),
                format_value(*right_value),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqs_relalg::prelude::{ColumnType, Field, Schema};

    fn live_table() -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::required("season", ColumnType::Str),
            Field::required("region", ColumnType::Str),
            Field::required("delay", ColumnType::Float),
        ])
        .unwrap();
        Arc::new(
            Table::from_rows(
                schema,
                vec![
                    vec!["Winter".into(), "East".into(), 30.0.into()],
                    vec!["Winter".into(), "West".into(), 20.0.into()],
                    vec!["Summer".into(), "East".into(), 10.0.into()],
                    vec!["Summer".into(), "West".into(), 4.0.into()],
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn conjunctive_average_executes() {
        let plan = QueryPlan::Aggregate {
            target: "delay".into(),
            predicates: vec![
                ("region".into(), "East".into()),
                ("season".into(), "Winter".into()),
            ],
            agg: AggKind::Avg,
        };
        let (value, text) = execute(&plan, &live_table(), Exec::Inline).unwrap();
        assert_eq!(
            value,
            ComputedValue::Scalar {
                agg: AggKind::Avg,
                value: 30.0,
                support: 1
            }
        );
        assert!(text.contains("for region East and season Winter"), "{text}");
    }

    #[test]
    fn counts_and_totals_execute() {
        let count = QueryPlan::Aggregate {
            target: "delay".into(),
            predicates: vec![("season".into(), "Winter".into())],
            agg: AggKind::Count,
        };
        let (value, text) = execute(&count, &live_table(), Exec::Inline).unwrap();
        assert_eq!(value, ComputedValue::Count { rows: 2 });
        assert!(text.contains("2 rows"), "{text}");

        let sum = QueryPlan::Aggregate {
            target: "delay".into(),
            predicates: vec![],
            agg: AggKind::Sum,
        };
        let (value, _) = execute(&sum, &live_table(), Exec::Inline).unwrap();
        assert_eq!(
            value,
            ComputedValue::Scalar {
                agg: AggKind::Sum,
                value: 64.0,
                support: 4
            }
        );
    }

    #[test]
    fn group_extremum_reads_both_ends() {
        let plan = QueryPlan::GroupExtremum {
            target: "delay".into(),
            predicates: vec![("region".into(), "East".into())],
            dimension: "season".into(),
            highest: true,
        };
        let (value, text) = execute(&plan, &live_table(), Exec::Inline).unwrap();
        match value {
            ComputedValue::GroupExtremum {
                best,
                other,
                best_value,
                ..
            } => {
                assert_eq!(best, "Winter");
                assert_eq!(other, "Summer");
                assert_eq!(best_value, 30.0);
            }
            other => panic!("expected group extremum, got {other:?}"),
        }
        assert!(text.contains("Winter has the highest"), "{text}");
    }

    #[test]
    fn comparison_keeps_mention_order() {
        let plan = QueryPlan::Comparison {
            target: "delay".into(),
            predicates: vec![],
            dimension: "season".into(),
            left: "Summer".into(),
            right: "Winter".into(),
        };
        let (value, text) = execute(&plan, &live_table(), Exec::Inline).unwrap();
        match value {
            ComputedValue::Comparison {
                left_value,
                right_value,
                ..
            } => {
                assert_eq!(left_value, 7.0);
                assert_eq!(right_value, 25.0);
            }
            other => panic!("expected comparison, got {other:?}"),
        }
        assert!(text.contains("Summer has lower"), "{text}");
    }

    #[test]
    fn empty_subsets_and_missing_columns_fall_through() {
        let absent = QueryPlan::Aggregate {
            target: "delay".into(),
            predicates: vec![("season".into(), "Monsoon".into())],
            agg: AggKind::Avg,
        };
        assert!(execute(&absent, &live_table(), Exec::Inline).is_none());
        let bad_column = QueryPlan::Aggregate {
            target: "nonexistent".into(),
            predicates: vec![],
            agg: AggKind::Avg,
        };
        assert!(execute(&bad_column, &live_table(), Exec::Inline).is_none());
        let one_sided = QueryPlan::Comparison {
            target: "delay".into(),
            predicates: vec![],
            dimension: "season".into(),
            left: "Winter".into(),
            right: "Monsoon".into(),
        };
        assert!(execute(&one_sided, &live_table(), Exec::Inline).is_none());
    }

    #[test]
    fn bulk_execution_matches_inline() {
        let pool = SolverPool::new(2);
        let plan = QueryPlan::GroupExtremum {
            target: "delay".into(),
            predicates: vec![],
            dimension: "region".into(),
            highest: false,
        };
        let inline = execute(&plan, &live_table(), Exec::Inline).unwrap();
        let bulk = execute(&plan, &live_table(), Exec::Bulk(&pool)).unwrap();
        assert_eq!(inline, bulk);
    }
}
