//! Stage two of the pipeline: dictionary-driven analysis.
//!
//! [`analyze`] is the single classification entry point: it maps an
//! utterance onto the §VIII-D [`Request`] category (the label Table III
//! counts — `Extractor::classify` delegates here) and, for questions the
//! store does not precompute, onto a typed
//! [`crate::pipeline::QueryPlan`]. Classification is deliberately
//! bit-compatible with the legacy fixed-shape matcher: same cue tables,
//! same substring-vs-word-boundary split, same decision order. What is
//! new is that a recognized-but-unsupported request now *also* carries
//! the recognized structure instead of dead-ending in an apology.

use crate::nlq::{Extractor, Request, Unsupported};
use crate::pipeline::plan::{AggKind, QueryPlan};
use crate::pipeline::token::Utterance;
use crate::problem::Query;

/// Cues marking extremum questions. `"max "` keeps its trailing space
/// (legacy semantics: "maximum" is matched by its own entry).
const EXTREMUM_CUES: [&str; 8] = [
    "most", "highest", "maximum", "max ", "least", "lowest", "minimum", "worst",
];
/// Extremum cues asking for the *low* end; any other extremum cue (or a
/// mixed utterance) asks for the high end, matching the extension
/// index's polarity rule.
const LOWEST_CUES: [&str; 3] = ["least", "lowest", "minimum"];
const COMPARISON_CUES: [&str; 5] = [
    "compare",
    "comparison",
    "versus",
    " vs ",
    "difference between",
];
const HELP_CUES: [&str; 4] = ["help", "what can you do", "how do i", "instructions"];
const REPEAT_CUES: [&str; 4] = ["repeat", "again", "say that once more", "come again"];

/// Aggregate cues, matched on word boundaries (unlike the legacy
/// substring cues, these are new and need not inherit quirks). "average"
/// is deliberately absent: stored speeches *are* averages, so those
/// utterances stay supported queries.
const COUNT_CUES: [&str; 3] = ["how many", "count", "number of"];
const SUM_CUES: [&str; 2] = ["total", "sum"];

/// What stage two recognized: the Table III category plus, when the
/// question has live-computable structure, its typed intent.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Analysis {
    /// The §VIII-D request category (drives counters and Table III).
    pub request: Request,
    /// The live-plan intent, already lowered to a [`QueryPlan`]. Present
    /// only for unsupported-category questions whose structure the
    /// analyzer fully resolved (target, and dimension/sides where
    /// needed).
    pub plan: Option<QueryPlan>,
}

impl Analysis {
    fn bare(request: Request) -> Analysis {
        Analysis {
            request,
            plan: None,
        }
    }
}

/// Analyze one utterance against a deployment's dictionaries. The
/// decision order mirrors the legacy classifier exactly; see the module
/// docs for what each branch adds on top.
pub(crate) fn analyze(extractor: &Extractor, text: &str) -> Analysis {
    let utterance = Utterance::new(text);
    if utterance.contains_any(&HELP_CUES) {
        return Analysis::bare(Request::Help);
    }
    if utterance.contains_any(&REPEAT_CUES) {
        return Analysis::bare(Request::Repeat);
    }
    let extremum = utterance.contains_any(&EXTREMUM_CUES);
    let comparison = utterance.contains_any(&COMPARISON_CUES);
    if extractor
        .unavailable_markers()
        .iter()
        .any(|marker| utterance.contains_phrase(marker))
    {
        return Analysis::bare(Request::Unsupported(Unsupported::UnavailableData));
    }
    let target = extractor.extract_target(utterance.lower());
    let predicates = extractor.extract_predicates(utterance.lower());
    let data_access = target.is_some() || !predicates.is_empty();
    // The target a live plan computes over: the mentioned one, or — for
    // a single-target deployment — the only one ("which airline is
    // worst on Fridays?" never names the target column).
    let plan_target = target.or_else(|| extractor.sole_target());
    if data_access && comparison {
        return Analysis {
            request: Request::Unsupported(Unsupported::Comparison),
            plan: plan_target
                .and_then(|target| comparison_plan(extractor, &utterance, target, &predicates)),
        };
    }
    if data_access && extremum {
        let highest = !utterance.contains_any(&LOWEST_CUES)
            || utterance.contains_any(&["most", "highest", "maximum", "max ", "worst"]);
        return Analysis {
            request: Request::Unsupported(Unsupported::Extremum),
            plan: plan_target
                .map(|target| extremum_plan(extractor, &utterance, target, &predicates, highest)),
        };
    }
    if data_access {
        let aggregate = if COUNT_CUES.iter().any(|cue| utterance.contains_phrase(cue)) {
            Some(AggKind::Count)
        } else if SUM_CUES.iter().any(|cue| utterance.contains_phrase(cue)) {
            Some(AggKind::Sum)
        } else {
            None
        };
        if let Some(agg) = aggregate {
            return Analysis {
                request: Request::Unsupported(Unsupported::Aggregate),
                plan: plan_target.map(|target| QueryPlan::Aggregate {
                    target: target.to_string(),
                    predicates: predicates.clone(),
                    agg,
                }),
            };
        }
    }
    match target {
        Some(target) if predicates.len() <= extractor.max_query_length() => {
            Analysis::bare(Request::Query(Query::new(target.to_string(), predicates)))
        }
        // More predicates than the store pre-processed: previously an
        // out-of-deployment apology, now a conjunctive live plan (the
        // store's own semantic — the average — over the narrower
        // subset).
        Some(target) => Analysis {
            request: Request::Unsupported(Unsupported::Conjunctive),
            plan: Some(QueryPlan::Aggregate {
                target: target.to_string(),
                predicates,
                agg: AggKind::Avg,
            }),
        },
        // A predicate without a recognizable target references data we
        // cannot serve (e.g. "delays of flight UA123").
        None if !predicates.is_empty() => {
            Analysis::bare(Request::Unsupported(Unsupported::UnavailableData))
        }
        None => Analysis::bare(Request::Other),
    }
}

/// Group-extremum intent: the grouping dimension is the first dimension
/// *name* mentioned in the utterance ("which **season** has …");
/// predicates on that same dimension are dropped (they would pin the
/// group being ranked).
fn extremum_plan(
    extractor: &Extractor,
    utterance: &Utterance,
    target: &str,
    predicates: &[(String, String)],
    highest: bool,
) -> QueryPlan {
    let dimension = extractor
        .dimension_names()
        .into_iter()
        .filter(|dim| utterance.contains_phrase(&dim.replace('_', " ").to_lowercase()))
        .min_by_key(|dim| utterance.find_phrase(&dim.replace('_', " ").to_lowercase()));
    match dimension {
        Some(dimension) => QueryPlan::GroupExtremum {
            target: target.to_string(),
            predicates: predicates
                .iter()
                .filter(|(dim, _)| *dim != dimension)
                .cloned()
                .collect(),
            dimension,
            highest,
        },
        // No grouping dimension named: a global min/max over the subset
        // ("the highest delay in winter").
        None => QueryPlan::Aggregate {
            target: target.to_string(),
            predicates: predicates.to_vec(),
            agg: if highest { AggKind::Max } else { AggKind::Min },
        },
    }
}

/// Comparison intent: the first dimension with two distinct values
/// mentioned supplies the sides, ordered by mention position; predicates
/// on other dimensions scope both sides identically.
fn comparison_plan(
    extractor: &Extractor,
    utterance: &Utterance,
    target: &str,
    predicates: &[(String, String)],
) -> Option<QueryPlan> {
    // All dictionary mentions with positions, not capped at one per
    // dimension like predicate extraction.
    let mut mentions: Vec<(usize, &str, &str)> = Vec::new();
    for (phrase, (dim, value)) in extractor.value_entries() {
        if let Some(pos) = utterance.find_phrase(phrase) {
            // Longest-first dictionary order: a shorter phrase inside an
            // already-claimed span ("York" in "New York") is skipped.
            if mentions
                .iter()
                .any(|&(p, _, v)| pos >= p && pos + phrase.len() <= p + v.len())
            {
                continue;
            }
            mentions.push((pos, dim.as_str(), value.as_str()));
        }
    }
    mentions.sort();
    let (_, dimension, left) = *mentions
        .iter()
        .find(|(_, dim, _)| mentions.iter().filter(|(_, d, _)| d == dim).count() >= 2)?;
    let (_, _, right) = *mentions
        .iter()
        .find(|(pos, dim, value)| {
            *dim == dimension && *value != left && *pos > utterance.find_phrase(left).unwrap_or(0)
        })
        .or_else(|| {
            mentions
                .iter()
                .find(|(_, dim, value)| *dim == dimension && *value != left)
        })?;
    Some(QueryPlan::Comparison {
        target: target.to_string(),
        predicates: predicates
            .iter()
            .filter(|(dim, _)| dim != dimension)
            .cloned()
            .collect(),
        dimension: dimension.to_string(),
        left: left.to_string(),
        right: right.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqs_core::prelude::{EncodedRelation, Prior};

    fn extractor() -> Extractor {
        let relation = EncodedRelation::from_rows(
            &["season", "region"],
            "delay",
            vec![
                (vec!["Winter", "East"], 20.0),
                (vec!["Summer", "West"], 10.0),
            ],
            Prior::Constant(0.0),
        )
        .unwrap();
        Extractor::from_relation(&relation, 1).with_target_synonyms("delay", &["delays"])
    }

    #[test]
    fn supported_queries_carry_no_plan() {
        let analysis = analyze(&extractor(), "delay in Winter?");
        assert!(matches!(analysis.request, Request::Query(_)));
        assert!(analysis.plan.is_none());
    }

    #[test]
    fn conjunctive_beyond_max_length_plans_an_average() {
        // max_query_length = 1, two predicates.
        let analysis = analyze(&extractor(), "delays in winter in the east");
        assert_eq!(
            analysis.request,
            Request::Unsupported(Unsupported::Conjunctive)
        );
        assert_eq!(
            analysis.plan,
            Some(QueryPlan::Aggregate {
                target: "delay".into(),
                predicates: vec![
                    ("region".into(), "East".into()),
                    ("season".into(), "Winter".into()),
                ],
                agg: AggKind::Avg,
            })
        );
    }

    #[test]
    fn extremum_with_dimension_groups_and_unpins_it() {
        let analysis = analyze(&extractor(), "which season is worst for delays in the east");
        assert_eq!(
            analysis.request,
            Request::Unsupported(Unsupported::Extremum)
        );
        assert_eq!(
            analysis.plan,
            Some(QueryPlan::GroupExtremum {
                target: "delay".into(),
                predicates: vec![("region".into(), "East".into())],
                dimension: "season".into(),
                highest: true,
            })
        );
    }

    #[test]
    fn extremum_without_dimension_is_a_global_extreme() {
        let analysis = analyze(&extractor(), "the lowest delay in winter");
        assert_eq!(
            analysis.plan,
            Some(QueryPlan::Aggregate {
                target: "delay".into(),
                predicates: vec![("season".into(), "Winter".into())],
                agg: AggKind::Min,
            })
        );
    }

    #[test]
    fn comparison_sides_follow_mention_order() {
        let analysis = analyze(&extractor(), "compare delays for summer versus winter");
        assert_eq!(
            analysis.request,
            Request::Unsupported(Unsupported::Comparison)
        );
        assert_eq!(
            analysis.plan,
            Some(QueryPlan::Comparison {
                target: "delay".into(),
                predicates: vec![],
                dimension: "season".into(),
                left: "Summer".into(),
                right: "Winter".into(),
            })
        );
    }

    #[test]
    fn aggregates_classify_and_plan() {
        let analysis = analyze(&extractor(), "how many delays in winter");
        assert_eq!(
            analysis.request,
            Request::Unsupported(Unsupported::Aggregate)
        );
        assert_eq!(
            analysis.plan,
            Some(QueryPlan::Aggregate {
                target: "delay".into(),
                predicates: vec![("season".into(), "Winter".into())],
                agg: AggKind::Count,
            })
        );
        let total = analyze(&extractor(), "the total delay in the east");
        assert_eq!(
            total.plan,
            Some(QueryPlan::Aggregate {
                target: "delay".into(),
                predicates: vec![("region".into(), "East".into())],
                agg: AggKind::Sum,
            })
        );
        // Without a data-access anchor, aggregate cues stay chatter.
        assert_eq!(
            analyze(&extractor(), "count to ten").request,
            Request::Other
        );
    }

    #[test]
    fn single_target_deployments_default_the_target() {
        // "worst" + region value, target never named.
        let analysis = analyze(&extractor(), "which season is worst in the east");
        assert!(matches!(
            analysis.plan,
            Some(QueryPlan::GroupExtremum { ref target, .. }) if target == "delay"
        ));
    }
}
