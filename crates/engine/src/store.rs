//! The speech store: pre-generated answers and the run-time lookup.
//!
//! §III: at run time "the system maps voice queries to the most related
//! speech summary, generated during pre-processing … among all speeches
//! referencing the queried target column, the speech describing the most
//! specific data subset that contains the one referenced in the query is
//! used" — i.e. a stored speech for predicates `S ⊆ Q` with `|S ∩ Q|`
//! maximal.
//!
//! The store is sharded for concurrent traffic: speeches live in `N`
//! lock-striped hash shards selected by query hash, so pre-processing
//! writers and run-time readers contend only when they touch the same
//! shard. A per-target secondary index records which predicate-dimension
//! sets actually hold speeches, so the generalization fallback probes
//! only candidate generalizations instead of enumerating every predicate
//! subset (or scanning the map). Speeches are stored behind [`Arc`], so
//! lookups hand out references without deep-copying text and facts, and
//! delta re-summarization (see
//! [`crate::service::VoiceService::refresh_tenant`]) can assert
//! pointer stability of untouched entries.

use std::hash::BuildHasher;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use vqs_core::prelude::Instrumentation;
use vqs_relalg::hash::{FxHashMap, FxHasher};

use crate::problem::{Query, StoredSpeech};

/// Result of a store lookup. Speeches are shared via [`Arc`]: cloning a
/// lookup result never copies the speech text or facts.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// A speech pre-generated for exactly this query.
    Exact(Arc<StoredSpeech>),
    /// Fallback to the most specific generalization (some predicates
    /// dropped); carries how many predicates were kept.
    Generalized {
        /// The speech served.
        speech: Arc<StoredSpeech>,
        /// Number of query predicates the served speech retains.
        kept_predicates: usize,
    },
    /// Nothing matches (unknown target).
    Miss,
}

impl Lookup {
    /// The speech, if any.
    pub fn speech(&self) -> Option<&StoredSpeech> {
        match self {
            Lookup::Exact(s) => Some(s),
            Lookup::Generalized { speech, .. } => Some(speech),
            Lookup::Miss => None,
        }
    }
}

/// Point-in-time copy of the store's run-time counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served (exact, generalized, or miss).
    pub lookups: u64,
    /// Hash probes issued across all lookups (1 per exact probe plus 1
    /// per indexed generalization candidate).
    pub probes: u64,
    /// Lookups answered by an exact hit.
    pub exact_hits: u64,
    /// Lookups answered by a generalization.
    pub generalized_hits: u64,
    /// Lookups answered by a miss.
    pub misses: u64,
    /// Approximate resident size of the stored speeches in bytes
    /// (struct + heap estimate per entry, see
    /// [`StoredSpeech::approx_bytes`]). Computed by walking the shards
    /// at snapshot time, so it tracks the *current* contents — the
    /// scale benchmarks chart it against row count.
    pub approx_bytes: u64,
}

impl StoreStats {
    /// Accumulate another snapshot (cross-tenant aggregation in
    /// [`crate::service::ServiceStats`]).
    pub fn merge(&mut self, other: &StoreStats) {
        self.lookups += other.lookups;
        self.probes += other.probes;
        self.exact_hits += other.exact_hits;
        self.generalized_hits += other.generalized_hits;
        self.misses += other.misses;
        self.approx_bytes += other.approx_bytes;
    }
}

/// Run-time counters, updated with relaxed atomics on the lookup path.
/// One cache-line-aligned stripe per shard: every lookup writes only the
/// stripe of the shard its query hashes to, so counter updates never
/// bounce a shared line between threads working different shards.
#[repr(align(64))]
#[derive(Debug, Default)]
struct CounterStripe {
    lookups: AtomicU64,
    probes: AtomicU64,
    exact_hits: AtomicU64,
    generalized_hits: AtomicU64,
    misses: AtomicU64,
}

/// Longest query for which the fallback enumerates predicate subsets
/// (`O(2^n)`); longer queries — far beyond anything the NLQ extractor
/// emits — use a linear scan of the target's speeches instead.
const MAX_ENUMERATED_PREDICATES: usize = 16;

/// Bitmask of `query`'s predicates that `subset` retains, if
/// `subset ⊆ query` on the same target.
fn subset_mask(subset: &Query, query: &Query) -> Option<u64> {
    if subset.target() != query.target() || subset.len() > query.len() {
        return None;
    }
    let mut mask = 0u64;
    for predicate in subset.predicates() {
        let position = query.predicates().iter().position(|p| p == predicate)?;
        // Positions past 63 cannot influence the 64-bit tie-break rank;
        // specificity (the predicate count) still ranks correctly.
        if position < 64 {
            mask |= 1 << position;
        }
    }
    Some(mask)
}

/// Heap bytes behind a [`Query`]: the target string plus the predicate
/// vector and its strings (string lengths, not capacities — the stable
/// lower bound).
fn query_heap_bytes(query: &Query) -> usize {
    let mut bytes = query.target().len();
    bytes += std::mem::size_of_val(query.predicates());
    for (dim, value) in query.predicates() {
        bytes += dim.len() + value.len();
    }
    bytes
}

/// Order-sensitive hash of a predicate-dimension name set (the names are
/// already sorted by [`Query`] normalization). Keying the secondary index
/// by this hash keeps fallback membership checks allocation-free; a
/// collision merely costs one extra (missing) probe, never a wrong
/// answer.
fn dim_set_hash<'a>(names: impl Iterator<Item = &'a str>) -> u64 {
    let mut hasher = FxHasher::default();
    for name in names {
        hasher.write(name.as_bytes());
        // Separator so ["ab","c"] and ["a","bc"] cannot collide trivially.
        hasher.write_u8(0xFF);
    }
    hasher.finish()
}

/// Per-target entry of the secondary index: the predicate-dimension sets
/// that currently hold at least one speech (with a count for removal
/// bookkeeping), plus the target-column prior recorded at pre-processing
/// time (consulted by delta re-summarization).
#[derive(Debug, Default)]
struct TargetIndex {
    /// [`dim_set_hash`] of a dimension set → number of stored queries
    /// with it.
    dim_sets: FxHashMap<u64, usize>,
    /// Global target average used as the §III constant prior.
    prior: Option<f64>,
}

type Shard = RwLock<FxHashMap<Query, Arc<StoredSpeech>>>;

/// Thread-safe, sharded speech store.
///
/// Pre-processing threads insert concurrently; the voice runtime performs
/// short read-locked hash probes (§VIII-E measures lookups in
/// microseconds). No method ever holds two locks at once, so readers and
/// writers cannot deadlock regardless of interleaving; the secondary
/// index may briefly trail a concurrent insert, which only costs a
/// transiently more general answer, never a malformed one.
#[derive(Debug)]
pub struct SpeechStore {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; the shard count is a power of two.
    mask: u64,
    index: RwLock<FxHashMap<String, TargetIndex>>,
    counters: Box<[CounterStripe]>,
}

/// Default shard count: enough stripes that 8–16 mixed readers/writers
/// rarely collide, while keeping full-store scans cheap.
pub const DEFAULT_SHARDS: usize = 16;

impl Default for SpeechStore {
    fn default() -> SpeechStore {
        SpeechStore::new()
    }
}

impl SpeechStore {
    /// Empty store with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> SpeechStore {
        SpeechStore::with_shards(DEFAULT_SHARDS)
    }

    /// Empty store with at least `shards` shards (rounded up to a power
    /// of two so shard selection is a mask, not a division).
    pub fn with_shards(shards: usize) -> SpeechStore {
        let count = shards.max(1).next_power_of_two();
        SpeechStore {
            shards: (0..count).map(|_| Shard::default()).collect(),
            mask: count as u64 - 1,
            index: RwLock::default(),
            counters: (0..count).map(|_| CounterStripe::default()).collect(),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, query: &Query) -> usize {
        let hash = BuildHasherDefault::<FxHasher>::default().hash_one(query);
        (hash & self.mask) as usize
    }

    fn shard(&self, query: &Query) -> &Shard {
        &self.shards[self.shard_index(query)]
    }

    /// Insert (or replace) the answer for a query.
    pub fn insert(&self, speech: StoredSpeech) {
        self.insert_arc(Arc::new(speech));
    }

    /// Insert an already-shared speech (used by the refresh path to keep
    /// untouched entries pointer-stable).
    pub fn insert_arc(&self, speech: Arc<StoredSpeech>) {
        let query = speech.query.clone();
        let replaced = self.shard(&query).write().insert(query.clone(), speech);
        if replaced.is_none() {
            let dims = dim_set_hash(query.predicates().iter().map(|(d, _)| d.as_str()));
            let mut index = self.index.write();
            let entry = index.entry(query.target().to_string()).or_default();
            *entry.dim_sets.entry(dims).or_insert(0) += 1;
        }
    }

    /// Bulk insert.
    pub fn extend(&self, speeches: impl IntoIterator<Item = StoredSpeech>) {
        for speech in speeches {
            self.insert(speech);
        }
    }

    /// Remove the speech stored for exactly this query, if any.
    pub fn remove(&self, query: &Query) -> Option<Arc<StoredSpeech>> {
        let removed = self.shard(query).write().remove(query);
        if removed.is_some() {
            let dims = dim_set_hash(query.predicates().iter().map(|(d, _)| d.as_str()));
            let mut index = self.index.write();
            if let Some(entry) = index.get_mut(query.target()) {
                if let Some(count) = entry.dim_sets.get_mut(&dims) {
                    *count -= 1;
                    if *count == 0 {
                        entry.dim_sets.remove(&dims);
                    }
                }
            }
        }
        removed
    }

    /// Drop every speech for a target column; returns how many were
    /// removed. Also forgets the target's recorded prior, so the next
    /// [`crate::service::VoiceService::refresh_tenant`] recomputes the
    /// target from scratch.
    pub fn invalidate_target(&self, target: &str) -> usize {
        let mut removed = 0;
        for shard in self.shards.iter() {
            let mut map = shard.write();
            let before = map.len();
            map.retain(|query, _| query.target() != target);
            removed += before - map.len();
        }
        self.index.write().remove(target);
        removed
    }

    /// Record the target-column prior used when this target's speeches
    /// were generated (the paper's constant global average).
    pub fn set_target_prior(&self, target: &str, prior: f64) {
        self.index
            .write()
            .entry(target.to_string())
            .or_default()
            .prior = Some(prior);
    }

    /// The recorded prior for a target, if it was ever pre-processed.
    pub fn target_prior(&self, target: &str) -> Option<f64> {
        self.index.read().get(target).and_then(|entry| entry.prior)
    }

    /// Number of stored speeches.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.read().len()).sum()
    }

    /// True when no speeches are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|shard| shard.read().is_empty())
    }

    /// Exact lookup only (not counted in the run-time stats).
    pub fn get(&self, query: &Query) -> Option<Arc<StoredSpeech>> {
        self.shard(query).read().get(query).cloned()
    }

    /// The §III run-time lookup with most-specific-generalization
    /// fallback. Instead of probing all `2^n` predicate subsets, only
    /// subsets whose dimension set holds at least one speech (per the
    /// secondary index) are probed, in decreasing-specificity order with
    /// the same tie-break as [`Query::generalizations`].
    pub fn lookup(&self, query: &Query) -> Lookup {
        // One hash selects both the shard and the counter stripe.
        let shard_index = self.shard_index(query);
        let stripe = &self.counters[shard_index];
        stripe.lookups.fetch_add(1, Ordering::Relaxed);
        stripe.probes.fetch_add(1, Ordering::Relaxed);
        if let Some(speech) = self.shards[shard_index].read().get(query).cloned() {
            stripe.exact_hits.fetch_add(1, Ordering::Relaxed);
            return Lookup::Exact(speech);
        }
        // Queries long enough that the 2^n subset enumeration would hurt
        // fall back to one linear scan of the target's speeches instead.
        if query.len() > MAX_ENUMERATED_PREDICATES {
            return self.lookup_by_scan(query, stripe);
        }
        // Select the candidate masks under the index read lock alone
        // (never while holding a shard lock: lock-order freedom from
        // deadlock), in generalizations() order — decreasing predicate
        // count, then decreasing mask. One pass over the masks, bucketed
        // by predicate count; the full mask was probed exactly above.
        let n = query.len() as u32;
        let by_size: Option<Vec<Vec<u64>>> = {
            let index = self.index.read();
            index.get(query.target()).map(|entry| {
                let mut by_size: Vec<Vec<u64>> = vec![Vec::new(); n as usize + 1];
                for mask in (0..(1u64 << n)).rev().skip(1) {
                    let names = query
                        .predicates()
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, (d, _))| d.as_str());
                    if entry.dim_sets.contains_key(&dim_set_hash(names)) {
                        by_size[mask.count_ones() as usize].push(mask);
                    }
                }
                by_size
            })
        };
        let Some(by_size) = by_size else {
            stripe.misses.fetch_add(1, Ordering::Relaxed);
            return Lookup::Miss;
        };
        for mask in by_size.into_iter().rev().flatten() {
            stripe.probes.fetch_add(1, Ordering::Relaxed);
            let candidate = query.predicate_subset(mask);
            if let Some(speech) = self.shard(&candidate).read().get(&candidate).cloned() {
                stripe.generalized_hits.fetch_add(1, Ordering::Relaxed);
                return Lookup::Generalized {
                    speech,
                    kept_predicates: candidate.len(),
                };
            }
        }
        stripe.misses.fetch_add(1, Ordering::Relaxed);
        Lookup::Miss
    }

    /// Generalization fallback for queries beyond
    /// [`MAX_ENUMERATED_PREDICATES`]: one scan over the target's stored
    /// speeches, ranked by (kept predicates, predicate bitmask) exactly
    /// like the enumerated walk. Linear in the target's speech count, but
    /// independent of `2^n`.
    fn lookup_by_scan(&self, query: &Query, stripe: &CounterStripe) -> Lookup {
        let mut best: Option<(usize, u64, Arc<StoredSpeech>)> = None;
        for shard in self.shards.iter() {
            for speech in shard.read().values() {
                let Some(mask) = subset_mask(&speech.query, query) else {
                    continue;
                };
                stripe.probes.fetch_add(1, Ordering::Relaxed);
                let rank = (speech.query.len(), mask);
                if best.as_ref().is_none_or(|(len, m, _)| rank > (*len, *m)) {
                    best = Some((rank.0, rank.1, Arc::clone(speech)));
                }
            }
        }
        match best {
            Some((kept_predicates, _, speech)) => {
                stripe.generalized_hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Generalized {
                    speech,
                    kept_predicates,
                }
            }
            None => {
                stripe.misses.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss
            }
        }
    }

    /// All stored speeches for a target column (diagnostics / studies).
    pub fn speeches_for_target(&self, target: &str) -> Vec<Arc<StoredSpeech>> {
        self.shards
            .iter()
            .flat_map(|shard| {
                shard
                    .read()
                    .values()
                    .filter(|s| s.query.target() == target)
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Snapshot of every stored query (unordered).
    pub fn queries(&self) -> Vec<Query> {
        self.shards
            .iter()
            .flat_map(|shard| shard.read().keys().cloned().collect::<Vec<_>>())
            .collect()
    }

    /// Canonical snapshot of the whole store, sorted by query; two stores
    /// with equal contents produce equal snapshots regardless of shard
    /// count or insertion order.
    pub fn snapshot(&self) -> Vec<Arc<StoredSpeech>> {
        let mut speeches: Vec<Arc<StoredSpeech>> = self
            .shards
            .iter()
            .flat_map(|shard| shard.read().values().cloned().collect::<Vec<_>>())
            .collect();
        speeches.sort_by(|a, b| a.query.cmp(&b.query));
        speeches
    }

    /// Point-in-time copy of the run-time counters (summed over the
    /// per-shard stripes), plus the walked byte footprint.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        for stripe in self.counters.iter() {
            stats.lookups += stripe.lookups.load(Ordering::Relaxed);
            stats.probes += stripe.probes.load(Ordering::Relaxed);
            stats.exact_hits += stripe.exact_hits.load(Ordering::Relaxed);
            stats.generalized_hits += stripe.generalized_hits.load(Ordering::Relaxed);
            stats.misses += stripe.misses.load(Ordering::Relaxed);
        }
        stats.approx_bytes = self.approx_bytes() as u64;
        stats
    }

    /// Approximate resident size of the store in bytes: per-entry map
    /// overhead plus each stored speech's struct-and-heap estimate. One
    /// read-locked walk per call — a diagnostic, not a hot path.
    pub fn approx_bytes(&self) -> usize {
        let mut bytes = 0usize;
        for shard in self.shards.iter() {
            let map = shard.read();
            // Hash-map slot (key + Arc pointer + hash bookkeeping).
            bytes += map.len()
                * (std::mem::size_of::<Query>() + std::mem::size_of::<Arc<StoredSpeech>>() + 8);
            for (query, speech) in map.iter() {
                bytes += query_heap_bytes(query);
                bytes += speech.approx_bytes();
            }
        }
        bytes
    }

    /// Reset the run-time counters to zero.
    pub fn reset_stats(&self) {
        for stripe in self.counters.iter() {
            stripe.lookups.store(0, Ordering::Relaxed);
            stripe.probes.store(0, Ordering::Relaxed);
            stripe.exact_hits.store(0, Ordering::Relaxed);
            stripe.generalized_hits.store(0, Ordering::Relaxed);
            stripe.misses.store(0, Ordering::Relaxed);
        }
    }

    /// The run-time counters in [`Instrumentation`] form, so store effort
    /// composes with the pre-processing work counters.
    pub fn instrumentation(&self) -> Instrumentation {
        let stats = self.stats();
        Instrumentation {
            store_lookups: stats.lookups,
            store_probes: stats.probes,
            ..Instrumentation::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speech(target: &str, preds: &[(&str, &str)]) -> StoredSpeech {
        StoredSpeech {
            query: Query::of(target, preds),
            facts: vec![],
            text: format!("speech for {target} {preds:?}"),
            utility: 1.0,
            base_error: 2.0,
            rows: 10,
        }
    }

    fn store() -> SpeechStore {
        let store = SpeechStore::new();
        store.extend([
            speech("delay", &[]),
            speech("delay", &[("season", "Winter")]),
            speech("delay", &[("season", "Winter"), ("region", "East")]),
            speech("cancelled", &[]),
        ]);
        store
    }

    #[test]
    fn approx_bytes_grows_with_contents() {
        let empty = SpeechStore::new();
        assert_eq!(empty.approx_bytes(), 0);
        let store = store();
        let small = store.approx_bytes();
        assert!(small > 0);
        // Per-entry accounting: adding a speech strictly grows the estimate,
        // and the snapshot in `stats()` matches the direct walk.
        store.extend([speech("delay", &[("region", "South")])]);
        assert!(store.approx_bytes() > small);
        assert_eq!(store.stats().approx_bytes, store.approx_bytes() as u64);
    }

    #[test]
    fn exact_hit() {
        let store = store();
        let q = Query::of("delay", &[("season", "Winter")]);
        assert!(matches!(store.lookup(&q), Lookup::Exact(_)));
    }

    #[test]
    fn fallback_most_specific() {
        let store = store();
        // No speech for (Winter, North): falls back to Winter (1 predicate),
        // not to the overall speech (0 predicates).
        let q = Query::of("delay", &[("season", "Winter"), ("region", "North")]);
        match store.lookup(&q) {
            Lookup::Generalized {
                speech,
                kept_predicates,
            } => {
                assert_eq!(kept_predicates, 1);
                assert_eq!(speech.query, Query::of("delay", &[("season", "Winter")]));
            }
            other => panic!("expected generalized, got {other:?}"),
        }
    }

    #[test]
    fn fallback_to_overall() {
        let store = store();
        let q = Query::of("delay", &[("region", "West")]);
        match store.lookup(&q) {
            Lookup::Generalized {
                speech,
                kept_predicates,
            } => {
                assert_eq!(kept_predicates, 0);
                assert!(speech.query.is_empty());
            }
            other => panic!("expected generalized, got {other:?}"),
        }
    }

    #[test]
    fn miss_on_unknown_target() {
        let store = store();
        let q = Query::of("satisfaction", &[]);
        assert_eq!(store.lookup(&q), Lookup::Miss);
        assert!(store.lookup(&q).speech().is_none());
    }

    #[test]
    fn target_filter_and_counts() {
        let store = store();
        assert_eq!(store.len(), 4);
        assert_eq!(store.speeches_for_target("delay").len(), 3);
        assert_eq!(store.speeches_for_target("cancelled").len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(SpeechStore::with_shards(1).shard_count(), 1);
        assert_eq!(SpeechStore::with_shards(3).shard_count(), 4);
        assert_eq!(SpeechStore::with_shards(16).shard_count(), 16);
        assert_eq!(SpeechStore::new().shard_count(), DEFAULT_SHARDS);
    }

    #[test]
    fn contents_agree_across_shard_counts() {
        let reference = store().snapshot();
        for shards in [1, 2, 8, 64] {
            let sharded = SpeechStore::with_shards(shards);
            sharded.extend([
                speech("cancelled", &[]),
                speech("delay", &[("season", "Winter"), ("region", "East")]),
                speech("delay", &[]),
                speech("delay", &[("season", "Winter")]),
            ]);
            assert_eq!(sharded.len(), 4);
            assert_eq!(sharded.snapshot(), reference);
            let q = Query::of("delay", &[("season", "Winter"), ("region", "North")]);
            match sharded.lookup(&q) {
                Lookup::Generalized {
                    kept_predicates, ..
                } => assert_eq!(kept_predicates, 1),
                other => panic!("expected generalized with {shards} shards, got {other:?}"),
            }
        }
    }

    #[test]
    fn insert_replaces_without_index_drift() {
        let store = SpeechStore::new();
        store.insert(speech("delay", &[("season", "Winter")]));
        let mut updated = speech("delay", &[("season", "Winter")]);
        updated.text = "updated".to_string();
        store.insert(updated);
        assert_eq!(store.len(), 1);
        let got = store
            .get(&Query::of("delay", &[("season", "Winter")]))
            .unwrap();
        assert_eq!(got.text, "updated");
        // The index still routes fallback to the surviving entry.
        let q = Query::of("delay", &[("season", "Winter"), ("region", "East")]);
        assert!(matches!(store.lookup(&q), Lookup::Generalized { .. }));
    }

    #[test]
    fn remove_updates_index() {
        let store = store();
        let removed = store
            .remove(&Query::of("delay", &[("season", "Winter")]))
            .unwrap();
        assert_eq!(removed.query, Query::of("delay", &[("season", "Winter")]));
        assert_eq!(store.len(), 3);
        // The (season) dimension set is gone: the fallback now lands on
        // the overall speech without probing the removed combination.
        store.reset_stats();
        let q = Query::of("delay", &[("season", "Winter"), ("region", "North")]);
        match store.lookup(&q) {
            Lookup::Generalized {
                kept_predicates, ..
            } => assert_eq!(kept_predicates, 0),
            other => panic!("expected generalized, got {other:?}"),
        }
        // exact probe + overall candidate = 2 probes; the (season) subset
        // is no longer a candidate and (region) never was.
        assert_eq!(store.stats().probes, 2);
    }

    #[test]
    fn invalidate_target_clears_speeches_and_prior() {
        let store = store();
        store.set_target_prior("delay", 15.0);
        assert_eq!(store.invalidate_target("delay"), 3);
        assert_eq!(store.len(), 1);
        assert_eq!(store.target_prior("delay"), None);
        assert_eq!(store.lookup(&Query::of("delay", &[])), Lookup::Miss);
        assert!(store.get(&Query::of("cancelled", &[])).is_some());
    }

    #[test]
    fn priors_round_trip() {
        let store = SpeechStore::new();
        assert_eq!(store.target_prior("delay"), None);
        store.set_target_prior("delay", 12.5);
        assert_eq!(store.target_prior("delay"), Some(12.5));
        // Setting a prior does not fabricate speeches.
        assert!(store.is_empty());
    }

    #[test]
    fn fallback_probes_only_indexed_candidates() {
        let store = store();
        store.reset_stats();
        // 3 predicates → 8 subsets, but only {}, {season}, {season,region}
        // hold speeches; {season,daypart} etc. are never probed.
        let q = Query::of(
            "delay",
            &[
                ("season", "Winter"),
                ("region", "North"),
                ("daypart", "night"),
            ],
        );
        match store.lookup(&q) {
            Lookup::Generalized {
                kept_predicates, ..
            } => assert_eq!(kept_predicates, 1),
            other => panic!("expected generalized, got {other:?}"),
        }
        let stats = store.stats();
        // exact + (season,region) + (season) = 3 probes, far below the
        // 8 subset probes of the unindexed walk and below store size × 1
        // of a scan.
        assert_eq!(stats.probes, 3);
        assert_eq!(stats.lookups, 1);
        assert_eq!(stats.generalized_hits, 1);
        let instr = store.instrumentation();
        assert_eq!(instr.store_probes, 3);
        assert_eq!(instr.store_lookups, 1);
    }

    #[test]
    fn very_long_queries_fall_back_to_a_scan() {
        let store = store();
        // 20 predicates exceed MAX_ENUMERATED_PREDICATES; the scan path
        // must still find the most specific stored generalization.
        let mut preds: Vec<(String, String)> = (0..18)
            .map(|i| (format!("x{i:02}"), "v".to_string()))
            .collect();
        preds.push(("season".to_string(), "Winter".to_string()));
        preds.push(("region".to_string(), "East".to_string()));
        let q = Query::new("delay", preds);
        assert!(q.len() > 16);
        match store.lookup(&q) {
            Lookup::Generalized {
                speech,
                kept_predicates,
            } => {
                assert_eq!(kept_predicates, 2);
                assert_eq!(
                    speech.query,
                    Query::of("delay", &[("season", "Winter"), ("region", "East")])
                );
            }
            other => panic!("expected generalized, got {other:?}"),
        }
        // Unknown target through the scan path: a miss.
        let mut preds: Vec<(String, String)> = (0..20)
            .map(|i| (format!("x{i:02}"), "v".to_string()))
            .collect();
        preds.push(("season".to_string(), "Winter".to_string()));
        assert_eq!(
            store.lookup(&Query::new("satisfaction", preds)),
            Lookup::Miss
        );
    }

    #[test]
    fn miss_on_unknown_target_costs_one_probe() {
        let store = store();
        store.reset_stats();
        assert_eq!(
            store.lookup(&Query::of("satisfaction", &[("a", "b")])),
            Lookup::Miss
        );
        let stats = store.stats();
        assert_eq!(stats.probes, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn concurrent_inserts() {
        let store = SpeechStore::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..50 {
                        store.insert(speech("t", &[("d", &format!("v{t}_{i}"))]));
                    }
                });
            }
        });
        assert_eq!(store.len(), 200);
    }
}
