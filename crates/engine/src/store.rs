//! The speech store: pre-generated answers and the run-time lookup.
//!
//! §III: at run time "the system maps voice queries to the most related
//! speech summary, generated during pre-processing … among all speeches
//! referencing the queried target column, the speech describing the most
//! specific data subset that contains the one referenced in the query is
//! used" — i.e. a stored speech for predicates `S ⊆ Q` with `|S ∩ Q|`
//! maximal.

use parking_lot::RwLock;
use vqs_relalg::hash::FxHashMap;

use crate::problem::{Query, StoredSpeech};

/// Result of a store lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// A speech pre-generated for exactly this query.
    Exact(StoredSpeech),
    /// Fallback to the most specific generalization (some predicates
    /// dropped); carries how many predicates were kept.
    Generalized {
        /// The speech served.
        speech: StoredSpeech,
        /// Number of query predicates the served speech retains.
        kept_predicates: usize,
    },
    /// Nothing matches (unknown target).
    Miss,
}

impl Lookup {
    /// The speech, if any.
    pub fn speech(&self) -> Option<&StoredSpeech> {
        match self {
            Lookup::Exact(s) => Some(s),
            Lookup::Generalized { speech, .. } => Some(speech),
            Lookup::Miss => None,
        }
    }
}

/// Thread-safe speech store.
///
/// Pre-processing threads insert concurrently; the voice runtime performs
/// lock-free-ish reads (a brief read lock; lookups are hash probes, §VIII-E
/// measures them in microseconds).
#[derive(Debug, Default)]
pub struct SpeechStore {
    speeches: RwLock<FxHashMap<Query, StoredSpeech>>,
}

impl SpeechStore {
    /// Empty store.
    pub fn new() -> SpeechStore {
        SpeechStore::default()
    }

    /// Insert (or replace) the answer for a query.
    pub fn insert(&self, speech: StoredSpeech) {
        self.speeches.write().insert(speech.query.clone(), speech);
    }

    /// Bulk insert.
    pub fn extend(&self, speeches: impl IntoIterator<Item = StoredSpeech>) {
        let mut map = self.speeches.write();
        for speech in speeches {
            map.insert(speech.query.clone(), speech);
        }
    }

    /// Number of stored speeches.
    pub fn len(&self) -> usize {
        self.speeches.read().len()
    }

    /// True when no speeches are stored.
    pub fn is_empty(&self) -> bool {
        self.speeches.read().is_empty()
    }

    /// Exact lookup only.
    pub fn get(&self, query: &Query) -> Option<StoredSpeech> {
        self.speeches.read().get(query).cloned()
    }

    /// The §III run-time lookup with most-specific-generalization
    /// fallback.
    pub fn lookup(&self, query: &Query) -> Lookup {
        let map = self.speeches.read();
        if let Some(speech) = map.get(query) {
            return Lookup::Exact(speech.clone());
        }
        // generalizations() is ordered by decreasing predicate count, so
        // the first hit is the most specific subset S ⊆ Q.
        for candidate in query.generalizations().into_iter().skip(1) {
            if let Some(speech) = map.get(&candidate) {
                return Lookup::Generalized {
                    speech: speech.clone(),
                    kept_predicates: candidate.len(),
                };
            }
        }
        Lookup::Miss
    }

    /// All stored speeches for a target column (diagnostics / studies).
    pub fn speeches_for_target(&self, target: &str) -> Vec<StoredSpeech> {
        self.speeches
            .read()
            .values()
            .filter(|s| s.query.target() == target)
            .cloned()
            .collect()
    }

    /// Snapshot of every stored query.
    pub fn queries(&self) -> Vec<Query> {
        self.speeches.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speech(target: &str, preds: &[(&str, &str)]) -> StoredSpeech {
        StoredSpeech {
            query: Query::of(target, preds),
            facts: vec![],
            text: format!("speech for {target} {preds:?}"),
            utility: 1.0,
            base_error: 2.0,
            rows: 10,
        }
    }

    fn store() -> SpeechStore {
        let store = SpeechStore::new();
        store.extend([
            speech("delay", &[]),
            speech("delay", &[("season", "Winter")]),
            speech("delay", &[("season", "Winter"), ("region", "East")]),
            speech("cancelled", &[]),
        ]);
        store
    }

    #[test]
    fn exact_hit() {
        let store = store();
        let q = Query::of("delay", &[("season", "Winter")]);
        assert!(matches!(store.lookup(&q), Lookup::Exact(_)));
    }

    #[test]
    fn fallback_most_specific() {
        let store = store();
        // No speech for (Winter, North): falls back to Winter (1 predicate),
        // not to the overall speech (0 predicates).
        let q = Query::of("delay", &[("season", "Winter"), ("region", "North")]);
        match store.lookup(&q) {
            Lookup::Generalized {
                speech,
                kept_predicates,
            } => {
                assert_eq!(kept_predicates, 1);
                assert_eq!(speech.query, Query::of("delay", &[("season", "Winter")]));
            }
            other => panic!("expected generalized, got {other:?}"),
        }
    }

    #[test]
    fn fallback_to_overall() {
        let store = store();
        let q = Query::of("delay", &[("region", "West")]);
        match store.lookup(&q) {
            Lookup::Generalized {
                speech,
                kept_predicates,
            } => {
                assert_eq!(kept_predicates, 0);
                assert!(speech.query.is_empty());
            }
            other => panic!("expected generalized, got {other:?}"),
        }
    }

    #[test]
    fn miss_on_unknown_target() {
        let store = store();
        let q = Query::of("satisfaction", &[]);
        assert_eq!(store.lookup(&q), Lookup::Miss);
        assert!(store.lookup(&q).speech().is_none());
    }

    #[test]
    fn target_filter_and_counts() {
        let store = store();
        assert_eq!(store.len(), 4);
        assert_eq!(store.speeches_for_target("delay").len(), 3);
        assert_eq!(store.speeches_for_target("cancelled").len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn concurrent_inserts() {
        let store = SpeechStore::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..50 {
                        store.insert(speech("t", &[("d", &format!("v{t}_{i}"))]));
                    }
                });
            }
        });
        assert_eq!(store.len(), 200);
    }
}
