//! Speech realization: rendering fact sets into voice-output text.
//!
//! §III: "the speech is generated according to a simple text template …
//! Speeches are prefixed with a description of the summarized data subset."
//! The style follows Table II's deployed examples:
//!
//! > "About 80 out of 1000 elder persons identify as visually impaired.
//! >  It is 17 for adults. It is 3 for teenagers in Manhattan."

use crate::problem::{NamedFact, Query};

/// How target values are phrased.
#[derive(Debug, Clone, PartialEq)]
pub enum ValueStyle {
    /// "about 12.3 `<unit>`" (e.g. minutes).
    Unit(String),
    /// "about X out of 1000 `<noun>`" (Table II's prevalence phrasing).
    PerMille(String),
    /// "about X percent".
    Percent,
    /// Bare number.
    Plain,
}

/// A speech template for one target column.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeechTemplate {
    /// Spoken name of the target ("cancellation probability").
    pub target_phrase: String,
    /// Value phrasing.
    pub style: ValueStyle,
}

impl SpeechTemplate {
    /// Template speaking plain averages of `target`.
    pub fn plain(target: &str) -> SpeechTemplate {
        SpeechTemplate {
            target_phrase: format!("average {}", target.replace('_', " ")),
            style: ValueStyle::Plain,
        }
    }

    /// Template with a measurement unit.
    pub fn with_unit(target_phrase: &str, unit: &str) -> SpeechTemplate {
        SpeechTemplate {
            target_phrase: target_phrase.to_string(),
            style: ValueStyle::Unit(unit.to_string()),
        }
    }

    /// Table II prevalence phrasing.
    pub fn per_mille(target_phrase: &str, noun: &str) -> SpeechTemplate {
        SpeechTemplate {
            target_phrase: target_phrase.to_string(),
            style: ValueStyle::PerMille(noun.to_string()),
        }
    }

    fn value_phrase(&self, value: f64) -> String {
        let rounded = format_value(value);
        match &self.style {
            ValueStyle::Unit(unit) => format!("about {rounded} {unit}"),
            ValueStyle::PerMille(noun) => format!("about {rounded} out of 1000 {noun}"),
            ValueStyle::Percent => format!("about {rounded} percent"),
            ValueStyle::Plain => format!("about {rounded}"),
        }
    }

    /// Render a full speech: subset prefix, then one sentence per fact —
    /// the first spelled out, the rest in Table II's "It is X for Y" form.
    pub fn render(&self, query: &Query, facts: &[NamedFact]) -> String {
        let mut out = String::new();
        if !query.is_empty() {
            let parts: Vec<String> = query
                .predicates()
                .iter()
                .map(|(d, v)| format!("{} {}", d.replace('_', " "), v))
                .collect();
            out.push_str(&format!("For {}: ", parts.join(" and ")));
        }
        if facts.is_empty() {
            out.push_str(&format!(
                "No data is available on the {}.",
                self.target_phrase
            ));
            return out;
        }
        for (i, fact) in facts.iter().enumerate() {
            if i == 0 {
                out.push_str(&format!(
                    "The {} {} is {}.",
                    self.target_phrase,
                    fact.scope_phrase(),
                    self.value_phrase(fact.value)
                ));
            } else {
                out.push_str(&format!(
                    " It is {} {}.",
                    format_value(fact.value),
                    fact.scope_phrase()
                ));
            }
        }
        out
    }

    /// Render one isolated fact (used as ML-baseline training text).
    pub fn render_fact(&self, fact: &NamedFact) -> String {
        format!(
            "The {} {} is {}.",
            self.target_phrase,
            fact.scope_phrase(),
            self.value_phrase(fact.value)
        )
    }
}

/// Round to at most one decimal, dropping a trailing ".0".
pub fn format_value(value: f64) -> String {
    let rounded = (value * 10.0).round() / 10.0;
    if (rounded - rounded.round()).abs() < 1e-9 {
        format!("{}", rounded.round() as i64)
    } else {
        format!("{rounded:.1}")
    }
}

/// Estimated speaking time at a typical TTS rate (~160 words/minute) —
/// used by the runtime latency accounting of Fig. 10.
pub fn speaking_time_secs(text: &str) -> f64 {
    let words = text.split_whitespace().count();
    words as f64 * 60.0 / 160.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts() -> Vec<NamedFact> {
        vec![
            NamedFact {
                scope: vec![("age_group".into(), "elder".into())],
                value: 80.0,
                support: 40,
            },
            NamedFact {
                scope: vec![("age_group".into(), "adult".into())],
                value: 17.0,
                support: 90,
            },
            NamedFact {
                scope: vec![
                    ("age_group".into(), "teenager".into()),
                    ("borough".into(), "Manhattan".into()),
                ],
                value: 3.2,
                support: 12,
            },
        ]
    }

    #[test]
    fn renders_table2_style() {
        let template = SpeechTemplate::per_mille("visual impairment rate", "persons");
        let text = template.render(&Query::of("visual", &[]), &facts());
        assert!(text.starts_with(
            "The visual impairment rate for age group elder is about 80 out of 1000 persons."
        ));
        assert!(text.contains("It is 17 for age group adult."));
        assert!(text.contains("It is 3.2 for age group teenager and borough Manhattan."));
    }

    #[test]
    fn prefixes_subset_description() {
        let template = SpeechTemplate::with_unit("delay", "minutes");
        let query = Query::of("delay", &[("season", "Winter")]);
        let text = template.render(
            &query,
            &[NamedFact {
                scope: vec![],
                value: 15.0,
                support: 4,
            }],
        );
        assert!(text.starts_with("For season Winter: "));
        assert!(text.contains("The delay overall is about 15 minutes."));
    }

    #[test]
    fn empty_facts_explains() {
        let template = SpeechTemplate::plain("support");
        let text = template.render(&Query::of("support", &[]), &[]);
        assert!(text.contains("No data is available"));
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(80.0), "80");
        assert_eq!(format_value(3.25), "3.3");
        assert_eq!(format_value(17.04), "17");
        assert_eq!(format_value(0.0), "0");
    }

    #[test]
    fn speaking_time_scales_with_words() {
        let short = speaking_time_secs("one two three");
        let long = speaking_time_secs(&"word ".repeat(160));
        assert!(short < 2.0);
        assert!((long - 60.0).abs() < 1.0);
    }
}
