//! Extension: extremum and comparison queries.
//!
//! §VIII-D's deployment analysis found that about a third of data-access
//! requests were *unsupported*: "queries asking for maxima or for
//! relative comparisons between two data subsets (e.g., 'make a
//! comparison between job satisfaction between men and women')". The
//! paper leaves these to future work; this module implements them on top
//! of the same pre-processing philosophy — everything needed to answer is
//! computed offline, so run-time cost stays a lookup.
//!
//! * **Extremum queries** ("which airline has the most cancellations"):
//!   answered from a per-(target, dimension) index of group averages.
//! * **Comparison queries** ("compare cancellations between Winter and
//!   Summer"): answered by pairing two entries of the same index and
//!   phrasing the relative difference.

use vqs_core::prelude::EncodedRelation;
use vqs_relalg::hash::FxHashMap;

use crate::template::format_value;

/// Average target value of one dimension value's subset.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAverage {
    /// The dimension value.
    pub value: String,
    /// Average target value over its rows.
    pub average: f64,
    /// Number of rows.
    pub support: usize,
}

/// Pre-computed per-dimension group averages for one target column.
#[derive(Debug, Clone, Default)]
pub struct ExtremumIndex {
    /// dimension name → averages per value, sorted descending by average.
    groups: FxHashMap<String, Vec<GroupAverage>>,
    target_phrase: String,
}

impl ExtremumIndex {
    /// Build the index from a relation in one pass per dimension (part of
    /// the pre-processing batch; the §VIII-E amortization argument applies
    /// unchanged).
    pub fn build(relation: &EncodedRelation, target_phrase: &str) -> ExtremumIndex {
        let mut groups = FxHashMap::default();
        for d in 0..relation.dim_count() {
            let dim = &relation.dims()[d];
            let mut sums = vec![0.0f64; dim.cardinality()];
            let mut counts = vec![0usize; dim.cardinality()];
            for row in 0..relation.len() {
                let code = relation.code(d, row) as usize;
                sums[code] += relation.target(row);
                counts[code] += 1;
            }
            let mut averages: Vec<GroupAverage> = dim
                .values
                .iter()
                .enumerate()
                .filter(|&(code, _)| counts[code] > 0)
                .map(|(code, value)| GroupAverage {
                    value: value.to_string(),
                    average: sums[code] / counts[code] as f64,
                    support: counts[code],
                })
                .collect();
            averages.sort_by(|a, b| b.average.total_cmp(&a.average));
            groups.insert(dim.name.clone(), averages);
        }
        ExtremumIndex {
            groups,
            target_phrase: target_phrase.to_string(),
        }
    }

    /// Dimensions covered by the index.
    pub fn dimensions(&self) -> impl Iterator<Item = &str> {
        self.groups.keys().map(String::as_str)
    }

    /// Group averages for one dimension (descending by average).
    pub fn averages(&self, dimension: &str) -> Option<&[GroupAverage]> {
        self.groups.get(dimension).map(Vec::as_slice)
    }

    /// Answer an extremum question over `dimension`: the highest and
    /// lowest group, phrased for voice output.
    pub fn answer_extremum(&self, dimension: &str, highest: bool) -> Option<String> {
        let averages = self.groups.get(dimension)?;
        let (first, last) = (averages.first()?, averages.last()?);
        let (focus, other) = if highest {
            (first, last)
        } else {
            (last, first)
        };
        let spoken_dim = dimension.replace('_', " ");
        Some(format!(
            "Among {spoken_dim} groups, {} has the {} {} at about {}; {} has the {} at about {}.",
            focus.value,
            if highest { "highest" } else { "lowest" },
            self.target_phrase,
            format_value(focus.average),
            other.value,
            if highest { "lowest" } else { "highest" },
            format_value(other.average),
        ))
    }

    /// Answer a comparison between two values of the same dimension.
    pub fn answer_comparison(&self, dimension: &str, a: &str, b: &str) -> Option<String> {
        let averages = self.groups.get(dimension)?;
        let find = |value: &str| averages.iter().find(|g| g.value == value);
        let (ga, gb) = (find(a)?, find(b)?);
        let relation = if (ga.average - gb.average).abs() < 1e-9 {
            format!("about the same {} as", self.target_phrase)
        } else if ga.average > gb.average {
            describe_factor(ga.average, gb.average, &self.target_phrase)
        } else {
            format!("lower {} than", self.target_phrase)
        };
        Some(format!(
            "{} has {relation} {}: about {} versus {}.",
            ga.value,
            gb.value,
            format_value(ga.average),
            format_value(gb.average),
        ))
    }

    /// Find the dimension owning a value (for comparison extraction).
    pub fn dimension_of_value(&self, value: &str) -> Option<(&str, &GroupAverage)> {
        for (dim, averages) in &self.groups {
            if let Some(g) = averages
                .iter()
                .find(|g| g.value.eq_ignore_ascii_case(value))
            {
                return Some((dim.as_str(), g));
            }
        }
        None
    }

    /// Try to answer a raw comparison utterance by finding two known
    /// values of the same dimension in the text.
    pub fn answer_comparison_text(&self, text: &str) -> Option<String> {
        let lower = text.to_lowercase();
        for (dim, averages) in &self.groups {
            let mut found: Vec<&GroupAverage> = Vec::new();
            for group in averages {
                if lower.contains(&group.value.to_lowercase()) {
                    found.push(group);
                    if found.len() == 2 {
                        return self.answer_comparison(dim, &found[0].value, &found[1].value);
                    }
                }
            }
        }
        None
    }

    /// Try to answer a raw extremum utterance: detect polarity and a
    /// mentioned dimension name.
    pub fn answer_extremum_text(&self, text: &str) -> Option<String> {
        let lower = text.to_lowercase();
        let highest = ["most", "highest", "max", "maximum", "worst"]
            .iter()
            .any(|cue| lower.contains(cue));
        let lowest = ["least", "lowest", "min", "minimum", "best"]
            .iter()
            .any(|cue| lower.contains(cue));
        if !highest && !lowest {
            return None;
        }
        for dim in self.groups.keys() {
            let spoken = dim.replace('_', " ").to_lowercase();
            if lower.contains(&spoken) {
                return self.answer_extremum(dim, highest || !lowest);
            }
        }
        None
    }
}

fn describe_factor(higher: f64, lower: f64, target: &str) -> String {
    if lower > 0.0 {
        let factor = higher / lower;
        if factor >= 1.5 {
            return format!("about {} times the {target} of", format_value(factor));
        }
    }
    format!("higher {target} than")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqs_core::prelude::Prior;

    fn relation() -> EncodedRelation {
        EncodedRelation::from_rows(
            &["airline", "season"],
            "cancelled",
            vec![
                (vec!["Delta", "Winter"], 60.0),
                (vec!["Delta", "Summer"], 40.0),
                (vec!["United", "Winter"], 30.0),
                (vec!["United", "Summer"], 10.0),
                (vec!["Alaska", "Winter"], 10.0),
                (vec!["Alaska", "Summer"], 10.0),
            ],
            Prior::Constant(0.0),
        )
        .unwrap()
    }

    fn index() -> ExtremumIndex {
        ExtremumIndex::build(&relation(), "cancellation probability")
    }

    #[test]
    fn averages_sorted_descending() {
        let index = index();
        let airlines = index.averages("airline").unwrap();
        let values: Vec<&str> = airlines.iter().map(|g| g.value.as_str()).collect();
        assert_eq!(values, vec!["Delta", "United", "Alaska"]);
        assert_eq!(airlines[0].average, 50.0);
        assert_eq!(airlines[2].average, 10.0);
        assert_eq!(airlines[0].support, 2);
    }

    #[test]
    fn extremum_answers_both_polarities() {
        let index = index();
        let highest = index.answer_extremum("airline", true).unwrap();
        assert!(highest.contains("Delta has the highest"));
        assert!(highest.contains("Alaska has the lowest"));
        let lowest = index.answer_extremum("airline", false).unwrap();
        assert!(lowest.contains("Alaska has the lowest"));
        assert!(index.answer_extremum("unknown_dim", true).is_none());
    }

    #[test]
    fn comparison_phrases_relative_difference() {
        let index = index();
        let text = index
            .answer_comparison("airline", "Delta", "Alaska")
            .unwrap();
        // 50 / 10 = 5x.
        assert!(text.contains("5 times"), "{text}");
        assert!(text.contains("50") && text.contains("10"));
        let text = index
            .answer_comparison("airline", "Alaska", "Delta")
            .unwrap();
        assert!(text.contains("lower"));
        assert!(index
            .answer_comparison("airline", "Delta", "Nonexistent")
            .is_none());
    }

    #[test]
    fn text_extraction_for_comparisons() {
        let index = index();
        let text = index
            .answer_comparison_text("compare cancellations between Delta and United")
            .unwrap();
        assert!(text.contains("Delta"));
        assert!(text.contains("United"));
        // One value only: no answer.
        assert!(index
            .answer_comparison_text("compare Delta with something")
            .is_none());
    }

    #[test]
    fn text_extraction_for_extrema() {
        let index = index();
        let text = index
            .answer_extremum_text("which airline has the most cancellations")
            .unwrap();
        assert!(text.contains("Delta has the highest"));
        let text = index
            .answer_extremum_text("which season is best for avoiding cancellations")
            .unwrap();
        assert!(text.contains("lowest"));
        assert!(index.answer_extremum_text("tell me a joke").is_none());
    }

    #[test]
    fn dimension_of_value_lookup() {
        let index = index();
        let (dim, group) = index.dimension_of_value("winter").unwrap();
        assert_eq!(dim, "season");
        assert!(group.average > 0.0);
        assert!(index.dimension_of_value("mars").is_none());
    }
}
