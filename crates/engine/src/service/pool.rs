//! The shared, long-lived solver worker pool.
//!
//! Pre-processing used to spawn a scoped thread pool per `preprocess` /
//! `refresh` call; at service scale (many tenants, frequent µs-scale
//! delta refreshes) the spawn cost dominates the small batches. The
//! [`SolverPool`] keeps its workers parked on a condition variable
//! between batches, so every tenant's pre-processing and refresh traffic
//! reuses the same threads (the ROADMAP's "cross-problem solver pool").
//!
//! The pool executes *scatter* batches: [`SolverPool::scatter`] enqueues
//! `n` closures sharing the caller's borrows and blocks until all of
//! them finished, which is exactly the shape of the work-stealing job
//! loop in [`crate::generator`]. Because scatter is a rendezvous — the
//! submitting thread cannot return before every task completed — the
//! closures may safely borrow from the submitting stack frame even
//! though the queue itself is `'static`.
//!
//! Batches carry a [`ScatterPriority`]: the queue holds two lanes and
//! workers always drain the [`ScatterPriority::Interactive`] lane before
//! touching [`ScatterPriority::Bulk`] jobs. Delta refreshes (small,
//! latency-sensitive) ride the interactive lane while whole-dataset
//! registrations are tagged bulk, so a large registration queued first
//! can no longer delay a µs-scale refresh behind it (the ROADMAP's
//! "pool back-pressure & priorities" follow-on).
//!
//! ```
//! use vqs_engine::service::{ScatterPriority, SolverPool};
//!
//! let pool = SolverPool::new(2);
//! let squares = pool.scatter(4, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9]);
//! // Same rendezvous, but queued behind any interactive batch:
//! let sums = pool.scatter_at(ScatterPriority::Bulk, 3, |i| i + 1);
//! assert_eq!(sums, vec![1, 2, 3]);
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use vqs_core::algorithms::SearchExecutor;

thread_local! {
    /// Identity of the pool whose worker loop owns this thread, if any.
    /// Lets [`SolverPool::on_worker_thread`] detect a nested fan-out
    /// (a solver running *inside* a scatter job asking the same pool for
    /// more workers) so it degrades to inline execution instead of
    /// queueing jobs its own rendezvous would deadlock on.
    static ACTIVE_POOL: Cell<*const ()> = const { Cell::new(std::ptr::null()) };
}

/// A queued unit of work. Lifetimes are erased on submission; safety is
/// re-established by the scatter rendezvous (see [`SolverPool::scatter`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Which lane a scatter batch is queued on. Workers exhaust the
/// `Interactive` lane before popping any `Bulk` job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScatterPriority {
    /// Latency-sensitive batches (delta refreshes): always served first.
    Interactive,
    /// Throughput batches (whole-dataset registrations): served only
    /// when no interactive work is queued.
    Bulk,
}

/// The two scatter lanes, behind one lock so a pop observes both
/// consistently.
#[derive(Default)]
struct JobQueues {
    interactive: VecDeque<Job>,
    bulk: VecDeque<Job>,
}

impl JobQueues {
    fn pop(&mut self) -> Option<Job> {
        self.interactive
            .pop_front()
            .or_else(|| self.bulk.pop_front())
    }

    fn lane(&mut self, priority: ScatterPriority) -> &mut VecDeque<Job> {
        match priority {
            ScatterPriority::Interactive => &mut self.interactive,
            ScatterPriority::Bulk => &mut self.bulk,
        }
    }
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    queue: Mutex<JobQueues>,
    job_ready: Condvar,
    shutdown: AtomicBool,
}

/// Completion state of one scatter batch. Heap-allocated (`Arc`) so a
/// worker finishing a task after the submitting thread already woke up
/// only ever touches live memory.
struct Scatter<T> {
    /// One slot per task; `Err` carries a captured panic payload.
    results: Mutex<Vec<Option<std::thread::Result<T>>>>,
    /// Tasks not yet finished; the batch rendezvous.
    remaining: Mutex<usize>,
    done: Condvar,
}

/// A fixed set of worker threads executing scatter batches; workers park
/// between batches instead of being respawned per call.
pub struct SolverPool {
    shared: Arc<Shared>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for SolverPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverPool")
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl SolverPool {
    /// Spawn a pool with `workers` threads (`0` = all available cores).
    pub fn new(workers: usize) -> SolverPool {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            workers
        };
        let shared = Arc::new(Shared {
            queue: Mutex::new(JobQueues::default()),
            job_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vqs-solver-{index}"))
                    .spawn(move || {
                        ACTIVE_POOL.set(Arc::as_ptr(&shared) as *const ());
                        worker_loop(&shared)
                    })
                    .expect("spawn solver worker")
            })
            .collect();
        SolverPool {
            shared,
            workers,
            handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Jobs currently queued (not yet picked up) on the
    /// (interactive, bulk) lanes — a scheduling diagnostic for tests
    /// and load monitors, racy by nature.
    pub fn queued(&self) -> (usize, usize) {
        let queues = self.shared.queue.lock().expect("pool queue poisoned");
        (queues.interactive.len(), queues.bulk.len())
    }

    /// Whether the calling thread is one of this pool's workers — i.e. we
    /// are already *inside* a scatter job of this very pool.
    pub fn on_worker_thread(&self) -> bool {
        ACTIVE_POOL.get() == Arc::as_ptr(&self.shared) as *const ()
    }

    /// Run `task(0..tasks)` on the pool at interactive priority and
    /// return the results in task order. Blocks until every task
    /// finished; a panicking task is re-raised on the calling thread
    /// after the whole batch completed, so the pool itself always stays
    /// usable.
    ///
    /// The closure (and its captures, and `T`) may borrow from the
    /// caller's stack: the rendezvous guarantees those borrows outlive
    /// every use inside the pool.
    pub fn scatter<'env, T, F>(&self, tasks: usize, task: F) -> Vec<T>
    where
        T: Send + 'env,
        F: Fn(usize) -> T + Sync + 'env,
    {
        self.scatter_at(ScatterPriority::Interactive, tasks, task)
    }

    /// [`SolverPool::scatter`] with an explicit lane: `Bulk` batches are
    /// only popped while no `Interactive` job is queued.
    pub fn scatter_at<'env, T, F>(&self, priority: ScatterPriority, tasks: usize, task: F) -> Vec<T>
    where
        T: Send + 'env,
        F: Fn(usize) -> T + Sync + 'env,
    {
        if tasks == 0 {
            return Vec::new();
        }
        let state: Arc<Scatter<T>> = Arc::new(Scatter {
            results: Mutex::new((0..tasks).map(|_| None).collect()),
            remaining: Mutex::new(tasks),
            done: Condvar::new(),
        });
        let task = &task;
        {
            let mut queues = self.shared.queue.lock().expect("pool queue poisoned");
            let queue = queues.lane(priority);
            for index in 0..tasks {
                let state = Arc::clone(&state);
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(|| task(index)));
                    state.results.lock().expect("scatter results poisoned")[index] = Some(outcome);
                    // The countdown is the job's last touch of batch
                    // state; notifying under the lock pairs with the
                    // re-acquisition inside `wait` below, so the waiter
                    // cannot observe zero before this job released it.
                    let mut remaining = state.remaining.lock().expect("scatter remaining poisoned");
                    *remaining -= 1;
                    if *remaining == 0 {
                        state.done.notify_all();
                    }
                });
                // SAFETY: only the lifetime is transmuted away. The wait
                // loop below blocks until `remaining` reaches zero, which
                // each job decrements strictly after its last use of the
                // borrowed closure; the `Scatter` state itself is
                // Arc-owned, so late per-job `Arc` drops touch only heap
                // memory. Borrows from the caller's frame therefore
                // cannot be observed dangling.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
                queue.push_back(job);
            }
            self.shared.job_ready.notify_all();
        }

        let mut remaining = state.remaining.lock().expect("scatter remaining poisoned");
        while *remaining > 0 {
            remaining = state
                .done
                .wait(remaining)
                .expect("scatter remaining poisoned");
        }
        drop(remaining);

        let slots = std::mem::take(&mut *state.results.lock().expect("scatter results poisoned"));
        slots
            .into_iter()
            .map(|slot| match slot.expect("scatter task never ran") {
                Ok(value) => value,
                Err(panic) => resume_unwind(panic),
            })
            .collect()
    }
}

impl Drop for SolverPool {
    fn drop(&mut self) {
        // Set the flag while holding the queue lock: a worker is either
        // before its lock acquisition (it will observe the flag), inside
        // `wait` (the notify below wakes it), or still holding the lock
        // (this store is delayed until it released it by waiting) —
        // never in the load-flag→wait window where a lockless store
        // would lose the wakeup and deadlock the join below.
        {
            let _queue = self.shared.queue.lock().expect("pool queue poisoned");
            self.shared.shutdown.store(true, Ordering::Relaxed);
        }
        self.shared.job_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The pool as a solver-search fan-out target: exact and greedy
/// summarizers hand their inner-search tasks here instead of spawning
/// scoped threads per call, so search parallelism shares the same parked
/// workers as cross-query pre-processing.
///
/// A search that is *itself* running inside one of this pool's scatter
/// jobs (pre-processing fans over queries, each query's solver fans over
/// branches) must not enqueue sub-tasks and block on them: with all
/// workers occupied by searches, nobody would ever pop the sub-tasks and
/// the rendezvous would deadlock. [`SolverPool::on_worker_thread`]
/// detects that nesting and runs the batch inline on the caller — the
/// outer scatter already owns the parallelism.
impl SearchExecutor for SolverPool {
    fn max_workers(&self) -> usize {
        self.workers
    }

    fn run(&self, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if tasks == 1 || self.on_worker_thread() {
            for index in 0..tasks {
                task(index);
            }
            return;
        }
        // Interactive lane: search fan-outs serve a caller who is
        // blocked on the rendezvous right now.
        self.scatter(tasks, task);
    }
}

/// Worker body: drain the queue, park on the condvar between batches,
/// exit once shut down with an empty queue.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queues = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queues.pop() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Relaxed) {
                    break None;
                }
                queues = shared.job_ready.wait(queues).expect("pool queue poisoned");
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn scatter_returns_results_in_task_order() {
        let pool = SolverPool::new(4);
        let results = pool.scatter(16, |i| i * i);
        assert_eq!(results, (0..16).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_may_borrow_the_callers_stack() {
        let pool = SolverPool::new(2);
        let data: Vec<u64> = (0..100).collect();
        let counter = AtomicUsize::new(0);
        let sums = pool.scatter(5, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            data[i * 20..(i + 1) * 20].iter().sum::<u64>()
        });
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
        assert_eq!(counter.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn pool_survives_many_batches() {
        let pool = SolverPool::new(3);
        for round in 0..50usize {
            let results = pool.scatter(7, move |i| round + i);
            assert_eq!(results.len(), 7);
            assert_eq!(results[0], round);
        }
    }

    #[test]
    fn more_tasks_than_workers_all_complete() {
        let pool = SolverPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.scatter(64, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn panicking_task_propagates_after_the_batch() {
        let pool = SolverPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scatter(4, |i| {
                if i == 2 {
                    panic!("injected task failure");
                }
                i
            })
        }));
        assert!(result.is_err());
        // The pool is still usable after a panicked batch.
        assert_eq!(pool.scatter(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn concurrent_scatters_from_many_threads() {
        let pool = SolverPool::new(4);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let pool = &pool;
                scope.spawn(move || {
                    for _ in 0..20 {
                        let out = pool.scatter(5, move |i| t * 1000 + i);
                        assert_eq!(out, (0..5).map(|i| t * 1000 + i).collect::<Vec<_>>());
                    }
                });
            }
        });
    }

    #[test]
    fn zero_workers_means_available_parallelism() {
        let pool = SolverPool::new(0);
        assert!(pool.workers() >= 1);
        assert_eq!(pool.scatter(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn bulk_scatter_returns_results_in_task_order() {
        let pool = SolverPool::new(2);
        let results = pool.scatter_at(ScatterPriority::Bulk, 8, |i| i * 3);
        assert_eq!(results, (0..8).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn search_executor_runs_every_task() {
        let pool = SolverPool::new(2);
        let executor: &dyn SearchExecutor = &pool;
        assert_eq!(executor.max_workers(), 2);
        let hits = AtomicUsize::new(0);
        executor.run(9, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 9);
        executor.run(0, &|_| panic!("no tasks expected"));
    }

    /// A fan-out issued from *inside* a scatter job of the same pool must
    /// run inline: with a single worker, enqueueing sub-tasks and blocking
    /// on them would deadlock the rendezvous forever.
    #[test]
    fn nested_search_fan_out_runs_inline_without_deadlock() {
        let pool = SolverPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.scatter(1, |_| {
            assert!(pool.on_worker_thread());
            let executor: &dyn SearchExecutor = &pool;
            executor.run(4, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        assert!(!pool.on_worker_thread());
    }

    /// Worker threads of one pool are not mistaken for another pool's.
    #[test]
    fn worker_thread_detection_is_per_pool() {
        let a = SolverPool::new(1);
        let b = SolverPool::new(1);
        a.scatter(1, |_| {
            assert!(a.on_worker_thread());
            assert!(!b.on_worker_thread());
        });
    }

    /// Interactive jobs enqueued *after* bulk jobs still run first: with
    /// the single worker parked on a gate job, a bulk batch and then an
    /// interactive batch are queued (observed via `queued()`), and the
    /// recorded execution order shows the interactive lane drained
    /// before the bulk lane.
    #[test]
    fn interactive_lane_preempts_queued_bulk_jobs() {
        let pool = Arc::new(SolverPool::new(1));
        let gate = Arc::new((Mutex::new(true), Condvar::new()));
        let entered = Arc::new(AtomicUsize::new(0));
        let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));

        let gate_worker = {
            let (pool, gate, entered) =
                (Arc::clone(&pool), Arc::clone(&gate), Arc::clone(&entered));
            std::thread::spawn(move || {
                pool.scatter(1, |_| {
                    entered.fetch_add(1, Ordering::SeqCst);
                    let (closed, released) = &*gate;
                    let mut closed = closed.lock().unwrap();
                    while *closed {
                        closed = released.wait(closed).unwrap();
                    }
                });
            })
        };
        while entered.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }

        let bulk_worker = {
            let (pool, order) = (Arc::clone(&pool), Arc::clone(&order));
            std::thread::spawn(move || {
                pool.scatter_at(ScatterPriority::Bulk, 2, |_| {
                    order.lock().unwrap().push("bulk");
                });
            })
        };
        while pool.queued().1 < 2 {
            std::thread::yield_now();
        }
        let interactive_worker = {
            let (pool, order) = (Arc::clone(&pool), Arc::clone(&order));
            std::thread::spawn(move || {
                pool.scatter(2, |_| {
                    order.lock().unwrap().push("interactive");
                });
            })
        };
        while pool.queued().0 < 2 {
            std::thread::yield_now();
        }

        let (closed, released) = &*gate;
        *closed.lock().unwrap() = false;
        released.notify_all();
        gate_worker.join().unwrap();
        bulk_worker.join().unwrap();
        interactive_worker.join().unwrap();
        assert_eq!(
            *order.lock().unwrap(),
            vec!["interactive", "interactive", "bulk", "bulk"]
        );
    }
}
