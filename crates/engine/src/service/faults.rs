//! Deterministic fault injection for the serving stack.
//!
//! A [`FaultPlan`] is a seeded, deterministic schedule of faults imposed
//! at named sites inside the service ([`FaultSite`]). The chaos suite
//! arms a plan against a live [`VoiceService`](crate::service::VoiceService)
//! and then asserts the serving invariants hold — every ticket completes,
//! workers survive injected panics, refreshes stay fail-atomic — while the
//! plan injects latency, panics, and forced solver timeouts.
//!
//! Determinism contract: whether the *i*-th draw at a given site fires is
//! a pure function of `(seed, site, i, rule)`. Each site keeps its own
//! atomic draw counter, so the schedule at one site does not depend on
//! thread interleaving at another. (The *assignment* of draws to requests
//! still depends on arrival order; tests that need a specific request to
//! fault pin the worker count or use [`Trigger::Every`] with a single
//! lane.)

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// A named injection point inside the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Entry of the respond path (front-end worker or direct call).
    Respond,
    /// The live-solve step of the respond path (degradation ladder).
    RespondSolve,
    /// Entry of [`refresh_tenant`](crate::service::VoiceService::refresh_tenant).
    Refresh,
    /// Entry of [`register_dataset`](crate::service::VoiceService::register_dataset).
    Register,
    /// Entry of [`ingest`](crate::service::VoiceService::ingest) (and
    /// the other streaming-delta entry points), *before* any delta is
    /// accepted into the log — so an injected fault never leaves a batch
    /// partially applied, and a retried submission never double-applies.
    Ingest,
}

impl FaultSite {
    /// Stable lowercase name used in injected panic messages and errors.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Respond => "respond",
            FaultSite::RespondSolve => "respond-solve",
            FaultSite::Refresh => "refresh",
            FaultSite::Register => "register",
            FaultSite::Ingest => "ingest",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::Respond => 0,
            FaultSite::RespondSolve => 1,
            FaultSite::Refresh => 2,
            FaultSite::Register => 3,
            FaultSite::Ingest => 4,
        }
    }
}

const SITE_COUNT: usize = 5;

/// What an armed rule does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Sleep for the given duration before proceeding.
    Latency(Duration),
    /// Panic with a message naming the site (containment is the caller's
    /// responsibility — the front-end catches these, direct calls don't).
    Panic,
    /// Report a forced solver timeout: the respond path treats the live
    /// solve as timed out (degrading to greedy), the control paths map it
    /// to a typed internal error.
    SolverTimeout,
}

/// When a rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on each draw independently with this probability.
    Probability(f64),
    /// Fire on every `n`-th draw at the site (draws `n-1`, `2n-1`, …).
    Every(u64),
}

#[derive(Debug, Clone)]
struct Rule {
    fault: Fault,
    trigger: Trigger,
}

/// A seeded, deterministic schedule of injected faults.
///
/// Plans start **disarmed**: every site check is a single relaxed atomic
/// load until [`FaultPlan::arm`] is called, so a plan can be threaded
/// through a service unconditionally at negligible cost.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    armed: AtomicBool,
    rules: [Vec<Rule>; SITE_COUNT],
    draws: [AtomicU64; SITE_COUNT],
    injected: AtomicU64,
}

impl FaultPlan {
    /// A new, disarmed plan with no rules.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            armed: AtomicBool::new(false),
            rules: std::array::from_fn(|_| Vec::new()),
            draws: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: AtomicU64::new(0),
        }
    }

    /// Add a probabilistic rule: at `site`, impose `fault` on each draw
    /// independently with probability `probability` (clamped to `[0, 1]`).
    pub fn rule(mut self, site: FaultSite, fault: Fault, probability: f64) -> Self {
        self.rules[site.index()].push(Rule {
            fault,
            trigger: Trigger::Probability(probability.clamp(0.0, 1.0)),
        });
        self
    }

    /// Add a periodic rule: at `site`, impose `fault` on every `n`-th
    /// draw (`n` of 0 is treated as 1, i.e. every draw).
    pub fn rule_every(mut self, site: FaultSite, fault: Fault, n: u64) -> Self {
        self.rules[site.index()].push(Rule {
            fault,
            trigger: Trigger::Every(n.max(1)),
        });
        self
    }

    /// Start imposing faults.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Stop imposing faults (draw counters keep their positions).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Whether the plan is currently imposing faults.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Total faults imposed since construction (all sites, all kinds).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Decide which fault (if any) the next draw at `site` imposes.
    ///
    /// Draw counters advance only while armed, so a disarmed plan is
    /// re-armable without perturbing the schedule positions.
    fn decide(&self, site: FaultSite) -> Option<Fault> {
        if !self.is_armed() {
            return None;
        }
        let s = site.index();
        let rules = &self.rules[s];
        if rules.is_empty() {
            return None;
        }
        let draw = self.draws[s].fetch_add(1, Ordering::Relaxed);
        for (r, rule) in rules.iter().enumerate() {
            let fires = match rule.trigger {
                Trigger::Probability(p) => {
                    // splitmix64-style mix of (seed, site, draw, rule):
                    // pure, so the i-th draw at a site is deterministic
                    // regardless of which thread performs it.
                    let mut z = self
                        .seed
                        .wrapping_add((s as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        .wrapping_add(draw.wrapping_mul(0xBF58_476D_1CE4_E5B9))
                        .wrapping_add((r as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^= z >> 31;
                    ((z >> 11) as f64 / (1u64 << 53) as f64) < p
                }
                Trigger::Every(n) => draw % n == n - 1,
            };
            if fires {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Some(rule.fault);
            }
        }
        None
    }

    /// Impose the next scheduled fault at `site`, if any.
    ///
    /// Latency faults sleep here; panic faults panic with a message
    /// naming the site; solver-timeout faults return `true` so the
    /// caller can simulate an expired solve. Returns `false` when no
    /// fault fires.
    pub fn impose(&self, site: FaultSite) -> bool {
        match self.decide(site) {
            None => false,
            Some(Fault::Latency(d)) => {
                std::thread::sleep(d);
                false
            }
            Some(Fault::Panic) => {
                panic!("injected fault: panic at {}", site.name())
            }
            Some(Fault::SolverTimeout) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_plan_never_fires() {
        let plan = FaultPlan::new(7).rule(FaultSite::Respond, Fault::Panic, 1.0);
        for _ in 0..100 {
            assert!(!plan.impose(FaultSite::Respond));
        }
        assert_eq!(plan.injected(), 0);
    }

    #[test]
    fn probability_schedule_is_deterministic_per_seed() {
        let fires = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::new(seed).rule(FaultSite::Refresh, Fault::SolverTimeout, 0.5);
            plan.arm();
            (0..64).map(|_| plan.impose(FaultSite::Refresh)).collect()
        };
        assert_eq!(fires(42), fires(42));
        assert_ne!(fires(42), fires(43));
        // ~0.5 probability actually fires a plausible fraction.
        let n = fires(42).iter().filter(|&&f| f).count();
        assert!((16..=48).contains(&n), "fired {n}/64");
    }

    #[test]
    fn every_n_fires_on_exact_draws() {
        let plan = FaultPlan::new(0).rule_every(FaultSite::Register, Fault::SolverTimeout, 3);
        plan.arm();
        let fired: Vec<bool> = (0..9).map(|_| plan.impose(FaultSite::Register)).collect();
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(plan.injected(), 3);
    }

    #[test]
    fn sites_draw_independently() {
        let plan = FaultPlan::new(5)
            .rule_every(FaultSite::Respond, Fault::SolverTimeout, 2)
            .rule_every(FaultSite::Refresh, Fault::SolverTimeout, 2);
        plan.arm();
        // Interleaved draws: each site sees its own counter.
        assert!(!plan.impose(FaultSite::Respond));
        assert!(!plan.impose(FaultSite::Refresh));
        assert!(plan.impose(FaultSite::Respond));
        assert!(plan.impose(FaultSite::Refresh));
    }

    #[test]
    fn injected_panic_names_the_site() {
        let plan = FaultPlan::new(1).rule_every(FaultSite::Respond, Fault::Panic, 1);
        plan.arm();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.impose(FaultSite::Respond)
        }))
        .unwrap_err();
        let text = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(text.contains("injected fault: panic at respond"), "{text}");
    }

    #[test]
    fn disarm_pauses_without_resetting_schedule() {
        let plan = FaultPlan::new(0).rule_every(FaultSite::Respond, Fault::SolverTimeout, 2);
        plan.arm();
        assert!(!plan.impose(FaultSite::Respond)); // draw 0
        plan.disarm();
        for _ in 0..10 {
            assert!(!plan.impose(FaultSite::Respond)); // no draws consumed
        }
        plan.arm();
        assert!(plan.impose(FaultSite::Respond)); // draw 1 fires
    }
}
